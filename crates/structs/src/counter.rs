//! A striped counter: increments touch one stripe, reads sum all stripes.

use crate::ctx::{atomically, TxCtx};
use oftm_core::api::WordStm;
use oftm_core::TxResult;
use oftm_histories::{TVarId, Value};

/// A counter sharded over `stripes` t-variables. `add` touches a single
/// stripe chosen by the caller's hint (conventionally the process id), so
/// increments from different processes are disjoint-access — on a
/// strictly-DAP STM they never conflict. `value` reads every stripe in
/// one transaction for a consistent total.
#[derive(Clone, Copy, Debug)]
pub struct TxCounter {
    stripes: TVarId,
    n: u64,
}

impl TxCounter {
    /// Allocates a zeroed counter with `stripes` shards on `stm`.
    pub fn create(stm: &dyn WordStm, stripes: usize) -> Self {
        assert!(stripes > 0, "counter needs at least one stripe");
        TxCounter {
            stripes: stm.alloc_tvar_block(&vec![0; stripes]),
            n: stripes as u64,
        }
    }

    fn stripe(&self, hint: u32) -> TVarId {
        TVarId(self.stripes.0 + u64::from(hint) % self.n)
    }

    /// Adds `delta` to the stripe picked by `hint`, inside the caller's
    /// transaction. Wrapping arithmetic: totals are modular in u64.
    pub fn add_in(&self, ctx: &mut TxCtx<'_, '_>, hint: u32, delta: Value) -> TxResult<()> {
        let x = self.stripe(hint);
        let v = ctx.read(x)?;
        ctx.write(x, v.wrapping_add(delta))
    }

    /// Consistent total across all stripes, inside the caller's
    /// transaction.
    pub fn value_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<Value> {
        let mut sum = 0u64;
        for k in 0..self.n {
            sum = sum.wrapping_add(ctx.read(TVarId(self.stripes.0 + k))?);
        }
        Ok(sum)
    }

    /// `add` in its own retry-until-commit transaction (stripe = `proc`).
    pub fn add(&self, stm: &dyn WordStm, proc: u32, delta: Value) {
        atomically(stm, proc, |ctx| self.add_in(ctx, proc, delta))
    }

    /// Total in its own transaction.
    pub fn value(&self, stm: &dyn WordStm, proc: u32) -> Value {
        atomically(stm, proc, |ctx| self.value_in(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::dstm::{Dstm, DstmWord};

    #[test]
    fn striped_total_is_exact() {
        let s = std::sync::Arc::new(DstmWord::new(Dstm::default()));
        let c = TxCounter::create(&*s, 4);
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = std::sync::Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..100 {
                        c.add(&*s, p, 2);
                    }
                });
            }
        });
        assert_eq!(c.value(&*s, 9), 4 * 100 * 2);
    }

    #[test]
    fn more_procs_than_stripes_still_exact() {
        let s = DstmWord::new(Dstm::default());
        let c = TxCounter::create(&s, 2);
        for p in 0..6u32 {
            c.add(&s, p, 1);
        }
        assert_eq!(c.value(&s, 0), 6);
    }
}
