//! The transaction context collections operate in: one live transaction
//! plus the STM it runs on (needed for mid-transaction allocation).

use oftm_core::api::{WordStm, WordTx};
use oftm_core::{run_transaction, run_transaction_with_budget, BudgetExceeded, TxResult};
use oftm_histories::{TVarId, Value};

/// A live transaction paired with its STM.
///
/// Collection operations need both halves: reads and writes go through the
/// transaction, while node allocation goes through the STM
/// ([`WordStm::alloc_tvar_block`] is safe mid-transaction). `TxCtx` keeps
/// the pair together so collection code cannot accidentally mix
/// transactions from different STMs.
pub struct TxCtx<'a, 'b> {
    stm: &'a dyn WordStm,
    tx: &'a mut (dyn WordTx + 'b),
}

impl<'a, 'b> TxCtx<'a, 'b> {
    pub fn new(stm: &'a dyn WordStm, tx: &'a mut (dyn WordTx + 'b)) -> Self {
        TxCtx { stm, tx }
    }

    /// The STM this context's transaction runs on.
    pub fn stm(&self) -> &'a dyn WordStm {
        self.stm
    }

    pub fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.tx.read(x)
    }

    pub fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        self.tx.write(x, v)
    }

    /// Allocates one fresh t-variable (see [`WordStm::alloc_tvar`]).
    pub fn alloc(&mut self, initial: Value) -> TVarId {
        self.stm.alloc_tvar(initial)
    }

    /// Allocates a contiguous block of fresh t-variables (a node).
    pub fn alloc_block(&mut self, initials: &[Value]) -> TVarId {
        self.stm.alloc_tvar_block(initials)
    }
}

/// Runs `body` in a retry-until-commit transaction with a [`TxCtx`] in
/// scope — the collection-level `atomically`.
pub fn atomically<R>(
    stm: &dyn WordStm,
    proc: u32,
    mut body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> R {
    run_transaction(stm, proc, |tx| body(&mut TxCtx::new(stm, tx))).0
}

/// Like [`atomically`] but bounded: gives up after `max_attempts` aborted
/// attempts. Returns the result together with the attempt count.
pub fn atomically_budgeted<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    mut body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    run_transaction_with_budget(stm, proc, max_attempts, |tx| body(&mut TxCtx::new(stm, tx)))
}
