//! The transaction context collections operate in: one live transaction
//! plus the STM it runs on (needed for mid-transaction allocation), with
//! the bookkeeping that keeps dynamic t-variables from leaking:
//!
//! * node **retirement** ([`TxCtx::retire_block`]) is forwarded to the
//!   transaction as a deferred commit effect — see
//!   [`WordTx::retire_tvar_block`];
//! * attempt-local **allocations** are recorded, and the retry loops here
//!   free them when the attempt aborts. An aborted attempt's blocks were
//!   never published (the write that would have linked them rolled back),
//!   so no other transaction can hold their ids and the free is immediate
//!   and safe. Without this, every aborted insert would leak a node.

use oftm_core::api::{retry_backoff, WordStm, WordTx};
use oftm_core::{BudgetExceeded, TxResult};
use oftm_histories::{TVarId, Value};
use oftm_obs::{pack_tx, AbortCause, Counter, VarAttr, TX_UNKNOWN};
use std::time::Instant;

/// A live transaction paired with its STM.
///
/// Collection operations need both halves: reads, writes and retirement
/// go through the transaction, while node allocation goes through the STM
/// ([`WordStm::alloc_tvar_block`] is safe mid-transaction). `TxCtx` keeps
/// the pair together so collection code cannot accidentally mix
/// transactions from different STMs, and records the attempt's
/// allocations for abort-path release.
pub struct TxCtx<'a, 'b> {
    stm: &'a dyn WordStm,
    tx: &'a mut (dyn WordTx + 'b),
    /// Blocks allocated by this attempt, freed by the retry loop if the
    /// attempt does not commit.
    allocs: Vec<(TVarId, usize)>,
}

impl<'a, 'b> TxCtx<'a, 'b> {
    pub fn new(stm: &'a dyn WordStm, tx: &'a mut (dyn WordTx + 'b)) -> Self {
        Self::with_alloc_buffer(stm, tx, Vec::new())
    }

    /// Like [`TxCtx::new`], but reusing a caller-owned allocation-log
    /// buffer — the retry loop passes the same (cleared) buffer to every
    /// attempt so steady-state retries allocate nothing.
    pub fn with_alloc_buffer(
        stm: &'a dyn WordStm,
        tx: &'a mut (dyn WordTx + 'b),
        allocs: Vec<(TVarId, usize)>,
    ) -> Self {
        debug_assert!(allocs.is_empty());
        TxCtx { stm, tx, allocs }
    }

    /// The STM this context's transaction runs on.
    pub fn stm(&self) -> &'a dyn WordStm {
        self.stm
    }

    pub fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.tx.read(x)
    }

    pub fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        self.tx.write(x, v)
    }

    /// Allocates one fresh t-variable (see [`WordStm::alloc_tvar`]).
    pub fn alloc(&mut self, initial: Value) -> TVarId {
        self.alloc_block(std::slice::from_ref(&initial))
    }

    /// Allocates a contiguous block of fresh t-variables (a node). The
    /// block is released automatically if this attempt aborts.
    pub fn alloc_block(&mut self, initials: &[Value]) -> TVarId {
        let base = self.stm.alloc_tvar_block(initials);
        self.allocs.push((base, initials.len()));
        base
    }

    /// Schedules an **unlinked** node's block for reclamation when this
    /// transaction commits (discarded if it aborts). The caller must have
    /// rewritten the node's single incoming link in this same transaction.
    pub fn retire_block(&mut self, base: TVarId, len: usize) {
        self.tx.retire_tvar_block(base, len);
    }

    /// Drains this attempt's allocation log (retry loops call this after
    /// the body returns: on abort they free the logged blocks, on commit
    /// they discard the log — the blocks are published). Public so the
    /// async retry loop in `oftm-asyncrt` shares the exact abort-path
    /// release semantics of [`atomically_budgeted`].
    pub fn take_allocs(&mut self) -> Vec<(TVarId, usize)> {
        std::mem::take(&mut self.allocs)
    }
}

/// Frees blocks allocated by an attempt that did not commit, draining the
/// log so its buffer can be reused. Safe to do immediately: the blocks
/// were never published.
fn release_attempt_allocs(stm: &dyn WordStm, allocs: &mut Vec<(TVarId, usize)>) {
    for (base, len) in allocs.drain(..) {
        stm.free_tvar_block(base, len);
    }
}

/// Runs `body` in a retry-until-commit transaction with a [`TxCtx`] in
/// scope — the collection-level `atomically`.
pub fn atomically<R>(
    stm: &dyn WordStm,
    proc: u32,
    body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> R {
    match atomically_budgeted(stm, proc, u32::MAX, body) {
        Ok((r, _)) => r,
        // u32::MAX attempts without a commit is indistinguishable from a
        // hang in practice; keep the unbounded signature but fail loudly.
        Err(e) => panic!("atomically: {e}"),
    }
}

/// Like [`atomically`] but bounded: gives up after `max_attempts` aborted
/// attempts. Returns the result together with the attempt count.
///
/// Mirrors [`oftm_core::run_transaction_with_budget`] (same randomized
/// backoff schedule), with one collection-level addition: blocks the
/// attempt allocated are freed when the attempt aborts, so abandoned
/// nodes never accumulate in the variable table.
pub fn atomically_budgeted<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    attempt_loop(stm, proc, max_attempts, false, body)
}

/// Read-only variant of [`atomically`]: attempts run on
/// [`WordStm::begin_ro`], so backends take their cheapest consistent read
/// path (wait-free per-read validation on TL/TL2, invisible scans on
/// Algorithm 2 — see each backend's module docs). The body must not
/// write or retire (backends panic if it does); allocation is likewise
/// out of place in a read-only body.
pub fn atomically_ro<R>(
    stm: &dyn WordStm,
    proc: u32,
    body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> R {
    match atomically_ro_budgeted(stm, proc, u32::MAX, body) {
        Ok((r, _)) => r,
        Err(e) => panic!("atomically_ro: {e}"),
    }
}

/// Like [`atomically_ro`] but bounded, returning the attempt count (the
/// wait-free oracles assert on it).
pub fn atomically_ro_budgeted<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    attempt_loop(stm, proc, max_attempts, true, body)
}

fn attempt_loop<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    ro: bool,
    mut body: impl FnMut(&mut TxCtx<'_, '_>) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    let mut attempts = 0;
    // One allocation log for the whole retry loop: each attempt moves it
    // into its `TxCtx` and hands it back (drained on abort), so retries
    // reuse the same buffer.
    let mut alloc_buf: Vec<(TVarId, usize)> = Vec::new();
    let stats = stm.stats();
    while attempts < max_attempts {
        if attempts > 0 {
            stats.incr(Counter::Retries);
            retry_backoff(proc, attempts);
        }
        attempts += 1;
        let started = Instant::now();
        let mut tx = if ro {
            stm.begin_ro(proc)
        } else {
            stm.begin(proc)
        };
        let (out, mut allocs) = {
            let mut ctx =
                TxCtx::with_alloc_buffer(stm, tx.as_mut(), std::mem::take(&mut alloc_buf));
            let out = body(&mut ctx);
            let allocs = ctx.take_allocs();
            (out, allocs)
        };
        match out {
            Ok(r) => match tx.try_commit() {
                Ok(()) => {
                    stats.record_attempt_ns(started.elapsed().as_nanos() as u64);
                    return Ok((r, attempts));
                }
                Err(_) => {
                    stats.record_attempt_ns(started.elapsed().as_nanos() as u64);
                    release_attempt_allocs(stm, &mut allocs);
                    alloc_buf = allocs;
                }
            },
            Err(_) => {
                // Drop (not tryA) the transaction, exactly like the core
                // retry loop: the body already observed the abort event,
                // an explicit tryA would record a second operation on a
                // completed transaction. Backends settle themselves on
                // drop. The drop also releases the grace slot before the
                // blocks are freed below.
                drop(tx);
                stats.record_attempt_ns(started.elapsed().as_nanos() as u64);
                release_attempt_allocs(stm, &mut allocs);
                alloc_buf = allocs;
            }
        }
    }
    // No single conflicting variable or aggressor: each spent attempt
    // already tagged its own cause.
    stats.abort_at(
        AbortCause::BudgetExhausted,
        VarAttr::NoVar,
        pack_tx(proc, max_attempts),
        TX_UNKNOWN,
    );
    Err(BudgetExceeded {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::dstm::{Dstm, DstmWord};
    use oftm_core::TxError;

    #[test]
    fn aborted_attempt_releases_its_allocations() {
        let stm = DstmWord::new(Dstm::default());
        let anchor = stm.alloc_tvar(0);
        assert_eq!(stm.live_tvars(), 1);
        let mut first = true;
        let (got, attempts) = atomically_budgeted(&stm, 0, 8, |ctx| {
            let node = ctx.alloc_block(&[1, 2]);
            if std::mem::take(&mut first) {
                return Err(TxError::Aborted); // simulate a conflict abort
            }
            ctx.write(anchor, node.0)?;
            Ok(node)
        })
        .unwrap();
        assert_eq!(attempts, 2);
        // The aborted attempt's block was freed; the committed one lives.
        assert_eq!(stm.live_tvars(), 3);
        assert_eq!(stm.peek(got), Some(1));
    }

    #[test]
    fn budget_exhaustion_releases_every_attempt() {
        let stm = DstmWord::new(Dstm::default());
        let err = atomically_budgeted::<()>(&stm, 0, 3, |ctx| {
            let _ = ctx.alloc_block(&[7, 7, 7]);
            Err(TxError::Aborted)
        })
        .unwrap_err();
        assert_eq!(err.attempts, 3);
        assert_eq!(stm.live_tvars(), 0, "every attempt's block released");
    }
}
