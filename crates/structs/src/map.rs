//! A bucketed hash map (separate chaining) over word t-variables.

use crate::ctx::{atomically, atomically_ro, TxCtx};
use crate::{mix64, NIL};
use oftm_core::api::WordStm;
use oftm_core::TxResult;
use oftm_histories::{TVarId, Value};

/// Node layout: `[key, value, next]` at offsets 0, 1, 2.
const KEY: u64 = 0;
const VAL: u64 = 1;
const NXT: u64 = 2;

/// A `u64 → u64` hash map: a fixed block of bucket-head pointers, each the
/// head of an unsorted chain of three-word nodes.
///
/// The bucket count is fixed at creation; transactions on different
/// buckets touch disjoint t-variables, so the map is disjoint-access
/// parallel on the STMs that are.
#[derive(Clone, Copy, Debug)]
pub struct TxHashMap {
    buckets: TVarId,
    nbuckets: u64,
}

impl TxHashMap {
    /// Allocates an empty map with `nbuckets` chains on `stm`.
    pub fn create(stm: &dyn WordStm, nbuckets: usize) -> Self {
        assert!(nbuckets > 0, "hash map needs at least one bucket");
        TxHashMap {
            buckets: stm.alloc_tvar_block(&vec![NIL; nbuckets]),
            nbuckets: nbuckets as u64,
        }
    }

    /// The bucket-head t-variable for `key`.
    pub fn bucket_of(&self, key: u64) -> TVarId {
        TVarId(self.buckets.0 + mix64(key) % self.nbuckets)
    }

    /// Walks `key`'s chain: returns the link pointing at the node holding
    /// `key` plus the node base, or the terminal link if absent.
    fn locate(&self, ctx: &mut TxCtx<'_, '_>, key: u64) -> TxResult<(TVarId, Value)> {
        let mut prev_link = self.bucket_of(key);
        let mut cur = ctx.read(prev_link)?;
        while cur != NIL {
            if ctx.read(TVarId(cur + KEY))? == key {
                return Ok((prev_link, cur));
            }
            prev_link = TVarId(cur + NXT);
            cur = ctx.read(prev_link)?;
        }
        Ok((prev_link, NIL))
    }

    /// Inserts or updates `key ↦ value` inside the caller's transaction;
    /// returns the previous value if any.
    pub fn put_in(
        &self,
        ctx: &mut TxCtx<'_, '_>,
        key: u64,
        value: Value,
    ) -> TxResult<Option<Value>> {
        let (_, node) = self.locate(ctx, key)?;
        if node != NIL {
            let old = ctx.read(TVarId(node + VAL))?;
            ctx.write(TVarId(node + VAL), value)?;
            return Ok(Some(old));
        }
        let head = self.bucket_of(key);
        let first = ctx.read(head)?;
        let fresh = ctx.alloc_block(&[key, value, first]);
        ctx.write(head, fresh.0)?;
        Ok(None)
    }

    /// Removes `key` inside the caller's transaction; returns its value.
    /// The unlinked node is retired: its three t-variables are reclaimed
    /// after this transaction commits and the grace period passes.
    pub fn remove_in(&self, ctx: &mut TxCtx<'_, '_>, key: u64) -> TxResult<Option<Value>> {
        let (prev_link, node) = self.locate(ctx, key)?;
        if node == NIL {
            return Ok(None);
        }
        let old = ctx.read(TVarId(node + VAL))?;
        let after = ctx.read(TVarId(node + NXT))?;
        ctx.write(prev_link, after)?;
        ctx.retire_block(TVarId(node), 3);
        Ok(Some(old))
    }

    /// Looks `key` up inside the caller's transaction.
    pub fn get_in(&self, ctx: &mut TxCtx<'_, '_>, key: u64) -> TxResult<Option<Value>> {
        let (_, node) = self.locate(ctx, key)?;
        if node == NIL {
            Ok(None)
        } else {
            Ok(Some(ctx.read(TVarId(node + VAL))?))
        }
    }

    /// Consistent snapshot of all entries, sorted by key.
    pub fn snapshot_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<Vec<(u64, Value)>> {
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let mut cur = ctx.read(TVarId(self.buckets.0 + b))?;
            while cur != NIL {
                let k = ctx.read(TVarId(cur + KEY))?;
                let v = ctx.read(TVarId(cur + VAL))?;
                out.push((k, v));
                cur = ctx.read(TVarId(cur + NXT))?;
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// `put` in its own retry-until-commit transaction.
    pub fn put(&self, stm: &dyn WordStm, proc: u32, key: u64, value: Value) -> Option<Value> {
        atomically(stm, proc, |ctx| self.put_in(ctx, key, value))
    }

    /// `remove` in its own transaction.
    pub fn remove(&self, stm: &dyn WordStm, proc: u32, key: u64) -> Option<Value> {
        atomically(stm, proc, |ctx| self.remove_in(ctx, key))
    }

    /// `get` in its own transaction.
    pub fn get(&self, stm: &dyn WordStm, proc: u32, key: u64) -> Option<Value> {
        atomically_ro(stm, proc, |ctx| self.get_in(ctx, key))
    }

    /// Snapshot in its own transaction.
    pub fn snapshot(&self, stm: &dyn WordStm, proc: u32) -> Vec<(u64, Value)> {
        atomically_ro(stm, proc, |ctx| self.snapshot_in(ctx))
    }

    /// Entry count (walks every chain in one transaction).
    pub fn len(&self, stm: &dyn WordStm, proc: u32) -> usize {
        self.snapshot(stm, proc).len()
    }

    /// True iff the map holds no entries.
    pub fn is_empty(&self, stm: &dyn WordStm, proc: u32) -> bool {
        self.len(stm, proc) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::cm::Polite;
    use oftm_core::dstm::{Dstm, DstmWord};
    use std::sync::Arc;

    fn stm() -> DstmWord {
        DstmWord::new(Dstm::new(Arc::new(Polite::default())))
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let s = stm();
        let m = TxHashMap::create(&s, 4);
        assert_eq!(m.put(&s, 0, 1, 10), None);
        assert_eq!(m.put(&s, 0, 2, 20), None);
        assert_eq!(m.put(&s, 0, 1, 11), Some(10), "update returns old");
        assert_eq!(m.get(&s, 0, 1), Some(11));
        assert_eq!(m.get(&s, 0, 3), None);
        assert_eq!(m.remove(&s, 0, 2), Some(20));
        assert_eq!(m.remove(&s, 0, 2), None);
        assert_eq!(m.snapshot(&s, 0), vec![(1, 11)]);
    }

    #[test]
    fn chains_handle_collisions() {
        // One bucket: everything collides; chain logic must still be exact.
        let s = stm();
        let m = TxHashMap::create(&s, 1);
        for k in 0..20u64 {
            assert_eq!(m.put(&s, 0, k, k * 2), None);
        }
        assert_eq!(m.len(&s, 0), 20);
        for k in (0..20u64).step_by(2) {
            assert_eq!(m.remove(&s, 0, k), Some(k * 2));
        }
        assert_eq!(m.len(&s, 0), 10);
        for k in 0..20u64 {
            assert_eq!(m.get(&s, 0, k), (k % 2 == 1).then_some(k * 2));
        }
    }

    #[test]
    fn concurrent_disjoint_key_ranges_exact() {
        let s = Arc::new(stm());
        let m = TxHashMap::create(&*s, 8);
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    let base = u64::from(p) * 100;
                    for i in 0..20u64 {
                        m.put(&*s, p, base + i, i);
                    }
                    for i in 0..10u64 {
                        m.remove(&*s, p, base + i * 2);
                    }
                });
            }
        });
        let snap = m.snapshot(&*s, 9);
        assert_eq!(snap.len(), 4 * 10);
        for (k, v) in snap {
            assert_eq!(k % 100 % 2, 1, "only odd offsets survive");
            assert_eq!(v, k % 100);
        }
    }
}
