//! # oftm-structs — transactional collections over the word-level STM
//!
//! The OFTM literature evaluates progress conditions on *dynamic*
//! data-structure workloads — DSTM's sorted linked-list IntSet above all.
//! This crate provides those workloads as reusable collections written
//! **once** against the uniform [`WordStm`]/[`WordTx`] interface, so each
//! runs unchanged on every STM in the workspace (DSTM, TL, TL2, coarse,
//! and both Algorithm 2 configurations):
//!
//! * [`TxIntSet`] — the canonical sorted linked-list integer set;
//! * [`TxHashMap`] — a bucketed hash map (separate chaining);
//! * [`TxQueue`] — an MPMC FIFO queue;
//! * [`TxCounter`] — a striped counter (disjoint-access increments);
//! * [`broken::BrokenIntSet`] — a deliberately *incorrect* list used as a
//!   negative oracle for the differential harness.
//!
//! ## Memory layout
//!
//! Every collection is a graph of word-sized t-variables. Nodes are
//! allocated with [`WordStm::alloc_tvar_block`], which returns a block of
//! **contiguous** t-variable ids: a list node `[value, next]` is addressed
//! as offsets from its base id, and a "pointer" is simply the base id of
//! the target block stored as a [`Value`]. Dynamic ids start at
//! [`oftm_core::table::DYNAMIC_TVAR_BASE`] (= 2³²), so the value `0` is
//! always safe as the null pointer [`NIL`].
//!
//! Allocation is not a transactional effect at the STM level (DSTM's
//! object-allocation semantics), but the retry loops here compensate:
//! blocks allocated by an attempt that aborts are freed before the retry
//! (they were never published, so the free is safe). Symmetrically,
//! nodes *unlinked* by `remove`/`dequeue` are retired via
//! [`WordTx::retire_tvar_block`] — reclaimed only after the unlinking
//! transaction commits and every transaction in flight at that commit has
//! finished. Together these keep the live t-variable count of a
//! steady-state churn workload bounded by the structure's size (the
//! `churn-steady-state` differential scenario enforces exactly this). All
//! *linking* happens through transactional writes, so the structures
//! inherit whatever safety the underlying STM provides.
//!
//! ## Quick start
//!
//! ```
//! use oftm_core::dstm::{Dstm, DstmWord};
//! use oftm_structs::TxIntSet;
//!
//! let stm = DstmWord::new(Dstm::default());
//! let set = TxIntSet::create(&stm);
//! assert!(set.insert(&stm, 0, 42));
//! assert!(!set.insert(&stm, 0, 42), "duplicate rejected");
//! assert!(set.contains(&stm, 0, 42));
//! assert_eq!(set.snapshot(&stm, 0), vec![42]);
//! assert!(set.remove(&stm, 0, 42));
//! assert_eq!(set.len(&stm, 0), 0);
//! ```

pub mod broken;
mod counter;
mod ctx;
mod intset;
mod map;
mod queue;

pub use counter::TxCounter;
pub use ctx::{atomically, atomically_budgeted, atomically_ro, atomically_ro_budgeted, TxCtx};
pub use intset::TxIntSet;
pub use map::TxHashMap;
pub use queue::TxQueue;

use oftm_histories::Value;

#[allow(unused_imports)] // rustdoc links
use oftm_core::api::{WordStm, WordTx};

/// The null "pointer": no dynamically allocated t-variable has id 0
/// (dynamic ids start at [`oftm_core::table::DYNAMIC_TVAR_BASE`]).
pub const NIL: Value = 0;

/// splitmix64 finalizer — the bucket hash of [`TxHashMap`]. Deterministic,
/// so bucket layouts agree across STMs and runs.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
