//! An MPMC FIFO queue over word t-variables.

use crate::ctx::{atomically, atomically_ro, TxCtx};
use crate::NIL;
use oftm_core::api::WordStm;
use oftm_core::TxResult;
use oftm_histories::{TVarId, Value};

/// Node layout: `[value, next]` at offsets 0 and 1.
const VAL: u64 = 0;
const NXT: u64 = 1;

/// A FIFO queue of `u64` values: head and tail pointers plus a singly
/// linked chain of two-word nodes. Multiple producers and consumers
/// compose through whole transactions, so per-operation linearizability
/// (and thus global FIFO order) is inherited from the STM.
#[derive(Clone, Copy, Debug)]
pub struct TxQueue {
    /// Block of two pointer vars: `[head, tail]`.
    ptrs: TVarId,
}

impl TxQueue {
    /// Allocates an empty queue on `stm`.
    pub fn create(stm: &dyn WordStm) -> Self {
        TxQueue {
            ptrs: stm.alloc_tvar_block(&[NIL, NIL]),
        }
    }

    fn head(&self) -> TVarId {
        self.ptrs
    }

    fn tail(&self) -> TVarId {
        TVarId(self.ptrs.0 + 1)
    }

    /// Appends `v` inside the caller's transaction.
    pub fn enqueue_in(&self, ctx: &mut TxCtx<'_, '_>, v: Value) -> TxResult<()> {
        let node = ctx.alloc_block(&[v, NIL]);
        let t = ctx.read(self.tail())?;
        if t == NIL {
            ctx.write(self.head(), node.0)?;
        } else {
            ctx.write(TVarId(t + NXT), node.0)?;
        }
        ctx.write(self.tail(), node.0)
    }

    /// Pops the front element inside the caller's transaction. The
    /// unlinked node is retired: its two t-variables are reclaimed after
    /// this transaction commits and the grace period passes.
    pub fn dequeue_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<Option<Value>> {
        let h = ctx.read(self.head())?;
        if h == NIL {
            return Ok(None);
        }
        let v = ctx.read(TVarId(h + VAL))?;
        let next = ctx.read(TVarId(h + NXT))?;
        ctx.write(self.head(), next)?;
        if next == NIL {
            ctx.write(self.tail(), NIL)?;
        }
        ctx.retire_block(TVarId(h), 2);
        Ok(Some(v))
    }

    /// Front-to-back snapshot inside the caller's transaction.
    pub fn snapshot_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = ctx.read(self.head())?;
        while cur != NIL {
            out.push(ctx.read(TVarId(cur + VAL))?);
            cur = ctx.read(TVarId(cur + NXT))?;
        }
        Ok(out)
    }

    /// Enqueues in its own retry-until-commit transaction.
    pub fn enqueue(&self, stm: &dyn WordStm, proc: u32, v: Value) {
        atomically(stm, proc, |ctx| self.enqueue_in(ctx, v))
    }

    /// Dequeues in its own transaction.
    pub fn dequeue(&self, stm: &dyn WordStm, proc: u32) -> Option<Value> {
        atomically(stm, proc, |ctx| self.dequeue_in(ctx))
    }

    /// Snapshot in its own transaction.
    pub fn snapshot(&self, stm: &dyn WordStm, proc: u32) -> Vec<Value> {
        atomically_ro(stm, proc, |ctx| self.snapshot_in(ctx))
    }

    /// Queue length (walks the chain in one transaction).
    pub fn len(&self, stm: &dyn WordStm, proc: u32) -> usize {
        self.snapshot(stm, proc).len()
    }

    /// True iff the queue is empty.
    pub fn is_empty(&self, stm: &dyn WordStm, proc: u32) -> bool {
        atomically_ro(stm, proc, |ctx| Ok(ctx.read(self.head())? == NIL))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::cm::Polite;
    use oftm_core::dstm::{Dstm, DstmWord};
    use std::collections::HashSet;
    use std::sync::Arc;

    fn stm() -> DstmWord {
        DstmWord::new(Dstm::new(Arc::new(Polite::default())))
    }

    #[test]
    fn fifo_order_sequential() {
        let s = stm();
        let q = TxQueue::create(&s);
        assert_eq!(q.dequeue(&s, 0), None);
        for v in 1..=5u64 {
            q.enqueue(&s, 0, v);
        }
        assert_eq!(q.snapshot(&s, 0), vec![1, 2, 3, 4, 5]);
        for v in 1..=5u64 {
            assert_eq!(q.dequeue(&s, 0), Some(v));
        }
        assert_eq!(q.dequeue(&s, 0), None);
        assert!(q.is_empty(&s, 0));
    }

    #[test]
    fn drain_then_refill() {
        let s = stm();
        let q = TxQueue::create(&s);
        q.enqueue(&s, 0, 1);
        assert_eq!(q.dequeue(&s, 0), Some(1));
        // head/tail both reset to NIL; a refill must relink both.
        q.enqueue(&s, 0, 2);
        q.enqueue(&s, 0, 3);
        assert_eq!(q.snapshot(&s, 0), vec![2, 3]);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_elements() {
        let s = Arc::new(stm());
        let q = TxQueue::create(&*s);
        let consumed: std::sync::Mutex<Vec<u64>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|sc| {
            for p in 0..2u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..50u64 {
                        q.enqueue(&*s, p, (u64::from(p) << 32) | i);
                    }
                });
            }
            for p in 2..4u32 {
                let s = Arc::clone(&s);
                let consumed = &consumed;
                sc.spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        if let Some(v) = q.dequeue(&*s, p) {
                            got.push(v);
                        }
                    }
                    consumed.lock().unwrap().extend(got);
                });
            }
        });
        let mut all: Vec<u64> = consumed.into_inner().unwrap();
        all.extend(q.snapshot(&*s, 9));
        let expect: HashSet<u64> = (0..2u64)
            .flat_map(|p| (0..50u64).map(move |i| (p << 32) | i))
            .collect();
        assert_eq!(all.len(), 100, "no element lost or duplicated");
        assert_eq!(all.into_iter().collect::<HashSet<_>>(), expect);
    }
}
