//! The sorted linked-list integer set — DSTM's original benchmark
//! workload, over word t-variables.

use crate::ctx::{atomically, atomically_ro, TxCtx};
use crate::NIL;
use oftm_core::api::WordStm;
use oftm_core::TxResult;
use oftm_histories::{TVarId, Value};

/// Node layout: `[value, next]` at offsets 0 and 1 from the node base id.
const VAL: u64 = 0;
const NXT: u64 = 1;

/// A sorted set of `u64` as a singly linked list of two-word nodes.
///
/// The handle itself is one t-variable id (the head pointer); it is `Copy`
/// and can be shared freely across threads. All operations take the STM
/// explicitly, either as a [`TxCtx`] (to compose with a larger
/// transaction) or as an STM + process id (to run as their own
/// transaction).
#[derive(Clone, Copy, Debug)]
pub struct TxIntSet {
    head: TVarId,
}

/// Result of `locate`: the link t-variable pointing at `cur`, the node
/// base `cur` itself (or [`NIL`]), and `cur`'s value when present.
struct Locate {
    prev_link: TVarId,
    cur: Value,
    cur_val: Option<Value>,
}

impl TxIntSet {
    /// Allocates an empty set on `stm`.
    pub fn create(stm: &dyn WordStm) -> Self {
        TxIntSet {
            head: stm.alloc_tvar(NIL),
        }
    }

    /// Walks the sorted list to the first node with value ≥ `v`.
    fn locate(&self, ctx: &mut TxCtx<'_, '_>, v: u64) -> TxResult<Locate> {
        let mut prev_link = self.head;
        let mut cur = ctx.read(prev_link)?;
        while cur != NIL {
            let cur_val = ctx.read(TVarId(cur + VAL))?;
            if cur_val >= v {
                return Ok(Locate {
                    prev_link,
                    cur,
                    cur_val: Some(cur_val),
                });
            }
            prev_link = TVarId(cur + NXT);
            cur = ctx.read(prev_link)?;
        }
        Ok(Locate {
            prev_link,
            cur,
            cur_val: None,
        })
    }

    /// Inserts `v` inside the caller's transaction; `false` if present.
    pub fn insert_in(&self, ctx: &mut TxCtx<'_, '_>, v: u64) -> TxResult<bool> {
        let loc = self.locate(ctx, v)?;
        if loc.cur_val == Some(v) {
            return Ok(false);
        }
        let node = ctx.alloc_block(&[v, loc.cur]);
        ctx.write(loc.prev_link, node.0)?;
        Ok(true)
    }

    /// Removes `v` inside the caller's transaction; `false` if absent.
    /// The unlinked node is retired: its two t-variables are reclaimed
    /// after this transaction commits and the grace period passes.
    pub fn remove_in(&self, ctx: &mut TxCtx<'_, '_>, v: u64) -> TxResult<bool> {
        let loc = self.locate(ctx, v)?;
        if loc.cur != NIL && loc.cur_val == Some(v) {
            let after = ctx.read(TVarId(loc.cur + NXT))?;
            ctx.write(loc.prev_link, after)?;
            ctx.retire_block(TVarId(loc.cur), 2);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Membership test inside the caller's transaction.
    pub fn contains_in(&self, ctx: &mut TxCtx<'_, '_>, v: u64) -> TxResult<bool> {
        let loc = self.locate(ctx, v)?;
        Ok(loc.cur_val == Some(v))
    }

    /// Number of elements, inside the caller's transaction. Walks the
    /// list counting links only — no values are read and no snapshot
    /// `Vec` is allocated.
    pub fn count_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<usize> {
        let mut n = 0;
        let mut cur = ctx.read(self.head)?;
        while cur != NIL {
            n += 1;
            cur = ctx.read(TVarId(cur + NXT))?;
        }
        Ok(n)
    }

    /// Consistent snapshot of the whole set, in list (= sorted) order.
    pub fn snapshot_in(&self, ctx: &mut TxCtx<'_, '_>) -> TxResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut cur = ctx.read(self.head)?;
        while cur != NIL {
            out.push(ctx.read(TVarId(cur + VAL))?);
            cur = ctx.read(TVarId(cur + NXT))?;
        }
        Ok(out)
    }

    /// Inserts `v` in its own retry-until-commit transaction.
    pub fn insert(&self, stm: &dyn WordStm, proc: u32, v: u64) -> bool {
        atomically(stm, proc, |ctx| self.insert_in(ctx, v))
    }

    /// Removes `v` in its own transaction.
    pub fn remove(&self, stm: &dyn WordStm, proc: u32, v: u64) -> bool {
        atomically(stm, proc, |ctx| self.remove_in(ctx, v))
    }

    /// Membership test in its own **read-only** transaction (the backend's
    /// cheapest consistent read path — see [`atomically_ro`]).
    pub fn contains(&self, stm: &dyn WordStm, proc: u32, v: u64) -> bool {
        atomically_ro(stm, proc, |ctx| self.contains_in(ctx, v))
    }

    /// Snapshot in its own read-only transaction.
    pub fn snapshot(&self, stm: &dyn WordStm, proc: u32) -> Vec<u64> {
        atomically_ro(stm, proc, |ctx| self.snapshot_in(ctx))
    }

    /// Number of elements (walks the list in its own read-only
    /// transaction, via [`TxIntSet::count_in`] — no snapshot allocation).
    pub fn len(&self, stm: &dyn WordStm, proc: u32) -> usize {
        atomically_ro(stm, proc, |ctx| self.count_in(ctx))
    }

    /// True iff the set is empty.
    pub fn is_empty(&self, stm: &dyn WordStm, proc: u32) -> bool {
        atomically_ro(stm, proc, |ctx| Ok(ctx.read(self.head)? == NIL))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::cm::Polite;
    use oftm_core::dstm::{Dstm, DstmWord};
    use std::sync::Arc;

    fn stm() -> DstmWord {
        DstmWord::new(Dstm::new(Arc::new(Polite::default())))
    }

    #[test]
    fn sorted_unique_semantics() {
        let s = stm();
        let set = TxIntSet::create(&s);
        for v in [5u64, 1, 9, 5, 3, 9] {
            set.insert(&s, 0, v);
        }
        assert_eq!(set.snapshot(&s, 0), vec![1, 3, 5, 9]);
        assert!(set.contains(&s, 0, 3));
        assert!(!set.contains(&s, 0, 4));
        assert!(set.remove(&s, 0, 3));
        assert!(!set.remove(&s, 0, 3));
        assert_eq!(set.snapshot(&s, 0), vec![1, 5, 9]);
        assert_eq!(set.len(&s, 0), 3);
        assert!(!set.is_empty(&s, 0));
    }

    #[test]
    fn boundary_inserts() {
        let s = stm();
        let set = TxIntSet::create(&s);
        assert!(set.insert(&s, 0, 10)); // into empty
        assert!(set.insert(&s, 0, 5)); // new head
        assert!(set.insert(&s, 0, 20)); // new tail
        assert_eq!(set.snapshot(&s, 0), vec![5, 10, 20]);
        assert!(set.remove(&s, 0, 5)); // remove head
        assert!(set.remove(&s, 0, 20)); // remove tail
        assert_eq!(set.snapshot(&s, 0), vec![10]);
    }

    #[test]
    fn multi_op_transaction_composes() {
        // Move an element atomically: remove+insert in ONE transaction.
        let s = stm();
        let set = TxIntSet::create(&s);
        set.insert(&s, 0, 7);
        crate::ctx::atomically(&s, 0, |ctx| {
            let had = set.remove_in(ctx, 7)?;
            assert!(had);
            set.insert_in(ctx, 8)
        });
        assert_eq!(set.snapshot(&s, 0), vec![8]);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let s = Arc::new(stm());
        let set = TxIntSet::create(&*s);
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..25u64 {
                        set.insert(&*s, p, u64::from(p) * 100 + i);
                    }
                });
            }
        });
        let snap = set.snapshot(&*s, 9);
        assert_eq!(snap.len(), 100);
        assert!(snap.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
    }
}
