//! A deliberately **incorrect** linked-list set: the negative oracle.
//!
//! [`BrokenIntSet`] has the same memory layout and sequential behaviour as
//! [`crate::TxIntSet`], but its `insert` splits the operation across *two*
//! transactions: the sorted-position search commits in one transaction,
//! then the link write commits in a second one with **no revalidation** of
//! the snapshot the search produced. Between the two, a concurrent insert
//! can link a node through the very same predecessor; the stale write then
//! unlinks it (a lost update) or stitches the new node in front of a
//! now-bypassed chain (sortedness/duplicate violations).
//!
//! It exists so the differential harness can demonstrate it *catches*
//! structure-level bugs: a harness whose invariants pass on this list is
//! vacuous. Never use outside tests.

use crate::ctx::atomically;
use crate::NIL;
use oftm_core::api::WordStm;
use oftm_histories::TVarId;

/// Node layout shared with [`TxIntSet`]: `[value, next]`.
const VAL: u64 = 0;
const NXT: u64 = 1;

/// The broken list. Same handle shape as [`TxIntSet`].
#[derive(Clone, Copy, Debug)]
pub struct BrokenIntSet {
    head: TVarId,
}

impl BrokenIntSet {
    pub fn create(stm: &dyn WordStm) -> Self {
        BrokenIntSet {
            head: stm.alloc_tvar(NIL),
        }
    }

    /// **Broken** insert: search and link run as separate transactions, so
    /// the link is written against a potentially stale snapshot.
    pub fn insert(&self, stm: &dyn WordStm, proc: u32, v: u64) -> bool {
        // Transaction 1: read-only locate; commits, releasing all reads.
        let (prev_link, cur, cur_val) = atomically(stm, proc, |ctx| {
            let mut prev_link = self.head;
            let mut cur = ctx.read(prev_link)?;
            let mut cur_val = None;
            while cur != NIL {
                let cv = ctx.read(TVarId(cur + VAL))?;
                if cv >= v {
                    cur_val = Some(cv);
                    break;
                }
                prev_link = TVarId(cur + NXT);
                cur = ctx.read(prev_link)?;
            }
            Ok((prev_link, cur, cur_val))
        });
        if cur_val == Some(v) {
            return false;
        }
        // The lost-update window lives between the two transactions; yield
        // so it stays open under any scheduler (on a single hardware
        // thread, back-to-back transactions otherwise complete within one
        // timeslice and the breakage hides from the oracle tests).
        std::thread::yield_now();
        // Transaction 2: blind write through the stale search result — the
        // missing validation that makes this list wrong under concurrency.
        let node = stm.alloc_tvar_block(&[v, cur]);
        atomically(stm, proc, |ctx| ctx.write(prev_link, node.0));
        true
    }

    /// Snapshot via a *correct* transaction (the reader side is honest so
    /// checks observe the damage the writer side does).
    pub fn snapshot(&self, stm: &dyn WordStm, proc: u32) -> Vec<u64> {
        atomically(stm, proc, |ctx| {
            let mut out = Vec::new();
            let mut cur = ctx.read(self.head)?;
            while cur != NIL {
                out.push(ctx.read(TVarId(cur + VAL))?);
                cur = ctx.read(TVarId(cur + NXT))?;
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::dstm::{Dstm, DstmWord};

    #[test]
    fn sequentially_indistinguishable_from_correct_list() {
        // The bug only bites under concurrency: single-threaded, the two
        // transactions back-to-back are equivalent to one.
        let s = DstmWord::new(Dstm::default());
        let b = BrokenIntSet::create(&s);
        for v in [5u64, 1, 9, 5, 3] {
            b.insert(&s, 0, v);
        }
        assert_eq!(b.snapshot(&s, 0), vec![1, 3, 5, 9]);
    }
}
