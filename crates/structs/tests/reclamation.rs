//! Reclamation gates: dynamic t-variables must not leak, and a freed id
//! must never resolve to a stale value.
//!
//! Three oracles, each across every STM in the workspace:
//!
//! * **Leak regression** — insert/remove churn at a steady set size keeps
//!   the live t-variable count exactly `1 + 2·|set|` (head plus two words
//!   per node): unlinked nodes are reclaimed once their grace period
//!   passes, aborted attempts release their allocations.
//! * **Use-after-free** — re-reading a freed id from a still-running
//!   transaction aborts or panics with the uniform `t-variable <x> not
//!   registered` diagnostic; it never returns a value. Conversely, a
//!   *retired* (but grace-protected) id still resolves for transactions
//!   that predate the retirement.
//! * **Free × abort interleavings** — proptests drive random tapes of
//!   committing and deliberately aborted operations against a `BTreeSet`
//!   model, asserting the exact live count after every op.

mod common;

use common::{make_stm, STM_NAMES};
use oftm_core::TxError;
use oftm_structs::{atomically_budgeted, TxIntSet};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Expected live t-variables for a set of `n` elements: one head pointer
/// plus a `[value, next]` block per node.
fn expected_live(n: usize) -> usize {
    1 + 2 * n
}

/// Sequential churn at fixed size: after EVERY op the table must be
/// exactly as large as the structure — the strongest form of "bounded".
#[test]
fn sequential_churn_live_count_is_exact() {
    for name in STM_NAMES {
        let stm = make_stm(name);
        let set = TxIntSet::create(&*stm);
        let mut model = BTreeSet::new();
        let mut op = 0u64;
        for round in 0..30u64 {
            for v in 0..6u64 {
                let insert = (round + v) % 3 != 0;
                if insert {
                    assert_eq!(set.insert(&*stm, 0, v), model.insert(v), "{name}");
                } else {
                    assert_eq!(set.remove(&*stm, 0, v), model.remove(&v), "{name}");
                }
                op += 1;
                assert_eq!(
                    stm.live_tvars(),
                    expected_live(model.len()),
                    "{name}: leak after op {op} (model size {})",
                    model.len()
                );
            }
        }
        assert!(op > 100, "churned enough to expose a leak");
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(set.snapshot(&*stm, 0), want, "{name}");
    }
}

/// Concurrent churn, then quiescence: once the threads join and one more
/// transaction commits (flushing every grace bin), the table is exact.
#[test]
fn concurrent_churn_reclaims_at_quiescence() {
    for name in STM_NAMES {
        let stm = make_stm(name);
        let set = TxIntSet::create(&*stm);
        let threads = 3u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let stm = &stm;
                let set = &set;
                s.spawn(move || {
                    for i in 0..12u64 {
                        let v = t * 100 + (i % 4);
                        set.insert(&**stm, t as u32, v);
                        set.remove(&**stm, t as u32, v);
                    }
                });
            }
        });
        // The final snapshot transaction commits with nobody in flight,
        // sweeping every pending retirement.
        let snap = set.snapshot(&*stm, 9);
        assert_eq!(
            stm.live_tvars(),
            expected_live(snap.len()),
            "{name}: {} t-variables live for {} elements after quiescence",
            stm.live_tvars(),
            snap.len()
        );
    }
}

/// A freed id must abort or panic with the uniform diagnostic on re-read —
/// never resolve. (Direct `free_tvar_block` stands in for "the grace
/// period elapsed": the tracker only ever frees ids no transaction can
/// legitimately reach, so any reader hitting one is buggy by definition
/// and must fail loudly.)
#[test]
fn freed_id_never_resolves_to_a_stale_value() {
    for name in STM_NAMES {
        let stm = make_stm(name);
        let node = stm.alloc_tvar_block(&[42, 0]);
        stm.free_tvar_block(node, 2);
        assert_eq!(stm.live_tvars(), 0, "{name}");
        let mut tx = stm.begin(1);
        let outcome = catch_unwind(AssertUnwindSafe(|| tx.read(node)));
        match outcome {
            Ok(Ok(v)) => panic!("{name}: freed id resolved to stale value {v}"),
            Ok(Err(TxError::Aborted)) => {}
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default();
                assert!(
                    msg.contains("not registered"),
                    "{name}: panic lacks the uniform diagnostic: {msg:?}"
                );
            }
        }
    }
}

/// The flip side: a *retired* id is still resolvable by a transaction
/// that was in flight when the retirement committed (grace protection),
/// and only becomes unreachable after that transaction finishes.
#[test]
fn grace_period_keeps_retired_nodes_readable_for_predating_readers() {
    for name in STM_NAMES {
        if *name == "coarse" {
            // The global lock serializes transactions; a predating reader
            // cannot coexist with the removing transaction by design.
            continue;
        }
        let stm = make_stm(name);
        let set = TxIntSet::create(&*stm);
        set.insert(&*stm, 0, 7);
        let snap_before = stm.live_tvars();
        // Locate the node id non-transactionally: it is the only block
        // besides the head, allocated right after it.
        // (head = first alloc, node = second alloc of 2 words.)
        let mut reader = stm.begin(1);
        let head_val = reader.read(oftm_histories::TVarId(oftm_core::table::DYNAMIC_TVAR_BASE));
        let node = oftm_histories::TVarId(head_val.expect("head readable"));
        assert_eq!(reader.read(node).unwrap(), 7, "{name}");
        // A second process removes 7 and commits: the node is retired but
        // must survive `reader`.
        assert!(set.remove(&*stm, 2, 7), "{name}");
        assert_eq!(
            stm.live_tvars(),
            snap_before,
            "{name}: retired node freed under a predating reader"
        );
        // The predating reader still resolves it (or is aborted by the
        // conflict — legal; it must just never panic or read garbage).
        match catch_unwind(AssertUnwindSafe(|| reader.read(node))) {
            Ok(Ok(v)) => assert_eq!(v, 7, "{name}: stale value"),
            Ok(Err(TxError::Aborted)) => {}
            Err(_) => panic!("{name}: grace-protected node unreachable"),
        }
        reader.try_abort();
        // Quiescence: the next committed transaction sweeps the node.
        let _ = set.snapshot(&*stm, 3);
        assert_eq!(
            stm.live_tvars(),
            expected_live(0),
            "{name}: node leaked after the reader finished"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of committing and deliberately ABORTED
    /// inserts/removes: aborted attempts must neither leak allocations
    /// (aborted insert) nor free live nodes (aborted remove), and the
    /// exact live count must track the model after every single op.
    #[test]
    fn aborted_ops_neither_leak_nor_free(
        ops in proptest::collection::vec((0u8..4, 0u64..10), 1..40),
    ) {
        for name in STM_NAMES {
            let stm = make_stm(name);
            let set = TxIntSet::create(&*stm);
            let mut model = BTreeSet::new();
            for &(op, v) in &ops {
                match op {
                    0 => {
                        prop_assert_eq!(set.insert(&*stm, 0, v), model.insert(v), "{} insert {}", name, v);
                    }
                    1 => {
                        prop_assert_eq!(set.remove(&*stm, 0, v), model.remove(&v), "{} remove {}", name, v);
                    }
                    2 => {
                        // Insert that aborts at the end of its (only)
                        // attempt: its freshly allocated node must be
                        // released, the set unchanged.
                        let r = atomically_budgeted(&*stm, 0, 1, |ctx| {
                            set.insert_in(ctx, v)?;
                            Err::<(), _>(TxError::Aborted)
                        });
                        prop_assert!(r.is_err(), "{}: aborted insert committed", name);
                    }
                    _ => {
                        // Remove that aborts: the retire-set must be
                        // discarded — the node stays.
                        let r = atomically_budgeted(&*stm, 0, 1, |ctx| {
                            set.remove_in(ctx, v)?;
                            Err::<(), _>(TxError::Aborted)
                        });
                        prop_assert!(r.is_err(), "{}: aborted remove committed", name);
                    }
                }
                prop_assert_eq!(
                    stm.live_tvars(),
                    expected_live(model.len()),
                    "{}: live count diverged after ({}, {})", name, op, v
                );
            }
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(set.snapshot(&*stm, 0), want, "{} final snapshot", name);
            prop_assert_eq!(set.len(&*stm, 0), model.len(), "{} len (count_in)", name);
        }
    }
}
