//! Property tests: seeded random op tapes, replayed against the standard
//! library models (`BTreeSet` / `HashMap` / `VecDeque`), on every STM —
//! plus seeded *concurrent* runs whose single-threaded replay must agree
//! across implementations (sequential execution is deterministic, so any
//! divergence is an implementation bug).
//!
//! A failing case prints `PROPTEST_SEED=…` for exact replay (see the
//! proptest shim's README note: no shrinking, seeds instead).

mod common;

use common::{make_stm, STM_NAMES};
use oftm_structs::{TxHashMap, TxIntSet, TxQueue};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap, VecDeque};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IntSet ≡ BTreeSet under any sequential op tape, on every STM.
    #[test]
    fn intset_matches_model(ops in proptest::collection::vec((0u8..3, 0u64..24), 0..48)) {
        for name in STM_NAMES {
            let stm = make_stm(name);
            let set = TxIntSet::create(&*stm);
            let mut model = BTreeSet::new();
            for &(op, v) in &ops {
                match op {
                    0 => prop_assert_eq!(set.insert(&*stm, 0, v), model.insert(v), "{} insert {}", name, v),
                    1 => prop_assert_eq!(set.remove(&*stm, 0, v), model.remove(&v), "{} remove {}", name, v),
                    _ => prop_assert_eq!(set.contains(&*stm, 0, v), model.contains(&v), "{} contains {}", name, v),
                }
            }
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(set.snapshot(&*stm, 0), want, "{} snapshot", name);
        }
    }

    /// HashMap ≡ std HashMap under any sequential op tape, on every STM.
    #[test]
    fn hashmap_matches_model(
        nbuckets in 1usize..6,
        ops in proptest::collection::vec((0u8..3, 0u64..16, 0u64..100), 0..48),
    ) {
        for name in STM_NAMES {
            let stm = make_stm(name);
            let map = TxHashMap::create(&*stm, nbuckets);
            let mut model: HashMap<u64, u64> = HashMap::new();
            for &(op, k, v) in &ops {
                match op {
                    0 => prop_assert_eq!(map.put(&*stm, 0, k, v), model.insert(k, v), "{} put {}", name, k),
                    1 => prop_assert_eq!(map.remove(&*stm, 0, k), model.remove(&k), "{} remove {}", name, k),
                    _ => prop_assert_eq!(map.get(&*stm, 0, k), model.get(&k).copied(), "{} get {}", name, k),
                }
            }
            let mut want: Vec<(u64, u64)> = model.into_iter().collect();
            want.sort_unstable();
            prop_assert_eq!(map.snapshot(&*stm, 0), want, "{} snapshot", name);
        }
    }

    /// Queue ≡ VecDeque under any sequential op tape, on every STM.
    #[test]
    fn queue_matches_model(ops in proptest::collection::vec((0u8..2, 0u64..1000), 0..48)) {
        for name in STM_NAMES {
            let stm = make_stm(name);
            let q = TxQueue::create(&*stm);
            let mut model: VecDeque<u64> = VecDeque::new();
            for &(op, v) in &ops {
                match op {
                    0 => { q.enqueue(&*stm, 0, v); model.push_back(v); }
                    _ => prop_assert_eq!(q.dequeue(&*stm, 0), model.pop_front(), "{} dequeue", name),
                }
            }
            let want: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(q.snapshot(&*stm, 0), want, "{} snapshot", name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded concurrent intset churn, then sequential-replay agreement:
    /// the same per-thread tapes replayed single-threaded leave identical
    /// snapshots on every STM, and the concurrent snapshot obeys the
    /// conservation law per value (insert/remove successes balance
    /// membership) plus sortedness.
    #[test]
    fn concurrent_intset_replay_agreement(
        tapes in proptest::collection::vec(
            proptest::collection::vec((0u8..2, 0u64..12), 6),
            3,
        ),
    ) {
        // Concurrent run + conservation oracle on the fast STMs.
        for name in ["dstm", "tl", "tl2", "coarse"] {
            let stm = make_stm(name);
            let set = TxIntSet::create(&*stm);
            let results: Vec<Vec<bool>> = std::thread::scope(|sc| {
                let handles: Vec<_> = tapes
                    .iter()
                    .enumerate()
                    .map(|(p, tape)| {
                        let stm = &stm;
                        sc.spawn(move || {
                            tape.iter()
                                .map(|&(op, v)| match op {
                                    0 => set.insert(&**stm, p as u32, v),
                                    _ => set.remove(&**stm, p as u32, v),
                                })
                                .collect::<Vec<bool>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let snap = set.snapshot(&*stm, 9);
            prop_assert!(
                snap.windows(2).all(|w| w[0] < w[1]),
                "{}: unsorted/duplicated snapshot {:?}", name, snap
            );
            // Conservation per value v: successful inserts minus successful
            // removes equals final membership (initially absent).
            for v in 0u64..12 {
                let mut balance = 0i64;
                for (tape, res) in tapes.iter().zip(&results) {
                    for (&(op, val), &ok) in tape.iter().zip(res) {
                        if val == v && ok {
                            balance += if op == 0 { 1 } else { -1 };
                        }
                    }
                }
                let member = i64::from(snap.binary_search(&v).is_ok());
                prop_assert_eq!(
                    balance, member,
                    "{}: conservation violated for value {}", name, v
                );
            }
        }

        // Sequential replay agreement across ALL six STMs.
        let mut reference: Option<(Vec<bool>, Vec<u64>)> = None;
        for name in STM_NAMES {
            let stm = make_stm(name);
            let set = TxIntSet::create(&*stm);
            let mut flat = Vec::new();
            for (p, tape) in tapes.iter().enumerate() {
                for &(op, v) in tape {
                    flat.push(match op {
                        0 => set.insert(&*stm, p as u32, v),
                        _ => set.remove(&*stm, p as u32, v),
                    });
                }
            }
            let snap = set.snapshot(&*stm, 9);
            match &reference {
                None => reference = Some((flat, snap)),
                Some((rf, rs)) => {
                    prop_assert_eq!(&flat, rf, "{}: sequential op results diverged", name);
                    prop_assert_eq!(&snap, rs, "{}: sequential snapshot diverged", name);
                }
            }
        }
    }
}
