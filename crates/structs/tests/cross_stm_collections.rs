//! Every collection, on every STM: identical op sequences must behave
//! exactly like the sequential Rust model, and small concurrent runs must
//! satisfy each structure's algebraic invariants. (The heavy seeded
//! differential matrix lives in `oftm-bench`; this suite is the per-crate
//! fast gate.)

mod common;

use common::{make_stm, STM_NAMES};
use oftm_structs::{TxHashMap, TxIntSet, TxQueue};
use std::collections::{BTreeSet, HashMap, VecDeque};

#[test]
fn intset_matches_btreeset_on_all_stms() {
    // A fixed op tape covering duplicates, misses, head/tail boundaries.
    let tape: &[(u8, u64)] = &[
        (0, 5),
        (0, 1),
        (0, 9),
        (0, 5), // dup insert
        (1, 3), // miss remove
        (0, 3),
        (2, 3),
        (1, 5),
        (2, 5), // miss contains after remove
        (0, 0),
        (0, u64::MAX),
        (1, 1),
        (1, 0),
    ];
    for name in STM_NAMES {
        let stm = make_stm(name);
        let set = TxIntSet::create(&*stm);
        let mut model = BTreeSet::new();
        for &(op, v) in tape {
            match op {
                0 => assert_eq!(
                    set.insert(&*stm, 0, v),
                    model.insert(v),
                    "{name} insert {v}"
                ),
                1 => assert_eq!(
                    set.remove(&*stm, 0, v),
                    model.remove(&v),
                    "{name} remove {v}"
                ),
                _ => assert_eq!(
                    set.contains(&*stm, 0, v),
                    model.contains(&v),
                    "{name} contains {v}"
                ),
            }
        }
        let snap = set.snapshot(&*stm, 0);
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(snap, want, "{name}: final snapshot diverged from BTreeSet");
    }
}

#[test]
fn hashmap_matches_hashmap_on_all_stms() {
    let tape: &[(u8, u64, u64)] = &[
        (0, 1, 10),
        (0, 2, 20),
        (0, 1, 11), // overwrite
        (1, 7, 0),  // miss remove
        (2, 2, 0),
        (1, 2, 0),
        (2, 2, 0), // miss get after remove
        (0, 9, 90),
        (0, 17, 70), // same bucket as 9 for small bucket counts, maybe
        (1, 9, 0),
    ];
    for name in STM_NAMES {
        let stm = make_stm(name);
        let map = TxHashMap::create(&*stm, 4);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for &(op, k, v) in tape {
            match op {
                0 => assert_eq!(
                    map.put(&*stm, 0, k, v),
                    model.insert(k, v),
                    "{name} put {k}"
                ),
                1 => assert_eq!(
                    map.remove(&*stm, 0, k),
                    model.remove(&k),
                    "{name} remove {k}"
                ),
                _ => assert_eq!(
                    map.get(&*stm, 0, k),
                    model.get(&k).copied(),
                    "{name} get {k}"
                ),
            }
        }
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(map.snapshot(&*stm, 0), want, "{name}: snapshot diverged");
    }
}

#[test]
fn queue_matches_vecdeque_on_all_stms() {
    let tape: &[(u8, u64)] = &[
        (1, 0), // dequeue empty
        (0, 1),
        (0, 2),
        (1, 0),
        (0, 3),
        (1, 0),
        (1, 0),
        (1, 0), // drain past empty
        (0, 4),
        (0, 5),
    ];
    for name in STM_NAMES {
        let stm = make_stm(name);
        let q = TxQueue::create(&*stm);
        let mut model: VecDeque<u64> = VecDeque::new();
        for &(op, v) in tape {
            match op {
                0 => {
                    q.enqueue(&*stm, 0, v);
                    model.push_back(v);
                }
                _ => assert_eq!(q.dequeue(&*stm, 0), model.pop_front(), "{name} dequeue"),
            }
        }
        let want: Vec<u64> = model.iter().copied().collect();
        assert_eq!(q.snapshot(&*stm, 0), want, "{name}: snapshot diverged");
    }
}

#[test]
fn concurrent_intset_invariants_on_all_stms() {
    // 3 threads × disjoint value ranges: the final set is fully
    // determined; sortedness and duplicate-freedom hold regardless.
    for name in STM_NAMES {
        let stm = make_stm(name);
        let set = TxIntSet::create(&*stm);
        std::thread::scope(|sc| {
            for p in 0..3u32 {
                let stm = &stm;
                sc.spawn(move || {
                    for i in 0..8u64 {
                        set.insert(&**stm, p, u64::from(p) * 10 + i);
                    }
                    // Delete half of our own range again.
                    for i in 0..4u64 {
                        set.remove(&**stm, p, u64::from(p) * 10 + i * 2);
                    }
                });
            }
        });
        let snap = set.snapshot(&*stm, 9);
        assert!(
            snap.windows(2).all(|w| w[0] < w[1]),
            "{name}: snapshot not sorted/unique: {snap:?}"
        );
        // Inserted offsets 0..8, removed the even ones: odd offsets remain.
        let want: Vec<u64> = (0..3u64)
            .flat_map(|p| (0..8).filter(|i| i % 2 == 1).map(move |i| p * 10 + i))
            .collect();
        assert_eq!(snap, want, "{name}: disjoint-range oracle violated");
    }
}

#[test]
fn concurrent_queue_conserves_elements_on_all_stms() {
    for name in STM_NAMES {
        let stm = make_stm(name);
        let q = TxQueue::create(&*stm);
        let consumed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|sc| {
            for p in 0..2u32 {
                let stm = &stm;
                sc.spawn(move || {
                    for i in 0..10u64 {
                        q.enqueue(&**stm, p, (u64::from(p) << 32) | i);
                    }
                });
            }
            let stm = &stm;
            let consumed = &consumed;
            sc.spawn(move || {
                let mut got = Vec::new();
                for _ in 0..25 {
                    if let Some(v) = q.dequeue(&**stm, 2) {
                        got.push(v);
                    }
                }
                consumed.lock().unwrap().extend(got);
            });
        });
        let consumed = consumed.into_inner().unwrap();
        // Single consumer: per-producer FIFO must hold in its sequence.
        for p in 0..2u64 {
            let seqs: Vec<u64> = consumed
                .iter()
                .filter(|v| *v >> 32 == p)
                .map(|v| v & 0xffff_ffff)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "{name}: FIFO-per-producer violated for p{p}: {seqs:?}"
            );
        }
        // Conservation: consumed ⊎ remaining = enqueued.
        let mut all = consumed;
        all.extend(q.snapshot(&*stm, 9));
        all.sort_unstable();
        let mut want: Vec<u64> = (0..2u64)
            .flat_map(|p| (0..10u64).map(move |i| (p << 32) | i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want, "{name}: element conservation violated");
    }
}
