//! Negative oracle: the deliberately broken list (search and link in
//! separate transactions, no revalidation) must be *caught* by exactly the
//! invariants the differential harness checks. If this test ever fails,
//! the harness's collection invariants have gone vacuous.

mod common;

use common::make_stm;
use oftm_structs::broken::BrokenIntSet;
use oftm_structs::TxIntSet;

/// One contended round: `threads` workers insert interleaved distinct
/// values. Returns whether the invariants (conservation of all inserted
/// values + sortedness + no duplicates) were violated.
fn broken_round_violates(round: u64) -> bool {
    let stm = make_stm("dstm");
    let list = BrokenIntSet::create(&*stm);
    let threads = 4u64;
    let per = 24u64;
    // Inserts are two quick transactions each; without a start barrier,
    // thread-spawn stagger can serialize the workers entirely and let the
    // broken list escape detection.
    let barrier = std::sync::Barrier::new(threads as usize);
    std::thread::scope(|sc| {
        for p in 0..threads {
            let stm = &stm;
            let barrier = &barrier;
            sc.spawn(move || {
                barrier.wait();
                for i in 0..per {
                    // Interleaved values: p, p+T, p+2T, … — every insert
                    // lands somewhere different in the sorted order, and
                    // racing inserts share predecessors constantly.
                    list.insert(&**stm, p as u32, (round << 32) | (i * threads + p));
                }
            });
        }
    });
    let snap = list.snapshot(&*stm, 9);
    let sorted_unique = snap.windows(2).all(|w| w[0] < w[1]);
    let conserved = snap.len() as u64 == threads * per;
    !(sorted_unique && conserved)
}

#[test]
fn harness_invariants_catch_the_broken_list() {
    // The lost-update window is between the two transactions of each
    // insert; under 4 contending threads it is hit with overwhelming
    // probability per round. Allow several rounds to make the test robust
    // on any scheduler, but demand detection.
    let caught = (0..20u64).any(broken_round_violates);
    assert!(
        caught,
        "the broken list survived 20 contended rounds — the structure \
         invariants (conservation + sortedness) are vacuous"
    );
}

#[test]
fn correct_list_passes_the_same_workload() {
    // Sanity for the oracle itself: the real TxIntSet under the identical
    // workload never trips the invariants.
    for _round in 0..3 {
        let stm = make_stm("dstm");
        let set = TxIntSet::create(&*stm);
        let threads = 4u64;
        let per = 24u64;
        std::thread::scope(|sc| {
            for p in 0..threads {
                let stm = &stm;
                sc.spawn(move || {
                    for i in 0..per {
                        set.insert(&**stm, p as u32, i * threads + p);
                    }
                });
            }
        });
        let snap = set.snapshot(&*stm, 9);
        assert!(snap.windows(2).all(|w| w[0] < w[1]), "unsorted: {snap:?}");
        assert_eq!(snap.len() as u64, threads * per, "elements lost");
    }
}
