//! Shared STM factory for the collection test suites (a minimal local
//! copy of the `oftm-bench` factory: this crate sits below the bench crate
//! and must not depend on it).

use oftm_core::api::WordStm;
use oftm_core::cm::Polite;
use oftm_core::dstm::{Dstm, DstmWord};
use std::sync::Arc;

/// Every STM implementation in the workspace, by name.
#[allow(dead_code)] // not every test target iterates all STMs
pub const STM_NAMES: &[&str] = &["dstm", "tl", "tl2", "coarse", "algo2-cas", "algo2-splitter"];

pub fn make_stm(name: &str) -> Box<dyn WordStm> {
    match name {
        "dstm" => Box::new(DstmWord::new(Dstm::new(Arc::new(Polite::default())))),
        "tl" => Box::new(oftm_baselines::TlStm::new()),
        "tl2" => Box::new(oftm_baselines::Tl2Stm::new()),
        "coarse" => Box::new(oftm_baselines::CoarseStm::new()),
        "algo2-cas" => Box::new(oftm_algo2::Algo2Stm::new(oftm_algo2::FocKind::Cas)),
        "algo2-splitter" => Box::new(oftm_algo2::Algo2Stm::new(oftm_algo2::FocKind::SplitterTas)),
        other => panic!("unknown STM {other}"),
    }
}
