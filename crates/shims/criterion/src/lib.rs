//! Offline shim for `criterion`: runs each benchmark closure a fixed
//! number of samples and prints the mean wall-clock time per iteration.
//! No statistics, warm-up scheduling, or HTML reports — just enough to
//! keep `cargo bench` runnable and the bench sources compiling unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    println!("bench {label}: {mean_ns:.0} ns/iter ({} iters)", b.iters);
}

pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.total += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Identifier of a parameterized benchmark: `function_id/parameter`.
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_id: function_id.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// Opaque value barrier (best-effort without unstable intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dstm", 4).to_string(), "dstm/4");
    }
}
