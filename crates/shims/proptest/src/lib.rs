//! Offline shim for `proptest`: a deterministic, seeded property-testing
//! mini-framework with the same surface syntax for the subset this
//! workspace uses (`proptest! { fn f(x in strategy) { … } }`, integer
//! range strategies, tuples, `collection::vec`, `any::<T>()`,
//! `prop_assert!`/`prop_assert_eq!`, `ProptestConfig::with_cases`).
//!
//! Differences from real proptest:
//! * **No shrinking.** A failing case reports its case seed; re-run with
//!   `PROPTEST_SEED=<seed>` to replay exactly that input (case 0 of the
//!   run then regenerates it).
//! * Generation is a pure function of the seed — runs are reproducible by
//!   default (base seed is fixed unless `PROPTEST_SEED` is set).

use std::ops::Range;

/// Run configuration: number of generated cases per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Base seed for a property run: `PROPTEST_SEED` env var if set (decimal
/// or 0x-hex), else a fixed constant for reproducible CI.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable PROPTEST_SEED: {s:?}"))
        }
        Err(_) => 0xA11C_E5EE_D000_0001,
    }
}

/// Deterministic splitmix64 stream used for generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Unlike real proptest there is no value tree or
/// shrinking: `generate` draws a single value.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                let span = (hi - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding a fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length spec for [`vec`]: a `usize` (exact) or `Range<usize>`.
    pub trait SizeRange {
        fn into_range(self) -> Range<usize>;
    }

    impl SizeRange for Range<usize> {
        fn into_range(self) -> Range<usize> {
            self
        }
    }

    impl SizeRange for usize {
        fn into_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a Vec of `elem`-generated values with
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Asserts inside a `proptest!` body; on failure the property fails with
/// the case's reproduction seed attached (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                va,
                vb
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return ::std::result::Result::Err(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                va,
                vb
            ));
        }
    }};
}

/// The `proptest!` block macro: wraps each `fn name(pat in strategy, …)`
/// into a `#[test]` that runs `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::base_seed();
            for case in 0..config.cases {
                // Case 0 uses the base seed VERBATIM: replaying with
                // PROPTEST_SEED set to a printed case seed regenerates
                // that failing input as case 0 of the replay run.
                let seed = if case == 0 {
                    base
                } else {
                    base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case))
                };
                let mut __rng = $crate::TestRng::new(seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        let run = || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        run()
                    }),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(msg)) => panic!(
                        "property {} failed: {}\n  reproduce: PROPTEST_SEED={:#018x} (case {})",
                        stringify!($name), msg, seed, case
                    ),
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "property {} panicked; reproduce: PROPTEST_SEED={:#018x} (case {})",
                            stringify!($name), seed, case
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_deterministic() {
        use crate::{Strategy, TestRng};
        let strat = (0u8..5, 0u64..50, any::<bool>());
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn vec_respects_bounds() {
        use crate::{Strategy, TestRng};
        let strat = crate::collection::vec(0u64..10, 2..7);
        let mut rng = TestRng::new(7);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    /// The replay contract: a failing case's printed seed, used as the
    /// base of a new run, regenerates that exact input as case 0 (case 0
    /// uses the base verbatim).
    #[test]
    fn printed_case_seed_replays_as_case_zero() {
        use crate::{Strategy, TestRng};
        let strat = (0u8..200, crate::collection::vec(0u64..1000, 1..9));
        let base = crate::base_seed();
        for case in 1u32..8 {
            let case_seed = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case));
            let original = strat.generate(&mut TestRng::new(case_seed));
            // Replay run with PROPTEST_SEED=case_seed: case 0 uses it verbatim.
            let replayed = strat.generate(&mut TestRng::new(case_seed));
            assert_eq!(original, replayed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..100, flips in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(flips.len() < 4, "len was {}", flips.len());
            prop_assert_eq!(x as u64 + 1, u64::from(x) + 1);
        }
    }
}
