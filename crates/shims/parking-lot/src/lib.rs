//! Offline shim for `parking_lot`: non-poisoning `Mutex`/`RwLock` built on
//! `std::sync`. A panicked holder's poison flag is swallowed (parking_lot
//! semantics) by recovering the inner guard.

pub use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex in get_mut"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn no_poison_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
