//! Offline shim for `serde`: marker traits plus no-op derive macros, so
//! `#[derive(Serialize, Deserialize)]` in the workspace compiles without
//! crates.io access. Swap for the real serde by editing the workspace
//! `[workspace.dependencies]` entry; the derives here emit marker impls
//! only, no actual (de)serialization.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive_shim::{Deserialize, Serialize};
