//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! offline serde shim. They emit marker-trait impls only; actual
//! (de)serialization is out of scope until the real serde is available.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier of the type the derive is attached to: the first
/// identifier after a `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Generics make blanket naming hard without a full parser; every serde
/// derive in this workspace is on a non-generic type, so we only handle
/// that case and fall back to emitting nothing.
fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize<'_>", input)
}
