//! Offline shim for `crossbeam-epoch`.
//!
//! Provides the `Atomic` / `Owned` / `Shared` / `Guard` pointer API the
//! DSTM engine uses, backed by plain `AtomicPtr`, with **real epoch-based
//! reclamation**: `defer_destroy` queues the pointee in a global garbage
//! list tagged with the current epoch, and it is dropped once no pinned
//! thread can still reach it. (Earlier revisions of this shim leaked every
//! deferred pointer; long-running DSTM workloads — every write CAS retires
//! a locator — grew without bound.)
//!
//! ## Scheme
//!
//! A monotonic global epoch plus per-thread participants:
//!
//! * [`pin`] registers the calling thread (once) and, on the outermost of
//!   its nested pins, publishes the current global epoch in the thread's
//!   participant record with `SeqCst`;
//! * [`Guard::defer_destroy`] tags the garbage with the current epoch and
//!   then advances it, so every *later* pin publishes a strictly greater
//!   epoch;
//! * when the outermost guard drops, the thread tries to collect: garbage
//!   tagged `e` is dropped iff every currently pinned participant
//!   published an epoch `> e`.
//!
//! Safety argument: `defer_destroy` requires the pointer to be unlinked —
//! no load after the call returns it. A thread that could still hold the
//! pointer must therefore have pinned *before* the retirement, i.e. with
//! a published epoch ≤ the garbage tag; the collection rule waits for
//! every such pin to end. Threads that pin later observe an advanced
//! epoch and, by the unlink contract, can never load the pointer.
//!
//! The API stays call-for-call compatible with the subset of the real
//! crate used here; swapping the real crate in remains a no-source-change
//! operation.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Participant epoch value meaning "not currently pinned".
const NOT_PINNED: u64 = u64::MAX;

/// Per-thread registration in the global epoch protocol.
struct Participant {
    /// Published epoch while pinned; [`NOT_PINNED`] otherwise.
    epoch: AtomicU64,
    /// Pin nesting depth (mutated only by the owning thread).
    pins: AtomicUsize,
    /// Set when the owning thread exits; the record is pruned by the next
    /// collection.
    dead: AtomicBool,
}

/// A deferred destruction: a type-erased owned pointer plus its dropper.
struct Garbage {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
    /// Epoch tag: droppable once every pinned participant is past it.
    epoch: u64,
}

// SAFETY: the pointee was handed over exclusively via `defer_destroy`
// (unlinked, no new loads can reach it); only the collector touches it.
unsafe impl Send for Garbage {}

struct Global {
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Garbage>>,
    /// Items currently in `garbage` (kept in sync under its lock): lets
    /// unpins of garbage-free periods skip collection without locking.
    pending: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(1),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        pending: AtomicUsize::new(0),
    })
}

/// Owning handle to this thread's participant; marks it dead on thread
/// exit so collections can prune it.
struct ParticipantHandle(Arc<Participant>);

impl Drop for ParticipantHandle {
    fn drop(&mut self) {
        // ord: SeqCst joins the protocol's single total order so a
        // collector's retain-scan sees dead+unpinned consistently.
        self.0.dead.store(true, Ordering::SeqCst);
    }
}

thread_local! {
    static PARTICIPANT: ParticipantHandle = {
        let p = Arc::new(Participant {
            epoch: AtomicU64::new(NOT_PINNED),
            pins: AtomicUsize::new(0),
            dead: AtomicBool::new(false),
        });
        global().participants.lock().unwrap().push(Arc::clone(&p));
        ParticipantHandle(p)
    };
}

/// Drops every garbage item no pinned participant can reach. Best-effort:
/// skips when there is nothing to do and backs off if another thread is
/// already collecting. (Still a process-global collector with one lock —
/// far simpler than the real crate's per-thread bags; swapping the real
/// crate in restores those. The fast path below keeps pin/unpin cheap for
/// workloads that never retire.)
fn try_collect() {
    let g = global();
    // ord: Acquire pairs with the enqueuer's Release `pending` bump so a
    // non-zero count implies the garbage push is visible under the lock.
    if g.pending.load(Ordering::Acquire) == 0 {
        return;
    }
    let Ok(mut garbage) = g.garbage.try_lock() else {
        return;
    };
    // `try_lock` here too: collection is best-effort, and a hard lock
    // turns a preempted lock holder into a convoy for every unpinning
    // thread on an oversubscribed machine.
    let Ok(mut participants) = g.participants.try_lock() else {
        return;
    };
    let min_pinned = {
        participants.retain(|p| {
            // ord: SeqCst — prune only records whose death and unpin are
            // both settled in the protocol's total order.
            !(p.dead.load(Ordering::SeqCst) && p.epoch.load(Ordering::SeqCst) == NOT_PINNED)
        });
        let min = participants
            .iter()
            // ord: SeqCst scan Dekker-pairs with `pin`'s SeqCst
            // publish-and-revalidate (see the note there).
            .map(|p| p.epoch.load(Ordering::SeqCst))
            .filter(|&e| e != NOT_PINNED)
            .min()
            .unwrap_or(u64::MAX);
        drop(participants);
        min
    };
    let mut dead = Vec::new();
    garbage.retain_mut(|item| {
        if item.epoch < min_pinned {
            dead.push((item.ptr, item.drop_fn));
            false
        } else {
            true
        }
    });
    // ord: Release keeps the count's decrement ordered after the retain
    // under the lock (pairs with the fast path's Acquire).
    g.pending.fetch_sub(dead.len(), Ordering::Release);
    // Run the (arbitrary) destructors outside the garbage lock.
    drop(garbage);
    for (ptr, drop_fn) in dead {
        // SAFETY: ownership was transferred in via `defer_destroy`; the
        // epoch rule guarantees no pinned thread can still reach `ptr`.
        unsafe { drop_fn(ptr) };
    }
}

/// A pin on the epoch: while any `Guard` of a thread is live, every
/// pointer the thread loaded from an `Atomic` stays valid.
pub struct Guard {
    /// Borrowed participant record; null for [`unprotected`]. A raw
    /// pointer, not an `Arc`: cloning/dropping an `Arc` is two atomic
    /// RMWs per pin, and pins sit on the table's per-read hot path. The
    /// registry's `Arc` keeps the record alive while any guard of the
    /// thread is live (a record is only pruned when dead *and* unpinned,
    /// and `epoch` stays published until the last guard drops).
    part: *const Participant,
    /// Debug-only: thread that created the pin. A `Guard` must be dropped
    /// on the thread that pinned — a cross-thread drop would decrement a
    /// foreign participant's pin count (see the `Send`/`Sync` note below).
    #[cfg(debug_assertions)]
    pinner: Option<std::thread::ThreadId>,
}

// SAFETY: shim simplification, matching the previous `Arc`-holding guard
// (which was auto-`Send`/`Sync`): all fields behind the pointer are
// atomics, and validity is maintained by the registry as described above.
// The real crate's `Guard` is `!Send`; every guard in this workspace is
// used by its owning thread only — enforced in debug builds by the
// cross-thread-drop assertion in `Drop`.
unsafe impl Send for Guard {}
unsafe impl Sync for Guard {}

/// Pins the current thread.
pub fn pin() -> Guard {
    let part = PARTICIPANT.with(|h| Arc::as_ptr(&h.0));
    // SAFETY: see `Guard::part` — the registry keeps the record alive.
    let p = unsafe { &*part };
    // ord: Relaxed — `pins` is mutated only by the owning thread; the
    // epoch publication below carries the cross-thread ordering.
    if p.pins.fetch_add(1, Ordering::Relaxed) == 0 {
        // Publish-and-revalidate, all `SeqCst`: store the observed epoch,
        // then re-read the global. If it did not move, our store is
        // SeqCst-ordered before any later retirement's epoch bump — the
        // collector's scan (after that bump) must see our slot. If it
        // moved, the re-read reads from the bump (a SeqCst RMW), which
        // happens-before-orders the retirer's unlink ahead of all our
        // loads — we cannot observe the retired pointer at all. Either
        // way the one-epoch reclamation rule is safe; a plain
        // load-then-store would leave a window where a concurrent
        // collector misses the slot while our Acquire pointer loads may
        // still return the unlinked value on weakly ordered hardware.
        // ord: SeqCst throughout — the publish-and-revalidate protocol
        // described above needs the store and both loads in the single
        // total order shared with `defer_destroy`'s epoch bump and the
        // collector's scan.
        loop {
            let e = global().epoch.load(Ordering::SeqCst);
            p.epoch.store(e, Ordering::SeqCst);
            // ord: SeqCst revalidation (see the protocol note above).
            if global().epoch.load(Ordering::SeqCst) == e {
                break;
            }
        }
    }
    Guard {
        part,
        #[cfg(debug_assertions)]
        pinner: Some(std::thread::current().id()),
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.part.is_null() {
            return;
        }
        // SAFETY: see `Guard::part`.
        let p = unsafe { &*self.part };
        #[cfg(debug_assertions)]
        let cross_thread = self
            .pinner
            .is_some_and(|id| id != std::thread::current().id());
        // ord: Relaxed — owner-thread-only counter, as in `pin`.
        if p.pins.fetch_sub(1, Ordering::Relaxed) == 1 {
            // ord: SeqCst unpin joins the protocol's total order so the
            // collector's scan and this release cannot reorder.
            p.epoch.store(NOT_PINNED, Ordering::SeqCst);
            try_collect();
        }
        // Checked after the release so even a violating (debug) drop
        // leaves the participant consistent for the rest of the process.
        #[cfg(debug_assertions)]
        assert!(
            !cross_thread,
            "epoch Guard dropped on a different thread than the one that pinned it"
        );
    }
}

/// Returns a dummy guard for contexts with no concurrent accessors. It
/// does not pin the epoch.
///
/// # Safety
/// Caller must guarantee no other thread can reach the pointers accessed
/// under this guard (e.g. inside `Drop` of the sole owner).
pub unsafe fn unprotected() -> &'static Guard {
    static GUARD: Guard = Guard {
        part: std::ptr::null(),
        #[cfg(debug_assertions)]
        pinner: None,
    };
    &GUARD
}

impl Guard {
    /// Schedules `ptr`'s pointee for destruction once no pin can reach it.
    ///
    /// # Safety
    /// `ptr` must be unlinked: no new loads may return it. The pointee
    /// must have been allocated as `Owned<T>`/`Atomic<T>` (a `Box<T>`).
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        unsafe fn drop_boxed<T>(p: *mut ()) {
            drop(Box::from_raw(p as *mut T));
        }
        if ptr.is_null() {
            return;
        }
        let g = global();
        // ord: SeqCst bump — later pins' publish-and-revalidate must
        // observe it (or be observed by the collector); see `pin`.
        let tag = g.epoch.fetch_add(1, Ordering::SeqCst);
        let mut garbage = g.garbage.lock().unwrap();
        // ord: Release pairs with the fast path's Acquire in `try_collect`
        // (done under the garbage lock, before the push is visible).
        g.pending.fetch_add(1, Ordering::Release);
        garbage.push(Garbage {
            ptr: ptr.ptr as *mut (),
            drop_fn: drop_boxed::<T>,
            epoch: tag,
        });
    }
}

/// An owning pointer to heap-allocated `T` (like `Box`).
pub struct Owned<T> {
    ptr: *mut T,
}

// SAFETY: `Owned` is a unique owner (a `Box` by another name); sending
// it transfers the single handle, which is safe exactly when `T: Send`.
unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a `Shared` tied to `guard`, relinquishing ownership
    /// to the concurrent structure.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Owned({:p})", self.ptr)
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `ptr` came from `Box::into_raw` in `new` and is only
        // freed by `Drop` (or handed off whole by `into_shared`, which
        // forgets `self`), so it is live and uniquely ours here.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: same provenance as `deref` — the pointer is the live
        // `Box::into_raw` allocation and this is its unique owner, so
        // reconstituting the box here frees it exactly once.
        unsafe { drop(Box::from_raw(self.ptr)) }
    }
}

/// A pointer loaned out under a `Guard`; `Copy`, valid for `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// # Safety
    /// The pointee must be valid for `'g` (loaded under the guard from a
    /// structure that only retires via `defer_destroy`) and non-null.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }

    /// Reclaims ownership of the pointee.
    ///
    /// # Safety
    /// Caller must be the unique accessor (e.g. in `Drop`).
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }
}

/// A pointer that can be handed to [`Atomic::swap`] — either an owning
/// [`Owned`] or a (typically null) [`Shared`]. Mirrors the real crate's
/// `Pointer` trait for the subset used here.
pub trait Pointer<T> {
    /// Relinquishes the pointer value (forgetting any ownership — the
    /// atomic takes it over).
    fn into_raw(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_raw(self) -> *mut T {
        let ptr = self.ptr;
        std::mem::forget(self);
        ptr
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_raw(self) -> *mut T {
        self.ptr
    }
}

/// Error type of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed new pointer, handed back to the caller.
    pub new: P,
}

/// An atomic pointer to heap-allocated `T`.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: `Atomic` shares `T` across every thread that loads the
// pointer (it is a `&T` factory), so both auto-traits require
// `T: Send + Sync`; with that bound, sharing or sending the pointer
// cell adds nothing beyond what `&T`/`T` already permit.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above — `&Atomic<T>` only hands out loads/stores of a
// pointer whose pointee is `Send + Sync`.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    pub fn store(&self, new: Owned<T>, ord: Ordering) {
        let raw = new.ptr;
        std::mem::forget(new);
        self.ptr.store(raw, ord);
    }

    /// Atomically replaces the pointer, returning the previous one. The
    /// caller is responsible for the old pointee (typically
    /// [`Guard::defer_destroy`]).
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_raw(), ord),
            _marker: PhantomData,
        }
    }

    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Owned<T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, Owned<T>>> {
        let new_raw = new.ptr;
        match self
            .ptr
            .compare_exchange(current.ptr, new_raw, success, failure)
        {
            Ok(_) => {
                std::mem::forget(new);
                Ok(Shared {
                    ptr: new_raw,
                    _marker: PhantomData,
                })
            }
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    ptr: actual,
                    _marker: PhantomData,
                },
                new,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The epoch state is process-global, and several tests assert exact
    /// drop counts that a concurrently pinned sibling test would
    /// legitimately delay. Serialize every pinning test through this lock
    /// (ignoring poisoning: a failed test must not cascade).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static SERIAL: Mutex<()> = Mutex::new(());
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn load_and_deref() {
        let _serial = serial();
        let a = Atomic::new(5u64);
        let g = pin();
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *s.deref() }, 5);
    }

    #[test]
    fn cas_success_and_failure() {
        let _serial = serial();
        let a = Atomic::new(1u64);
        let g = pin();
        let cur = a.load(Ordering::Acquire, &g);
        let installed = a
            .compare_exchange(cur, Owned::new(2), Ordering::AcqRel, Ordering::Acquire, &g)
            .ok()
            .expect("uncontended CAS succeeds");
        assert_eq!(unsafe { *installed.deref() }, 2);
        // Stale expected pointer: must fail and hand the Owned back.
        let err = a
            .compare_exchange(cur, Owned::new(3), Ordering::AcqRel, Ordering::Acquire, &g)
            .err()
            .expect("stale CAS fails");
        assert_eq!(unsafe { *err.current.deref() }, 2);
        assert_eq!(*err.new, 3);
    }

    #[test]
    fn owned_roundtrip() {
        let _serial = serial();
        let o = Owned::new(String::from("x"));
        let g = pin();
        let s = o.into_shared(&g);
        let back = unsafe { s.into_owned() };
        assert_eq!(*back, "x");
    }

    /// A payload that counts its drops, for observing reclamation.
    struct Counted(Arc<AtomicUsize>);

    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn defer_destroy_actually_frees() {
        let _serial = serial();
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let g = pin();
            let s = Owned::new(Counted(Arc::clone(&drops))).into_shared(&g);
            // SAFETY: never linked anywhere — trivially unlinked.
            unsafe { g.defer_destroy(s) };
            assert_eq!(drops.load(Ordering::SeqCst), 0, "pinned: must not free");
        }
        // The unpin collected: no pin can reach the pointee anymore.
        assert_eq!(drops.load(Ordering::SeqCst), 1, "unpinned: must free");
    }

    #[test]
    fn concurrent_pin_blocks_reclamation_until_released() {
        let _serial = serial();
        let drops = Arc::new(AtomicUsize::new(0));
        let (tx_retired, rx_retired) = std::sync::mpsc::channel::<()>();
        let (tx_checked, rx_checked) = std::sync::mpsc::channel::<()>();
        let drops2 = Arc::clone(&drops);
        let holder = std::thread::spawn(move || {
            let g = pin(); // pinned before the retirement below
            tx_retired.send(()).unwrap();
            rx_checked.recv().unwrap();
            assert_eq!(
                drops2.load(Ordering::SeqCst),
                0,
                "garbage freed under a pin that predates the retirement"
            );
            drop(g);
        });
        rx_retired.recv().unwrap();
        {
            let g = pin();
            let s = Owned::new(Counted(Arc::clone(&drops))).into_shared(&g);
            unsafe { g.defer_destroy(s) };
        }
        // Our own unpin ran a collection; the holder's pin predates the
        // retirement, so the pointee must still be alive.
        tx_checked.send(()).unwrap();
        holder.join().unwrap();
        // Holder unpinned (collecting on the way out): now reclaimable.
        let _ = pin();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nested_pins_keep_the_thread_pinned() {
        let _serial = serial();
        let drops = Arc::new(AtomicUsize::new(0));
        let outer = pin();
        {
            let inner = pin();
            let s = Owned::new(Counted(Arc::clone(&drops))).into_shared(&inner);
            unsafe { inner.defer_destroy(s) };
        }
        // Inner guard dropped, but the outer pin (published epoch ≤ tag)
        // still protects the pointee.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(outer);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    /// Satellite of the verification pass: a `Guard` migrated to and
    /// dropped on a foreign thread must trip the debug assertion — the
    /// drop would decrement that thread's view of a foreign participant.
    #[test]
    #[cfg(debug_assertions)]
    fn cross_thread_guard_drop_is_caught_in_debug() {
        let _serial = serial();
        let g = pin();
        let r = std::thread::spawn(move || drop(g)).join();
        assert!(r.is_err(), "cross-thread Guard drop must panic in debug");
    }

    #[test]
    fn churn_stays_bounded() {
        // The leak-regression for the shim itself: retire many pointees
        // with periodic quiescence; everything but a bounded tail frees.
        let _serial = serial();
        let drops = Arc::new(AtomicUsize::new(0));
        const N: usize = 1000;
        for _ in 0..N {
            let g = pin();
            let s = Owned::new(Counted(Arc::clone(&drops))).into_shared(&g);
            unsafe { g.defer_destroy(s) };
        }
        let _ = pin();
        // Other tests' threads may be pinned concurrently; tolerate a
        // small unreclaimed tail but require the bulk to be freed.
        assert!(
            drops.load(Ordering::SeqCst) >= N - 10,
            "shim leaked: only {} of {N} freed",
            drops.load(Ordering::SeqCst)
        );
    }
}
