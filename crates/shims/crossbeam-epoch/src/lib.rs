//! Offline shim for `crossbeam-epoch`.
//!
//! Provides the `Atomic` / `Owned` / `Shared` / `Guard` pointer API the
//! DSTM engine uses, backed by plain `AtomicPtr`. **Reclamation policy:
//! `defer_destroy` leaks.** Without real epoch tracking we cannot know
//! when concurrent readers are done with an unlinked locator, so the shim
//! trades bounded memory for unconditional safety: every pointer a pinned
//! thread may still hold stays valid forever. Test/bench workloads are
//! bounded, so the leak is too. Swapping in the real crate restores
//! amortized reclamation with no source changes (the API is call-for-call
//! compatible for the subset used here).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A pin on the (conceptual) epoch. In this shim pinning is free and the
/// guard only brands loaned `Shared` pointers with a lifetime.
pub struct Guard {
    _priv: (),
}

/// Pins the current thread.
pub fn pin() -> Guard {
    Guard { _priv: () }
}

/// Returns a dummy guard for contexts with no concurrent accessors.
///
/// # Safety
/// Caller must guarantee no other thread can reach the pointers accessed
/// under this guard (e.g. inside `Drop` of the sole owner).
pub unsafe fn unprotected() -> &'static Guard {
    static GUARD: Guard = Guard { _priv: () };
    &GUARD
}

impl Guard {
    /// Schedules `ptr`'s pointee for destruction once no pin can reach it.
    ///
    /// Shim behavior: leaks (see module docs).
    ///
    /// # Safety
    /// `ptr` must be unlinked: no new loads may return it.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let _ = ptr;
    }
}

/// An owning pointer to heap-allocated `T` (like `Box`).
pub struct Owned<T> {
    ptr: *mut T,
}

unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a `Shared` tied to `guard`, relinquishing ownership
    /// to the concurrent structure.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let ptr = self.ptr;
        std::mem::forget(self);
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Owned({:p})", self.ptr)
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        unsafe { drop(Box::from_raw(self.ptr)) }
    }
}

/// A pointer loaned out under a `Guard`; `Copy`, valid for `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// # Safety
    /// The pointee must be valid for `'g` (loaded under the guard from a
    /// structure that only retires via `defer_destroy`) and non-null.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }

    /// Reclaims ownership of the pointee.
    ///
    /// # Safety
    /// Caller must be the unique accessor (e.g. in `Drop`).
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned { ptr: self.ptr }
    }
}

/// Error type of a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed new pointer, handed back to the caller.
    pub new: P,
}

/// An atomic pointer to heap-allocated `T`.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    pub fn store(&self, new: Owned<T>, ord: Ordering) {
        let raw = new.ptr;
        std::mem::forget(new);
        self.ptr.store(raw, ord);
    }

    pub fn compare_exchange<'g>(
        &self,
        current: Shared<'_, T>,
        new: Owned<T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, Owned<T>>> {
        let new_raw = new.ptr;
        match self
            .ptr
            .compare_exchange(current.ptr, new_raw, success, failure)
        {
            Ok(_) => {
                std::mem::forget(new);
                Ok(Shared {
                    ptr: new_raw,
                    _marker: PhantomData,
                })
            }
            Err(actual) => Err(CompareExchangeError {
                current: Shared {
                    ptr: actual,
                    _marker: PhantomData,
                },
                new,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_deref() {
        let a = Atomic::new(5u64);
        let g = pin();
        let s = a.load(Ordering::Acquire, &g);
        assert_eq!(unsafe { *s.deref() }, 5);
    }

    #[test]
    fn cas_success_and_failure() {
        let a = Atomic::new(1u64);
        let g = pin();
        let cur = a.load(Ordering::Acquire, &g);
        let installed = a
            .compare_exchange(cur, Owned::new(2), Ordering::AcqRel, Ordering::Acquire, &g)
            .ok()
            .expect("uncontended CAS succeeds");
        assert_eq!(unsafe { *installed.deref() }, 2);
        // Stale expected pointer: must fail and hand the Owned back.
        let err = a
            .compare_exchange(cur, Owned::new(3), Ordering::AcqRel, Ordering::Acquire, &g)
            .err()
            .expect("stale CAS fails");
        assert_eq!(unsafe { *err.current.deref() }, 2);
        assert_eq!(*err.new, 3);
    }

    #[test]
    fn owned_roundtrip() {
        let o = Owned::new(String::from("x"));
        let g = pin();
        let s = o.into_shared(&g);
        let back = unsafe { s.into_owned() };
        assert_eq!(*back, "x");
    }
}
