//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! mini-crate provides exactly the API subset the workspace uses:
//! `rngs::SmallRng`, the `Rng` and `SeedableRng` traits, and integer
//! `gen_range` over half-open ranges. The generator is splitmix64 —
//! statistically fine for contention-manager coin flips and test
//! workloads, not cryptographic.

use std::ops::Range;

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy {
    fn from_u64_in(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_u64_in(raw: u64, range: Range<Self>) -> Self {
                // Through i128 so negative starts of signed ranges don't
                // sign-extend into huge unsigned values.
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(hi > lo, "gen_range called with empty range");
                let span = (hi - lo) as u128;
                (lo + ((raw as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Subset of `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::from_u64_in(self.next_u64(), range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seeds from process-local entropy (hasher randomness + a monotone
    /// counter), good enough to decorrelate threads.
    fn from_entropy() -> Self {
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let h = std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish();
        Self::seed_from_u64(h ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

pub mod rngs {
    /// Splitmix64-backed small PRNG.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u8..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_range_signed_negative_start() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut hit_neg = false;
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            hit_neg |= v < 0;
            let w = r.gen_range(i64::MIN..0);
            assert!(w < 0);
        }
        assert!(hit_neg, "negative half of the range never sampled");
    }
}
