//! Offline shim for a minimal async executor (the container has no
//! crates.io access): a **work-stealing multi-thread executor** plus a
//! standalone [`block_on`], covering exactly the API subset the workspace
//! uses. `oftm-asyncrt` is executor-agnostic (its futures are plain
//! `std::future::Future`s); this crate exists so the bench binaries and
//! tests have *something* to run thousands of them on. Swapping it for a
//! real runtime is a `Cargo.toml` change.
//!
//! ## Design
//!
//! * [`Executor::new(workers)`](Executor::new) spawns `workers` OS
//!   threads. Each owns a local FIFO run queue; a shared injector queue
//!   receives tasks from [`Executor::spawn`] and from wakes raised off
//!   the worker threads.
//! * A worker pops its local queue first, then the injector, then
//!   **steals** the back half of a sibling's local queue — the classic
//!   balancing move that keeps a burst of wakes from pinning all work on
//!   one thread.
//! * Idle workers park on a condvar; every push notifies it.
//! * A task's [`Waker`] re-enqueues the task. An `queued` flag collapses
//!   wake storms: concurrent wakes of an already-queued task are no-ops
//!   (the poll that dequeues it clears the flag first, so a wake arriving
//!   *during* poll re-queues it — no wakeup is lost).
//! * [`Executor::spawn`] returns a [`JoinHandle`]; `join` blocks the
//!   calling (non-async) thread until the task completes. Panics inside a
//!   task surface at `join`.
//!
//! Queues are mutexed `VecDeque`s — this shim favors obvious correctness
//! over queue micro-optimization; the STM under test is the hot path, not
//! the scheduler.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: its future plus the re-queue machinery.
struct Task {
    /// The future, consumed (set to `None`) on completion. A `Mutex`
    /// rather than `UnsafeCell`: polls are serialized by the queued-flag
    /// protocol, but the lock makes that invariant locally checkable.
    future: Mutex<Option<BoxFuture>>,
    /// True while the task sits in some queue (or is being polled and was
    /// re-woken). See module docs.
    queued: AtomicBool,
    exec: Arc<Inner>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            let exec = Arc::clone(&self.exec);
            exec.inject(self);
        }
    }
}

struct Inner {
    injector: Mutex<VecDeque<Arc<Task>>>,
    locals: Vec<Mutex<VecDeque<Arc<Task>>>>,
    /// Parking for idle workers: (mutex guards nothing but the condvar,
    /// the queues have their own locks).
    idle: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

impl Inner {
    fn inject(&self, task: Arc<Task>) {
        self.injector.lock().unwrap().push_back(task);
        self.wakeup.notify_one();
    }

    /// Worker `me`'s next task: local, injector, then steal.
    fn next_task(&self, me: usize) -> Option<Arc<Task>> {
        if let Some(t) = self.locals[me].lock().unwrap().pop_front() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        // Steal the back half of the fullest sibling queue.
        for k in 1..self.locals.len() {
            let victim = (me + k) % self.locals.len();
            let mut q = self.locals[victim].lock().unwrap();
            let n = q.len();
            if n > 0 {
                let keep = n / 2;
                let mut stolen: VecDeque<Arc<Task>> = q.split_off(keep);
                drop(q);
                let first = stolen.pop_front();
                if !stolen.is_empty() {
                    let mut mine = self.locals[me].lock().unwrap();
                    mine.extend(stolen);
                    drop(mine);
                    // Work arrived for us beyond the task we run now.
                    self.wakeup.notify_one();
                }
                return first;
            }
        }
        None
    }

    fn run_worker(self: &Arc<Self>, me: usize) {
        loop {
            match self.next_task(me) {
                Some(task) => {
                    // Clear the flag *before* polling: a wake landing
                    // mid-poll re-queues the task rather than vanishing.
                    task.queued.store(false, Ordering::Release);
                    let waker = Waker::from(Arc::clone(&task));
                    let mut cx = Context::from_waker(&waker);
                    let mut slot = task.future.lock().unwrap();
                    if let Some(fut) = slot.as_mut() {
                        match fut.as_mut().poll(&mut cx) {
                            Poll::Ready(()) => *slot = None,
                            Poll::Pending => {}
                        }
                    }
                }
                None => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let guard = self.idle.lock().unwrap();
                    // Re-check under the idle lock: a notify between our
                    // failed pop and this park would otherwise be lost.
                    let empty = self.injector.lock().unwrap().is_empty()
                        && self.locals.iter().all(|q| q.lock().unwrap().is_empty());
                    if empty && !self.shutdown.load(Ordering::Acquire) {
                        let _g = self
                            .wakeup
                            .wait_timeout(guard, std::time::Duration::from_millis(10))
                            .unwrap();
                    }
                }
            }
        }
    }
}

/// Catches a panic raised by the wrapped future's poll, so it surfaces at
/// [`JoinHandle::join`] instead of tearing down a worker thread. The
/// boxed field keeps `Self: Unpin`, making the projection safe-code.
struct CatchUnwind<T>(Pin<Box<dyn Future<Output = T> + Send>>);

impl<T> Future for CatchUnwind<T> {
    type Output = std::thread::Result<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = &mut self.as_mut().get_mut().0;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner.as_mut().poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(panic) => Poll::Ready(Err(panic)),
        }
    }
}

/// Shared slot a [`JoinHandle`] blocks on.
struct JoinState<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// Handle to a spawned task; `join` blocks until it completes.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Blocks the calling thread until the task finishes; re-raises the
    /// task's panic, if any.
    pub fn join(self) -> T {
        let mut slot = self.state.result.lock().unwrap();
        while slot.is_none() {
            slot = self.state.done.wait(slot).unwrap();
        }
        match slot.take().expect("checked above") {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }
}

/// The work-stealing executor (see module docs). Dropping it shuts the
/// workers down after their queues drain of *runnable* tasks; call
/// [`JoinHandle::join`] on everything you need finished first.
pub struct Executor {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// Starts `workers` (≥ 1) worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|me| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("async-executor-{me}"))
                    .spawn(move || inner.run_worker(me))
                    .expect("spawn worker")
            })
            .collect();
        Executor {
            inner,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.locals.len()
    }

    /// Spawns `fut` onto the pool and returns a handle to its result.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        let state = Arc::new(JoinState {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let st = Arc::clone(&state);
        let wrapped = async move {
            let out = CatchUnwind(Box::pin(fut)).await;
            *st.result.lock().unwrap() = Some(out);
            st.done.notify_all();
        };
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            queued: AtomicBool::new(true),
            exec: Arc::clone(&self.inner),
        });
        self.inner.inject(task);
        JoinHandle { state }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wakeup.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Thread-parking waker for [`block_on`].
struct Unpark {
    parked: Mutex<bool>,
    cv: Condvar,
}

impl Wake for Unpark {
    fn wake(self: Arc<Self>) {
        *self.parked.lock().unwrap() = false;
        self.cv.notify_one();
    }
}

/// Drives `fut` to completion on the calling thread, parking between
/// polls. The entry point for tests and for sync code that needs one
/// async result.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let unpark = Arc::new(Unpark {
        parked: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(Arc::clone(&unpark));
    let mut cx = Context::from_waker(&waker);
    // SAFETY-free pinning: the future lives on this stack frame for the
    // whole call.
    let mut fut = Box::pin(fut);
    loop {
        *unpark.parked.lock().unwrap() = true;
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                let mut parked = unpark.parked.lock().unwrap();
                while *parked {
                    parked = unpark.cv.wait(parked).unwrap();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_future_woken_from_another_thread() {
        struct Gate {
            open: Arc<AtomicBool>,
            waker_slot: Arc<Mutex<Option<Waker>>>,
        }
        impl Future for Gate {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.open.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    *self.waker_slot.lock().unwrap() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let open = Arc::new(AtomicBool::new(false));
        let slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let t = {
            let open = Arc::clone(&open);
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || {
                // Wait until the future parked, then open the gate.
                loop {
                    if let Some(w) = slot.lock().unwrap().take() {
                        open.store(true, Ordering::Release);
                        w.wake();
                        break;
                    }
                    std::thread::yield_now();
                }
            })
        };
        block_on(Gate {
            open: Arc::clone(&open),
            waker_slot: slot,
        });
        t.join().unwrap();
    }

    #[test]
    fn executor_runs_many_tasks_on_few_workers() {
        let ex = Executor::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|i| {
                let counter = Arc::clone(&counter);
                ex.spawn(async move {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        assert_eq!(sum, (0..200).sum::<usize>());
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    /// A future that yields once per poll until its countdown hits zero,
    /// self-waking — exercises the re-queue path and stealing.
    struct YieldN(usize);
    impl Future for YieldN {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 == 0 {
                Poll::Ready(())
            } else {
                self.0 -= 1;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn tasks_that_yield_repeatedly_complete() {
        let ex = Executor::new(2);
        let handles: Vec<_> = (0..50).map(|_| ex.spawn(YieldN(20))).collect();
        for h in handles {
            h.join();
        }
    }

    #[test]
    fn cross_thread_wakes_reach_parked_workers() {
        // One task parks awaiting an external wake delivered from a plain
        // OS thread — the executor must pick it back up.
        let ex = Executor::new(2);
        let open = Arc::new(AtomicBool::new(false));
        let slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));

        struct Gate(Arc<AtomicBool>, Arc<Mutex<Option<Waker>>>);
        impl Future for Gate {
            type Output = u32;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0.load(Ordering::Acquire) {
                    Poll::Ready(7)
                } else {
                    *self.1.lock().unwrap() = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
        let h = ex.spawn(Gate(Arc::clone(&open), Arc::clone(&slot)));
        let t = std::thread::spawn(move || loop {
            if let Some(w) = slot.lock().unwrap().take() {
                open.store(true, Ordering::Release);
                w.wake();
                break;
            }
            std::thread::yield_now();
        });
        assert_eq!(h.join(), 7);
        t.join().unwrap();
    }
}
