//! The **park watchdog**: a single lazily-spawned timer thread that wakes
//! parked transaction futures after a deadline.
//!
//! Why it must exist: wake-on-commit parking alone can deadlock an
//! obstruction-free TM. Two transactions that mutually abort (e.g. under
//! Algorithm 2, where even reads take revocable ownership) can both end
//! up parked, each waiting for the *other's* commit — which never comes,
//! because both aborted. Obstruction-freedom promises progress only to a
//! transaction that eventually runs alone; the watchdog manufactures that
//! eventuality by re-running parked transactions on a randomized,
//! per-process-desynchronized schedule
//! ([`oftm_core::contention::ContentionPolicy::park_timeout`], derived
//! from the same backoff schedule the sync loops spin on). The timeout is
//! the safety net, not the normal wake path: under ordinary contention a
//! conflicting commit wakes the future orders of magnitude earlier.
//!
//! One thread serves the whole process: deadlines go into a min-heap, the
//! thread sleeps on a condvar until the earliest one, and firing a
//! deadline is a [`Waker::wake`] — by the waker contract a no-op when the
//! future already completed or was re-queued, so stale deadlines (the
//! commit wake won the race) cost nothing but the heap slot.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::Waker;
use std::time::{Duration, Instant};

/// A pending deadline. Ordered by time via `Reverse` in the heap; the
/// sequence number breaks ties so `BinaryHeap`'s `Ord` requirement is
/// total without comparing wakers.
struct Entry {
    at: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Watchdog {
    queue: Mutex<(BinaryHeap<Reverse<Entry>>, u64)>,
    tick: Condvar,
}

impl Watchdog {
    fn run(&self) {
        loop {
            let mut due: Vec<Waker> = Vec::new();
            let mut q = self.queue.lock().unwrap();
            loop {
                let now = Instant::now();
                match q.0.peek() {
                    Some(Reverse(e)) if e.at <= now => {
                        due.push(q.0.pop().expect("peeked").0.waker);
                    }
                    Some(Reverse(e)) => {
                        let wait = e.at - now;
                        if !due.is_empty() {
                            break;
                        }
                        let (nq, _) = self.tick.wait_timeout(q, wait).unwrap();
                        q = nq;
                    }
                    None => {
                        if !due.is_empty() {
                            break;
                        }
                        q = self.tick.wait(q).unwrap();
                    }
                }
            }
            drop(q);
            // Wake outside the lock: a waker may re-arm the watchdog
            // re-entrantly.
            for w in due {
                w.wake();
            }
        }
    }
}

fn watchdog() -> &'static Watchdog {
    static DOG: OnceLock<&'static Watchdog> = OnceLock::new();
    DOG.get_or_init(|| {
        let dog: &'static Watchdog = Box::leak(Box::new(Watchdog {
            queue: Mutex::new((BinaryHeap::new(), 0)),
            tick: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("oftm-park-watchdog".into())
            .spawn(move || dog.run())
            .expect("spawn watchdog");
        dog
    })
}

/// Arms a one-shot wake of `waker` after `delay`. Cheap relative to a
/// park (one heap push + condvar notify); never blocks on timer firing.
pub fn wake_after(delay: Duration, waker: Waker) {
    let dog = watchdog();
    let mut q = dog.queue.lock().unwrap();
    let seq = q.1;
    q.1 += 1;
    q.0.push(Reverse(Entry {
        at: Instant::now() + delay,
        seq,
        waker,
    }));
    drop(q);
    dog.tick.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    struct Counting(AtomicUsize);
    impl Wake for Counting {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deadline_fires_once_and_roughly_on_time() {
        let c = Arc::new(Counting(AtomicUsize::new(0)));
        wake_after(Duration::from_millis(5), Waker::from(Arc::clone(&c)));
        let deadline = Instant::now() + Duration::from_secs(5);
        while c.0.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.0.load(Ordering::SeqCst), 1, "one-shot deadline");
    }

    #[test]
    fn out_of_order_deadlines_all_fire() {
        let c = Arc::new(Counting(AtomicUsize::new(0)));
        for ms in [30u64, 1, 15, 3, 8] {
            wake_after(Duration::from_millis(ms), Waker::from(Arc::clone(&c)));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while c.0.load(Ordering::SeqCst) < 5 {
            assert!(Instant::now() < deadline, "some deadline never fired");
            std::thread::yield_now();
        }
    }
}
