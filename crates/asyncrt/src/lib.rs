//! # oftm-asyncrt — the async transaction runtime
//!
//! Serves *logical clients* in excess of OS threads: a transaction that
//! aborts under contention **parks** as a pending future instead of
//! spinning through randomized backoff, and is woken when a t-variable in
//! its footprint actually changes — i.e. when a conflicting peer
//! commits, the only event after which a re-run can observe a different
//! world. This is the ROADMAP "Async API" item, and the systems response
//! to the cost Kuznetsov & Ravi attribute to obstruction-freedom: under
//! contention, an obstruction-free TM's progress recipe (back off, re-run)
//! burns a core per waiting transaction; parking burns none.
//!
//! ## Architecture
//!
//! * **Commit notifications** live in `oftm-core` ([`oftm_core::notify`]):
//!   every backend (DSTM, TL, TL2, coarse, both Algorithm 2 configs)
//!   publishes its committed writes to its [`CommitNotifier`]; the
//!   runtime is therefore *backend-agnostic* — anything implementing
//!   [`WordStm`] gets async execution for free.
//! * **Futures, not an executor contract** ([`run_transaction_async`],
//!   [`atomically_async`]): a poll runs whole attempts synchronously (a
//!   `WordTx` is single-threaded and never crosses an await point); only
//!   retry state crosses polls. The futures are plain
//!   `std::future::Future`s — they run on anything that can poll; the
//!   `async-executor` shim (a small work-stealing pool + `block_on`)
//!   exists because the container has no crates.io access.
//! * **The watchdog** ([`timer`]): wake-on-commit alone deadlocks when
//!   transactions *mutually abort* and nobody commits (possible under
//!   obstruction-freedom — both back off, both park, no publisher). A
//!   parked future therefore also arms a randomized timeout drawn from
//!   the same [`oftm_core::contention`] schedule the sync loops spin on —
//!   the safety net that preserves the paper's "eventually runs alone"
//!   progress argument.
//!
//! ## Fairness caveats
//!
//! Obstruction-freedom offers no fairness, and parking does not add any:
//! a woken transaction re-runs concurrently with whatever is live and may
//! lose again (shard-granular notifications also wake it spuriously for
//! neighbors' commits — it just re-parks). What parking changes is
//! *where the waiting happens* (off-CPU) and *when re-runs occur* (after
//! a state change instead of on a timer), which is why the stress suite
//! measures strictly fewer wasted re-runs than spin backoff at equal
//! contention — not better fairness.
//!
//! ## Quick start
//!
//! ```
//! use oftm_core::dstm::{Dstm, DstmWord};
//! use oftm_core::api::WordStm;
//! use oftm_histories::TVarId;
//!
//! let stm = DstmWord::new(Dstm::default());
//! stm.register_tvar(TVarId(0), 0);
//! let done = async_executor::block_on(oftm_asyncrt::run_transaction_async(
//!     &stm,
//!     0,
//!     |tx| {
//!         let v = tx.read(TVarId(0))?;
//!         tx.write(TVarId(0), v + 1)
//!     },
//! ));
//! assert_eq!(done.attempts, 1);
//! assert_eq!(stm.peek(TVarId(0)), Some(1));
//! ```

mod collections;
mod ctx;
mod future;
pub mod timer;

pub use collections::{AsyncHashMap, AsyncIntSet, AsyncQueue};
pub use ctx::{
    atomically_async, atomically_async_budgeted, atomically_async_ro, atomically_async_ro_budgeted,
    CtxFuture,
};
pub use future::{
    run_transaction_async, run_transaction_async_budgeted, run_transaction_async_ro,
    run_transaction_async_ro_budgeted, Committed, TxFuture,
};

#[allow(unused_imports)] // rustdoc links
use oftm_core::{api::WordStm, notify::CommitNotifier};
