//! Async façades over the `oftm-structs` collections: every operation is
//! a future that runs one parked-retry transaction
//! ([`crate::atomically_async`]) around the corresponding `*_in`
//! primitive.
//!
//! The wrappers are deliberately thin — each holds the `Copy`able
//! collection handle — and the `*_in` primitives remain available through
//! [`crate::atomically_async`] for *composed* transactions (e.g. the
//! atomic two-queue transfer below), which is where transactions earn
//! their keep over per-operation locks.

use crate::ctx::{atomically_async, atomically_async_ro};
use crate::future::Committed;
use oftm_core::api::WordStm;
use oftm_histories::Value;
use oftm_structs::{TxHashMap, TxIntSet, TxQueue};

/// Async sorted-list integer set (see [`TxIntSet`]).
#[derive(Clone, Copy, Debug)]
pub struct AsyncIntSet(pub TxIntSet);

impl AsyncIntSet {
    pub fn create(stm: &dyn WordStm) -> Self {
        AsyncIntSet(TxIntSet::create(stm))
    }

    pub async fn insert(&self, stm: &dyn WordStm, proc: u32, v: u64) -> Committed<bool> {
        let set = self.0;
        atomically_async(stm, proc, move |ctx| set.insert_in(ctx, v)).await
    }

    pub async fn remove(&self, stm: &dyn WordStm, proc: u32, v: u64) -> Committed<bool> {
        let set = self.0;
        atomically_async(stm, proc, move |ctx| set.remove_in(ctx, v)).await
    }

    /// Runs as a read-only transaction (never parks — see
    /// [`crate::run_transaction_async_ro`]).
    pub async fn contains(&self, stm: &dyn WordStm, proc: u32, v: u64) -> Committed<bool> {
        let set = self.0;
        atomically_async_ro(stm, proc, move |ctx| set.contains_in(ctx, v)).await
    }

    /// Runs as a read-only transaction (never parks).
    pub async fn snapshot(&self, stm: &dyn WordStm, proc: u32) -> Committed<Vec<u64>> {
        let set = self.0;
        atomically_async_ro(stm, proc, move |ctx| set.snapshot_in(ctx)).await
    }
}

/// Async bucketed hash map (see [`TxHashMap`]).
#[derive(Clone, Copy, Debug)]
pub struct AsyncHashMap(pub TxHashMap);

impl AsyncHashMap {
    pub fn create(stm: &dyn WordStm, nbuckets: usize) -> Self {
        AsyncHashMap(TxHashMap::create(stm, nbuckets))
    }

    pub async fn put(
        &self,
        stm: &dyn WordStm,
        proc: u32,
        key: u64,
        value: Value,
    ) -> Committed<Option<Value>> {
        let map = self.0;
        atomically_async(stm, proc, move |ctx| map.put_in(ctx, key, value)).await
    }

    pub async fn remove(&self, stm: &dyn WordStm, proc: u32, key: u64) -> Committed<Option<Value>> {
        let map = self.0;
        atomically_async(stm, proc, move |ctx| map.remove_in(ctx, key)).await
    }

    /// Runs as a read-only transaction (never parks).
    pub async fn get(&self, stm: &dyn WordStm, proc: u32, key: u64) -> Committed<Option<Value>> {
        let map = self.0;
        atomically_async_ro(stm, proc, move |ctx| map.get_in(ctx, key)).await
    }
}

/// Async MPMC FIFO queue (see [`TxQueue`]).
#[derive(Clone, Copy, Debug)]
pub struct AsyncQueue(pub TxQueue);

impl AsyncQueue {
    pub fn create(stm: &dyn WordStm) -> Self {
        AsyncQueue(TxQueue::create(stm))
    }

    pub async fn enqueue(&self, stm: &dyn WordStm, proc: u32, v: Value) -> Committed<()> {
        let q = self.0;
        atomically_async(stm, proc, move |ctx| q.enqueue_in(ctx, v)).await
    }

    pub async fn dequeue(&self, stm: &dyn WordStm, proc: u32) -> Committed<Option<Value>> {
        let q = self.0;
        atomically_async(stm, proc, move |ctx| q.dequeue_in(ctx)).await
    }

    /// Atomically moves the front of `self` onto the back of `to` in one
    /// transaction — the composed-operation idiom: both queues observe
    /// the element exactly once under any interleaving.
    pub async fn transfer_to(
        &self,
        stm: &dyn WordStm,
        proc: u32,
        to: AsyncQueue,
    ) -> Committed<Option<Value>> {
        let src = self.0;
        let dst = to.0;
        atomically_async(stm, proc, move |ctx| {
            let v = src.dequeue_in(ctx)?;
            if let Some(v) = v {
                dst.enqueue_in(ctx, v)?;
            }
            Ok(v)
        })
        .await
    }
}
