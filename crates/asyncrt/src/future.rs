//! The transaction futures: retry-until-commit as a `Future`, with
//! **wake-on-commit parking** instead of spin backoff between aborted
//! attempts.
//!
//! A poll runs whole attempts synchronously — `begin`, body, `tryC` — so
//! a transaction never holds STM state across an await point (a
//! `WordTx` is single-threaded and must die with its attempt). What
//! crosses polls is only the retry state: the attempt count, the aborted
//! attempt's *footprint* ([`oftm_core::api::WordTx::footprint`]), and the
//! [`WaitSnapshot`] of the park protocol.
//!
//! The per-abort decision tree (one policy with the sync loops — see
//! [`oftm_core::contention`]):
//!
//! 1. the first [`ContentionPolicy::immediate_retries`] consecutive
//!    aborts re-run inline — the conflicting commit usually *just*
//!    happened, so an immediate re-run sees the new world;
//! 2. otherwise the future parks: snapshot the footprint's notification
//!    shards, register the task's [`Waker`] with the STM's
//!    [`CommitNotifier`], arm the watchdog timeout
//!    ([`crate::timer`]), and return `Pending`. A conflicting commit —
//!    the only event that can change what the re-run observes — wakes the
//!    task; the watchdog covers the mutual-abort corner where no commit
//!    is coming;
//! 3. if a commit raced the registration ([`CommitNotifier::park`]
//!    returned `false`), the world already changed: re-run inline.
//!
//! An abort with an **empty footprint** (the body aborted before touching
//! any t-variable) has nothing to park on; the future yields (self-wake +
//! `Pending`) so a contended executor still interleaves other tasks.

use crate::timer;
use oftm_core::api::{TxResult, WordStm, WordTx};
use oftm_core::contention::ContentionPolicy;
use oftm_core::notify::WaitSnapshot;
use oftm_core::{BudgetExceeded, TxError};
use oftm_histories::TVarId;
use oftm_obs::{pack_tx, AbortCause, Counter, VarAttr, TX_UNKNOWN};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

#[allow(unused_imports)] // rustdoc links
use oftm_core::notify::CommitNotifier;

/// A committed async transaction: the body's result plus the retry
/// accounting, reported with the same meaning as the sync loops'
/// `(result, attempts)` pairs (one attempt per `begin`).
#[derive(Clone, Copy, Debug)]
pub struct Committed<R> {
    pub value: R,
    /// Transactions begun, committed and aborted alike (≥ 1).
    pub attempts: u32,
    /// Times this future parked on commit notifications.
    pub parks: u32,
}

/// Cross-poll retry state shared by [`TxFuture`] and the collection-level
/// future in [`crate::ctx`].
pub(crate) struct ParkCore<'s> {
    pub stm: &'s dyn WordStm,
    pub proc: u32,
    pub policy: ContentionPolicy,
    pub max_attempts: u32,
    pub attempts: u32,
    consecutive_aborts: u32,
    parks: u32,
    footprint: Vec<TVarId>,
    snap: WaitSnapshot,
    /// `Some` while parked: the armed watchdog deadline. Lets a re-poll
    /// distinguish a *meaningful* wake (footprint changed, or our own
    /// deadline passed) from a stale one — a watchdog entry armed by an
    /// earlier park whose commit-wake won the race. Without this filter
    /// every stale timer fire would trigger a full doomed re-run that
    /// arms yet another timer: the chains self-perpetuate and multiply
    /// with every commit, burying the "fewer wasted re-runs" win.
    parked_until: Option<std::time::Instant>,
    /// When the current park began (set with `parked_until`); feeds the
    /// park-duration histogram on the unparking poll.
    parked_at: Option<std::time::Instant>,
    /// Ring-clock start of the current park: emitted as a `"park"` span
    /// on the meaningful wake (only when tracing is enabled).
    park_started_ns: Option<u64>,
    /// When the in-flight attempt began; feeds the attempt-latency
    /// histogram when the attempt's fate settles ([`ParkCore::end_attempt`]).
    attempt_started: Option<std::time::Instant>,
    /// Attempts begin via [`WordStm::begin_ro`], and aborts never park:
    /// a read-only abort means a conflicting commit *just* landed, so the
    /// immediate re-run observes the new snapshot and (on the wait-free
    /// backends) cannot abort the same way again — parking would trade
    /// that certain progress for a wake round-trip. Past the immediate-
    /// retry budget the future yields (self-wake) instead of parking, so
    /// a contended executor still interleaves peers.
    read_only: bool,
}

/// What the poll loop does after an aborted attempt.
pub(crate) enum AfterAbort {
    /// Re-run the attempt inside this same poll.
    RetryNow,
    /// Return `Pending`; a wake (commit or watchdog) re-polls.
    Pend,
}

impl<'s> ParkCore<'s> {
    pub fn new(stm: &'s dyn WordStm, proc: u32, max_attempts: u32) -> Self {
        ParkCore {
            stm,
            proc,
            policy: ContentionPolicy::default(),
            max_attempts,
            attempts: 0,
            consecutive_aborts: 0,
            parks: 0,
            footprint: Vec::new(),
            snap: WaitSnapshot::new(),
            parked_until: None,
            parked_at: None,
            park_started_ns: None,
            attempt_started: None,
            read_only: false,
        }
    }

    /// Read-only retry core: see the `read_only` field docs.
    pub fn new_ro(stm: &'s dyn WordStm, proc: u32, max_attempts: u32) -> Self {
        ParkCore {
            read_only: true,
            ..Self::new(stm, proc, max_attempts)
        }
    }

    /// Poll-entry gate. `true`: run attempts. `false`: this wake was
    /// stale — neither the parked footprint changed nor our deadline
    /// passed; stay `Pending`. The notifier registration is necessarily
    /// still standing (a publish on our shards would have changed the
    /// snapshot), and the armed watchdog entry is still pending, so no
    /// re-registration is needed: both route wakes to the task, not to a
    /// specific waker clone.
    pub fn should_run(&mut self) -> bool {
        match self.parked_until {
            None => true,
            Some(deadline) => {
                let stats = self.stm.stats();
                if self.stm.notifier().changed_since(&self.snap)
                    || std::time::Instant::now() >= deadline
                {
                    self.parked_until = None;
                    stats.incr(Counter::Wakes);
                    if let Some(at) = self.parked_at.take() {
                        stats.record_park_ns(at.elapsed().as_nanos() as u64);
                    }
                    if let Some(t0) = self.park_started_ns.take() {
                        oftm_obs::ring::emit_span(
                            "park",
                            "async_park_core",
                            u64::from(self.proc),
                            u64::from(self.parks),
                            t0,
                        );
                    }
                    true
                } else {
                    stats.incr(Counter::StaleWakes);
                    false
                }
            }
        }
    }

    /// True once the retry budget is spent.
    pub fn exhausted(&self) -> bool {
        self.attempts >= self.max_attempts
    }

    pub fn begin_attempt(&mut self) -> Box<dyn WordTx + 's> {
        if self.attempts > 0 {
            self.stm.stats().incr(Counter::Retries);
        }
        self.attempts += 1;
        self.footprint.clear();
        self.attempt_started = Some(std::time::Instant::now());
        if self.read_only {
            self.stm.begin_ro(self.proc)
        } else {
            self.stm.begin(self.proc)
        }
    }

    /// Records the attempt-latency sample once the attempt's fate is
    /// settled (committed, or aborted and its transaction dropped). Parks
    /// happen between attempts, so park time never inflates the sample.
    pub fn end_attempt(&mut self) {
        if let Some(at) = self.attempt_started.take() {
            self.stm
                .stats()
                .record_attempt_ns(at.elapsed().as_nanos() as u64);
        }
    }

    /// Tags the spent retry budget on the cause taxonomy (the async
    /// analogue of the sync loops' budget accounting).
    pub fn budget_exhausted(&self) -> BudgetExceeded {
        // No conflicting variable and no aggressor: the budget ran out
        // across attempts that each tagged their own cause already.
        self.stm.stats().abort_at(
            AbortCause::BudgetExhausted,
            VarAttr::NoVar,
            pack_tx(self.proc, self.max_attempts),
            TX_UNKNOWN,
        );
        BudgetExceeded {
            attempts: self.max_attempts,
        }
    }

    /// Captures `tx`'s footprint (call on every attempt right before its
    /// fate is decided — `tryC` consumes the transaction, and an abort
    /// needs the footprint to park on). [`WordTx::footprint`] may emit
    /// duplicates (collection traversals re-touch link words constantly),
    /// so the log is deduplicated here, before anything registers
    /// per-entry state on it: parking on an N-op transaction must
    /// register each notify shard once, not once per touch.
    pub fn capture_footprint(&mut self, tx: &dyn WordTx) {
        self.footprint.clear();
        tx.footprint(&mut self.footprint);
        self.footprint.sort_unstable();
        self.footprint.dedup();
    }

    pub fn committed<R>(&self, value: R) -> Committed<R> {
        Committed {
            value,
            attempts: self.attempts,
            parks: self.parks,
        }
    }

    /// The park protocol (see module docs). `waker` is the polling task's.
    pub fn after_abort(&mut self, waker: &Waker) -> AfterAbort {
        self.consecutive_aborts += 1;
        if self.policy.retry_immediately(self.consecutive_aborts) {
            return AfterAbort::RetryNow;
        }
        if self.read_only {
            // Read-only futures never park (see the field docs): yield so
            // the executor can interleave, then re-run.
            waker.wake_by_ref();
            return AfterAbort::Pend;
        }
        if self.footprint.is_empty() {
            // Nothing to watch: yield (stay runnable, let peers in).
            waker.wake_by_ref();
            return AfterAbort::Pend;
        }
        let notifier = self.stm.notifier();
        notifier.snapshot(self.footprint.iter().copied(), &mut self.snap);
        if !notifier.park(&self.snap, waker) {
            // A commit raced the registration — the world changed under
            // us, exactly the event we would have waited for.
            return AfterAbort::RetryNow;
        }
        self.parks += 1;
        self.stm.stats().incr(Counter::Parks);
        let timeout = self.policy.park_timeout(self.proc, self.consecutive_aborts);
        let now = std::time::Instant::now();
        self.parked_until = Some(now + timeout);
        self.parked_at = Some(now);
        self.park_started_ns = oftm_obs::ring::enabled().then(oftm_obs::ring::clock_ns);
        timer::wake_after(timeout, waker.clone());
        AfterAbort::Pend
    }
}

/// Future returned by [`run_transaction_async_budgeted`].
pub struct TxFuture<'s, R, F> {
    core: ParkCore<'s>,
    body: F,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<R, F> Future for TxFuture<'_, R, F>
where
    F: FnMut(&mut dyn WordTx) -> TxResult<R> + Unpin,
{
    type Output = Result<Committed<R>, BudgetExceeded>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if !this.core.should_run() {
            return Poll::Pending; // stale wake: stay parked
        }
        loop {
            if this.core.exhausted() {
                return Poll::Ready(Err(this.core.budget_exhausted()));
            }
            let mut tx = this.core.begin_attempt();
            match (this.body)(tx.as_mut()) {
                Ok(r) => {
                    this.core.capture_footprint(tx.as_ref());
                    match tx.try_commit() {
                        Ok(()) => {
                            this.core.end_attempt();
                            return Poll::Ready(Ok(this.core.committed(r)));
                        }
                        Err(TxError::Aborted) => this.core.end_attempt(),
                    }
                }
                Err(TxError::Aborted) => {
                    // Drop (not tryA), exactly like the sync retry loop:
                    // the body already observed the abort event.
                    this.core.capture_footprint(tx.as_ref());
                    drop(tx);
                    this.core.end_attempt();
                }
            }
            if this.core.exhausted() {
                // The final attempt just aborted: report immediately, as
                // the sync loop does — parking here would delay the error
                // by a park timeout and count a park that could never
                // precede another attempt.
                return Poll::Ready(Err(this.core.budget_exhausted()));
            }
            match this.core.after_abort(cx.waker()) {
                AfterAbort::RetryNow => continue,
                AfterAbort::Pend => return Poll::Pending,
            }
        }
    }
}

/// Like [`oftm_core::run_transaction_with_budget`], asynchronously: runs
/// `body` in transactions until one commits, parking between contended
/// attempts instead of spinning. Resolves to the committed result with
/// its attempt/park accounting, or [`BudgetExceeded`] after
/// `max_attempts` aborted attempts.
pub fn run_transaction_async_budgeted<'s, R, F>(
    stm: &'s dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: F,
) -> TxFuture<'s, R, F>
where
    F: FnMut(&mut dyn WordTx) -> TxResult<R> + Unpin,
{
    TxFuture {
        core: ParkCore::new(stm, proc, max_attempts),
        body,
        _r: std::marker::PhantomData,
    }
}

/// Like [`oftm_core::run_transaction`], asynchronously: retries until
/// commit (a `u32::MAX` budget — exhausting it is indistinguishable from
/// a hang and fails loudly, matching the sync API).
pub async fn run_transaction_async<R, F>(stm: &dyn WordStm, proc: u32, body: F) -> Committed<R>
where
    F: FnMut(&mut dyn WordTx) -> TxResult<R> + Unpin,
{
    match run_transaction_async_budgeted(stm, proc, u32::MAX, body).await {
        Ok(c) => c,
        Err(e) => panic!("run_transaction_async: {e}"),
    }
}

/// Read-only [`run_transaction_async_budgeted`]: attempts run on
/// [`WordStm::begin_ro`] (the backend's cheapest consistent read path)
/// and aborted attempts **never park** — they retry inline or yield.
/// `Committed::parks` is therefore always zero.
pub fn run_transaction_async_ro_budgeted<'s, R, F>(
    stm: &'s dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: F,
) -> TxFuture<'s, R, F>
where
    F: FnMut(&mut dyn WordTx) -> TxResult<R> + Unpin,
{
    TxFuture {
        core: ParkCore::new_ro(stm, proc, max_attempts),
        body,
        _r: std::marker::PhantomData,
    }
}

/// Read-only [`run_transaction_async`].
pub async fn run_transaction_async_ro<R, F>(stm: &dyn WordStm, proc: u32, body: F) -> Committed<R>
where
    F: FnMut(&mut dyn WordTx) -> TxResult<R> + Unpin,
{
    match run_transaction_async_ro_budgeted(stm, proc, u32::MAX, body).await {
        Ok(c) => c,
        Err(e) => panic!("run_transaction_async_ro: {e}"),
    }
}
