//! The collection-level async retry loop: [`atomically_async`] is to
//! [`oftm_structs::atomically`] what
//! [`crate::run_transaction_async`] is to `run_transaction` — same
//! [`TxCtx`] body, same attempt-local allocation release on abort, but
//! parked between contended attempts instead of spinning.
//!
//! The body receives one [`TxCtx`] per attempt, so *several collection
//! operations compose into one atomic transaction* — the multi-structure
//! transactions (dequeue here, enqueue there) the differential harness
//! checks conservation over. Blocks allocated by an attempt that aborts
//! are freed before the next attempt or park (they were never published,
//! so the free is immediate and safe), keeping the async path leak-free
//! under the same `churn-steady-state` accounting as the sync one.

use crate::future::{AfterAbort, Committed, ParkCore};
use oftm_core::api::{TxResult, WordStm};
use oftm_core::{BudgetExceeded, TxError};
use oftm_histories::TVarId;
use oftm_structs::TxCtx;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Future returned by [`atomically_async_budgeted`].
pub struct CtxFuture<'s, R, F> {
    core: ParkCore<'s>,
    body: F,
    /// Reused allocation log: each attempt moves it into its `TxCtx` and
    /// hands it back (drained on abort), as in the sync loop.
    alloc_buf: Vec<(TVarId, usize)>,
    _r: std::marker::PhantomData<fn() -> R>,
}

impl<R, F> Future for CtxFuture<'_, R, F>
where
    F: FnMut(&mut TxCtx<'_, '_>) -> TxResult<R> + Unpin,
{
    type Output = Result<Committed<R>, BudgetExceeded>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if !this.core.should_run() {
            return Poll::Pending; // stale wake: stay parked
        }
        loop {
            if this.core.exhausted() {
                return Poll::Ready(Err(this.core.budget_exhausted()));
            }
            let stm = this.core.stm;
            let mut tx = this.core.begin_attempt();
            let (out, mut allocs) = {
                let mut ctx =
                    TxCtx::with_alloc_buffer(stm, tx.as_mut(), std::mem::take(&mut this.alloc_buf));
                let out = (this.body)(&mut ctx);
                let allocs = ctx.take_allocs();
                (out, allocs)
            };
            this.core.capture_footprint(tx.as_ref());
            let committed = match out {
                Ok(r) => match tx.try_commit() {
                    Ok(()) => Some(r),
                    Err(TxError::Aborted) => None,
                },
                Err(TxError::Aborted) => {
                    // Drop (not tryA), like the sync loop; the drop also
                    // releases the grace slot before the frees below.
                    drop(tx);
                    None
                }
            };
            this.core.end_attempt();
            match committed {
                Some(r) => {
                    allocs.clear(); // committed attempt's blocks are published
                    this.alloc_buf = allocs;
                    return Poll::Ready(Ok(this.core.committed(r)));
                }
                None => {
                    // The attempt's allocations were never published: free
                    // them before parking, so a long park cannot pin them.
                    for (base, len) in allocs.drain(..) {
                        stm.free_tvar_block(base, len);
                    }
                    this.alloc_buf = allocs;
                }
            }
            if this.core.exhausted() {
                // The final attempt just aborted: report immediately (see
                // the same check in `TxFuture::poll`).
                return Poll::Ready(Err(this.core.budget_exhausted()));
            }
            match this.core.after_abort(cx.waker()) {
                AfterAbort::RetryNow => continue,
                AfterAbort::Pend => return Poll::Pending,
            }
        }
    }
}

/// Asynchronous [`oftm_structs::atomically_budgeted`]: runs `body` with a
/// [`TxCtx`] until an attempt commits, parking on commit notifications
/// between contended attempts and releasing attempt-local allocations on
/// abort.
pub fn atomically_async_budgeted<'s, R, F>(
    stm: &'s dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: F,
) -> CtxFuture<'s, R, F>
where
    F: FnMut(&mut TxCtx<'_, '_>) -> TxResult<R> + Unpin,
{
    CtxFuture {
        core: ParkCore::new(stm, proc, max_attempts),
        body,
        alloc_buf: Vec::new(),
        _r: std::marker::PhantomData,
    }
}

/// Asynchronous [`oftm_structs::atomically`]: retries until commit
/// (`u32::MAX` budget; exhausting it fails loudly, matching the sync
/// API).
pub async fn atomically_async<R, F>(stm: &dyn WordStm, proc: u32, body: F) -> Committed<R>
where
    F: FnMut(&mut TxCtx<'_, '_>) -> TxResult<R> + Unpin,
{
    match atomically_async_budgeted(stm, proc, u32::MAX, body).await {
        Ok(c) => c,
        Err(e) => panic!("atomically_async: {e}"),
    }
}

/// Asynchronous [`oftm_structs::atomically_ro_budgeted`]: attempts run on
/// [`WordStm::begin_ro`] and aborted attempts never park (they retry
/// inline or yield) — `Committed::parks` is always zero. The body must
/// not write, retire, or allocate.
pub fn atomically_async_ro_budgeted<'s, R, F>(
    stm: &'s dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: F,
) -> CtxFuture<'s, R, F>
where
    F: FnMut(&mut TxCtx<'_, '_>) -> TxResult<R> + Unpin,
{
    CtxFuture {
        core: ParkCore::new_ro(stm, proc, max_attempts),
        body,
        alloc_buf: Vec::new(),
        _r: std::marker::PhantomData,
    }
}

/// Asynchronous [`oftm_structs::atomically_ro`].
pub async fn atomically_async_ro<R, F>(stm: &dyn WordStm, proc: u32, body: F) -> Committed<R>
where
    F: FnMut(&mut TxCtx<'_, '_>) -> TxResult<R> + Unpin,
{
    match atomically_async_ro_budgeted(stm, proc, u32::MAX, body).await {
        Ok(c) => c,
        Err(e) => panic!("atomically_async_ro: {e}"),
    }
}
