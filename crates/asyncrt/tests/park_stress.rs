//! Parked-transaction stress suite: the async runtime must (1) stay
//! exact under many more logical clients than worker threads on every
//! backend, (2) actually park (not spin) under contention, (3) never
//! lose a wakeup — every parked client completes — and (4) waste
//! strictly fewer re-runs than the spin-backoff baseline at equal
//! contention.

mod common;

use async_executor::Executor;
use common::{make_stm, STM_NAMES};
use oftm_asyncrt::{
    atomically_async_budgeted, run_transaction_async_budgeted, run_transaction_async_ro_budgeted,
};
use oftm_core::api::{run_transaction_with_budget, WordStm};
use oftm_histories::TVarId;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Generous budget: exhausting it means livelock (or a lost wakeup that
/// even the watchdog path failed to paper over), reported as a failure.
const BUDGET: u32 = 50_000;

const COUNTER: TVarId = TVarId(0);

/// Drives `clients` async increment clients of one shared counter over
/// `workers` executor threads; returns (attempts, parks) totals.
fn run_async_counter(
    stm: &Arc<dyn WordStm>,
    workers: usize,
    clients: u32,
    ops_per_client: u32,
) -> (u64, u64) {
    let ex = Executor::new(workers);
    let attempts = Arc::new(AtomicU64::new(0));
    let parks = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stm = Arc::clone(stm);
            let attempts = Arc::clone(&attempts);
            let parks = Arc::clone(&parks);
            ex.spawn(async move {
                for _ in 0..ops_per_client {
                    let done = run_transaction_async_budgeted(&*stm, c, BUDGET, |tx| {
                        let v = tx.read(COUNTER)?;
                        tx.write(COUNTER, v + 1)
                    })
                    .await
                    .unwrap_or_else(|e| panic!("client {c} livelocked: {e}"));
                    attempts.fetch_add(u64::from(done.attempts), Ordering::Relaxed);
                    parks.fetch_add(u64::from(done.parks), Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    (
        attempts.load(Ordering::Relaxed),
        parks.load(Ordering::Relaxed),
    )
}

/// 4× more logical clients than workers, exact counts, on all six STMs —
/// completion of every client is also the no-lost-wakeup check: a parked
/// client that is never woken (and whose watchdog deadline were lost)
/// would hang the test.
#[test]
fn async_counter_exact_with_4x_clients_per_worker() {
    for &name in STM_NAMES {
        let stm = make_stm(name);
        stm.register_tvar(COUNTER, 0);
        let workers = 4;
        let clients = (workers as u32) * 4;
        // Algorithm 2's version chains grow with every abort; keep its
        // cell small (the differential harness covers its correctness).
        let ops = if name.starts_with("algo2") { 8 } else { 120 };
        let (attempts, _parks) = run_async_counter(&stm, workers, clients, ops);
        let (v, _) = run_transaction_with_budget(&*stm, 999, BUDGET, |tx| tx.read(COUNTER))
            .expect("final read");
        assert_eq!(
            v,
            u64::from(clients * ops),
            "{name}: lost increments under async execution"
        );
        assert!(
            attempts >= u64::from(clients * ops),
            "{name}: at least one attempt per committed op"
        );
    }
}

/// The park path must actually engage (otherwise the runtime silently
/// degraded to a spin loop inside poll). A waiter whose condition is not
/// yet true parks; a writer satisfies it 20 commits later; the waiter
/// must complete with at least one park on the books.
#[test]
fn condition_waiter_parks_and_is_woken() {
    let stm = make_stm("tl2");
    stm.register_tvar(COUNTER, 0);
    let target = 20u64;

    let ex = Executor::new(2);
    let waiter = {
        let stm = Arc::clone(&stm);
        ex.spawn(async move {
            run_transaction_async_budgeted(&*stm, 1, BUDGET, |tx| {
                if tx.read(COUNTER)? < target {
                    return Err(oftm_core::TxError::Aborted); // condition unmet
                }
                Ok(())
            })
            .await
            .expect("waiter livelocked")
        })
    };
    for _ in 0..target {
        std::thread::sleep(std::time::Duration::from_micros(500));
        run_transaction_with_budget(&*stm, 0, BUDGET, |tx| {
            let v = tx.read(COUNTER)?;
            tx.write(COUNTER, v + 1)
        })
        .expect("writer commits");
    }
    let done = waiter.join();
    assert!(
        done.parks > 0,
        "waiter with an unmet condition never parked — the wake-on-commit path is dead"
    );
}

/// **Strictly fewer wasted re-runs than the spin-backoff baseline at
/// equal contention.** The scenario is the condition-wait that
/// wake-on-commit exists for (the blocking-dequeue shape): waiters abort
/// until a shared variable, advanced by one writer on a fixed cadence,
/// reaches a target. Identical bodies, identical writer cadence, same
/// number of waiters on both sides; the spin baseline re-runs whenever
/// its randomized backoff expires (capped at 256 µs, far below the
/// writer's period, so most re-runs observe no change and are pure
/// waste), while the parked runtime re-runs on actual commits — plus the
/// occasional watchdog timeout. Wasted re-runs = attempts − commits.
#[test]
fn parked_retries_waste_less_than_spin_backoff() {
    const WAITERS: u32 = 4;
    const TARGET: u64 = 40;
    const WRITER_PERIOD: std::time::Duration = std::time::Duration::from_micros(1500);

    fn run_writer(stm: &dyn WordStm) {
        for _ in 0..TARGET {
            std::thread::sleep(WRITER_PERIOD);
            run_transaction_with_budget(stm, 0, BUDGET, |tx| {
                let v = tx.read(COUNTER)?;
                tx.write(COUNTER, v + 1)
            })
            .expect("writer commits");
        }
    }

    fn wait_body(tx: &mut dyn oftm_core::api::WordTx) -> oftm_core::TxResult<()> {
        if tx.read(COUNTER)? < TARGET {
            return Err(oftm_core::TxError::Aborted); // condition unmet
        }
        Ok(())
    }

    for name in ["tl", "tl2", "dstm"] {
        // Spin-backoff baseline: one OS thread per waiter.
        let sync_stm = make_stm(name);
        sync_stm.register_tvar(COUNTER, 0);
        let sync_attempts = AtomicU64::new(0);
        std::thread::scope(|s| {
            for c in 1..=WAITERS {
                let stm = Arc::clone(&sync_stm);
                let sync_attempts = &sync_attempts;
                s.spawn(move || {
                    let (_, tries) =
                        run_transaction_with_budget(&*stm, c, BUDGET, |tx| wait_body(tx))
                            .expect("sync waiter livelocked");
                    sync_attempts.fetch_add(u64::from(tries), Ordering::Relaxed);
                });
            }
            run_writer(&*sync_stm);
        });

        // Parked runtime: the same waiters as async clients.
        let async_stm = make_stm(name);
        async_stm.register_tvar(COUNTER, 0);
        let ex = Executor::new(2);
        let handles: Vec<_> = (1..=WAITERS)
            .map(|c| {
                let stm = Arc::clone(&async_stm);
                ex.spawn(async move {
                    run_transaction_async_budgeted(&*stm, c, BUDGET, |tx| wait_body(tx))
                        .await
                        .expect("async waiter livelocked")
                })
            })
            .collect();
        run_writer(&*async_stm);
        let mut async_attempts = 0u64;
        let mut parks = 0u64;
        for h in handles {
            let done = h.join();
            async_attempts += u64::from(done.attempts);
            parks += u64::from(done.parks);
        }

        let commits = u64::from(WAITERS); // each waiter commits once
        let sync_wasted = sync_attempts.load(Ordering::Relaxed) - commits;
        let async_wasted = async_attempts - commits;
        eprintln!(
            "[{name}] wasted re-runs: spin {sync_wasted}, parked {async_wasted} ({parks} parks)"
        );
        assert!(
            async_wasted < sync_wasted,
            "{name}: parked path wasted {async_wasted} re-runs, spin baseline {sync_wasted} — \
             parking must strictly reduce wasted work at equal contention"
        );
    }
}

/// Parking must survive a hybrid mode migration: a waiter parks on the
/// hybrid's notifier while the instance is in TL2 mode, a contention
/// storm migrates it to DSTM, and the satisfying commit is executed by
/// the *other* embedded engine — which must still wake the parked waiter
/// (the facade owns the notification endpoint, not the engines).
#[test]
fn hybrid_parked_waiter_survives_migration() {
    const STORM: TVarId = TVarId(1);
    // Budget-only escalation (windowed controller effectively off): the
    // storm below holds a stale transaction open across a foreign commit,
    // and a window-triggered migration at that moment would wait out the
    // holder — the documented way to force a deterministic escalation
    // without that interaction.
    let cfg = oftm_hybrid::HybridConfig {
        window_ops: 1 << 40,
        ..oftm_hybrid::HybridConfig::eager()
    };
    let hy = Arc::new(oftm_hybrid::HybridStm::new(cfg));
    let stm: Arc<dyn WordStm> = Arc::clone(&hy) as Arc<dyn WordStm>;
    stm.register_tvar(COUNTER, 0);
    stm.register_tvar(STORM, 0);
    assert_eq!(hy.mode(), oftm_hybrid::Mode::Tl2);

    let ex = Executor::new(2);
    let waiter = {
        let stm = Arc::clone(&stm);
        ex.spawn(async move {
            run_transaction_async_budgeted(&*stm, 5, BUDGET, |tx| {
                if tx.read(COUNTER)? == 0 {
                    return Err(oftm_core::TxError::Aborted); // condition unmet
                }
                Ok(())
            })
            .await
            .expect("waiter livelocked")
        })
    };
    // Let the waiter reach its parked state while still in TL2 mode.
    std::thread::sleep(std::time::Duration::from_millis(5));

    // Read-validation storm on a disjoint variable until the instance
    // escalates: a stale transaction begun before a foreign commit.
    for round in 0..200u64 {
        let mut stale = stm.begin(0);
        run_transaction_with_budget(&*stm, 1, BUDGET, |tx| tx.write(STORM, round + 1))
            .expect("storm writer commits");
        let _ = stale.read(STORM);
        drop(stale);
        if hy.migrations() > 0 {
            break;
        }
    }
    assert!(hy.migrations() > 0, "storm never forced a migration");
    assert_eq!(hy.mode(), oftm_hybrid::Mode::Dstm);

    // The satisfying commit now runs on the DSTM engine; the waiter —
    // parked under TL2 — must wake and complete.
    run_transaction_with_budget(&*stm, 2, BUDGET, |tx| tx.write(COUNTER, 1))
        .expect("post-migration writer commits");
    let done = waiter.join();
    assert!(
        done.parks > 0,
        "waiter never parked — the scenario did not exercise the migration-crossing wake"
    );
}

/// Composed async collection transactions stay conservative: clients
/// shuttle elements between two queues (dequeue + enqueue in ONE
/// transaction); the element multiset is invariant.
#[test]
fn async_two_queue_transfer_conserves_elements() {
    use oftm_asyncrt::AsyncQueue;
    for &name in STM_NAMES {
        let stm = make_stm(name);
        let a = AsyncQueue::create(&*stm);
        let b = AsyncQueue::create(&*stm);
        let population: Vec<u64> = (100..116).collect();
        for &v in &population {
            a.0.enqueue(&*stm, 0, v);
        }

        let ex = Executor::new(4);
        let rounds = if name.starts_with("algo2") { 6 } else { 40 };
        let handles: Vec<_> = (0..8u32)
            .map(|c| {
                let stm = Arc::clone(&stm);
                ex.spawn(async move {
                    for i in 0..rounds {
                        // Alternate directions so both queues stay busy.
                        let (src, dst) = if (c + i) % 2 == 0 { (a, b) } else { (b, a) };
                        src.transfer_to(&*stm, c, dst).await;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        drop(ex);

        let mut rest = a.0.snapshot(&*stm, 99);
        rest.extend(b.0.snapshot(&*stm, 99));
        rest.sort_unstable();
        assert_eq!(
            rest, population,
            "{name}: elements not conserved across async two-queue transfers"
        );
    }
}

/// The async collection loop releases an aborted attempt's allocations,
/// exactly like the sync `atomically_budgeted`.
#[test]
fn aborted_async_attempt_releases_allocations() {
    let stm = make_stm("dstm");
    let anchor = stm.alloc_tvar(0);
    assert_eq!(stm.live_tvars(), 1);
    let first = AtomicU32::new(0);
    let done = async_executor::block_on(atomically_async_budgeted(&*stm, 0, 8, |ctx| {
        let node = ctx.alloc_block(&[1, 2]);
        if first.fetch_add(1, Ordering::Relaxed) == 0 {
            return Err(oftm_core::TxError::Aborted); // simulated conflict
        }
        ctx.write(anchor, node.0)?;
        Ok(node)
    }))
    .expect("second attempt commits");
    assert_eq!(done.attempts, 2);
    assert_eq!(stm.live_tvars(), 3, "aborted attempt's block must be freed");
    let (v, _) = run_transaction_with_budget(&*stm, 1, 8, |tx| tx.read(done.value)).unwrap();
    assert_eq!(v, 1);
}

/// A parked future that is dropped (client gave up) must not wedge the
/// notifier: later commits still succeed and other waiters still wake.
#[test]
fn dropped_parked_future_is_harmless() {
    let stm = make_stm("tl2");
    stm.register_tvar(COUNTER, 0);

    // Construct a future parked on COUNTER by aborting it twice by hand:
    // poll it with a no-op waker against a conflicting writer.
    struct NoopWake;
    impl std::task::Wake for NoopWake {
        fn wake(self: Arc<Self>) {}
    }
    let waker = std::task::Waker::from(Arc::new(NoopWake));
    let mut cx = std::task::Context::from_waker(&waker);

    {
        let stm_ref: &dyn WordStm = &*stm;
        let mut parked = Box::pin(run_transaction_async_budgeted(stm_ref, 7, BUDGET, |tx| {
            let v = tx.read(COUNTER)?;
            // Force an abort every time: a peer bumped the version
            // between our read and commit.
            run_transaction_with_budget(stm_ref, 8, BUDGET, |peer| {
                let p = peer.read(COUNTER)?;
                peer.write(COUNTER, p + 1)
            })
            .expect("peer commits");
            tx.write(COUNTER, v + 1)
        }));
        // Poll once: the future retries immediately once, then parks.
        assert!(std::future::Future::poll(parked.as_mut(), &mut cx).is_pending());
        // Drop it while parked.
    }

    // The notifier still works: a fresh client completes normally.
    let (attempts, _) = run_async_counter(&stm, 2, 4, 50);
    assert!(attempts >= 200);
}

/// Declared read-only futures never park: aborted RO attempts retry
/// inline or yield (they hold no footprint a peer's commit could
/// unblock), so `parks` stays zero on every backend even with a writer
/// continuously committing into the read footprint.
#[test]
fn read_only_futures_never_park() {
    use std::sync::atomic::AtomicBool;

    /// Stops the writer even if an assertion below unwinds, so a failure
    /// cannot leak a spinning thread into the rest of the suite.
    struct StopOnDrop(Arc<AtomicBool>);
    impl Drop for StopOnDrop {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    for name in STM_NAMES {
        let stm = make_stm(name);
        stm.register_tvar(COUNTER, 0);
        let reads: u32 = if name.starts_with("algo2") { 40 } else { 400 };
        let stop = Arc::new(AtomicBool::new(false));
        let _stop_guard = StopOnDrop(Arc::clone(&stop));

        let writer = {
            let stm = Arc::clone(&stm);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    run_transaction_with_budget(&*stm, 0, BUDGET, |tx| {
                        let v = tx.read(COUNTER)?;
                        tx.write(COUNTER, v + 1)
                    })
                    .expect("writer livelocked");
                }
            })
        };

        let ex = Executor::new(2);
        let handles: Vec<_> = (1..=3u32)
            .map(|c| {
                let stm = Arc::clone(&stm);
                ex.spawn(async move {
                    let mut parks = 0u64;
                    let mut last = 0u64;
                    for _ in 0..reads {
                        let done = run_transaction_async_ro_budgeted(&*stm, c, BUDGET, |tx| {
                            tx.read(COUNTER)
                        })
                        .await
                        .expect("RO future livelocked");
                        parks += u64::from(done.parks);
                        assert!(done.value >= last, "RO reads went backwards");
                        last = done.value;
                    }
                    parks
                })
            })
            .collect();
        let mut parks = 0u64;
        for h in handles {
            parks += h.join();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        assert_eq!(
            parks, 0,
            "{name}: read-only futures parked {parks} times — the RO path must \
             yield, never park"
        );
    }
}
