//! Local STM factory for the asyncrt tests.
//!
//! `oftm-bench::make_stm` cannot be used here (oftm-bench depends on this
//! crate for `exp_async`, so the dev-dependency would be circular); the
//! seven backends are built directly instead. Names match `STM_NAMES`.

use oftm_core::api::WordStm;
use oftm_core::cm::Polite;
use oftm_core::dstm::{Dstm, DstmWord};
use std::sync::Arc;

pub const STM_NAMES: &[&str] = &[
    "dstm",
    "tl",
    "tl2",
    "coarse",
    "algo2-cas",
    "algo2-splitter",
    "hybrid",
];

pub fn make_stm(name: &str) -> Arc<dyn WordStm> {
    match name {
        "dstm" => Arc::new(DstmWord::new(Dstm::new(Arc::new(Polite::default())))),
        "tl" => Arc::new(oftm_baselines::TlStm::new()),
        "tl2" => Arc::new(oftm_baselines::Tl2Stm::new()),
        "coarse" => Arc::new(oftm_baselines::CoarseStm::new()),
        "algo2-cas" => Arc::new(oftm_algo2::Algo2Stm::new(oftm_algo2::FocKind::Cas)),
        "algo2-splitter" => Arc::new(oftm_algo2::Algo2Stm::new(oftm_algo2::FocKind::SplitterTas)),
        "hybrid" => Arc::new(oftm_hybrid::HybridStm::new(
            oftm_hybrid::HybridConfig::default(),
        )),
        // Hair-trigger migration policy (not in STM_NAMES): lets the
        // parking tests force TL2↔DSTM switches under parked waiters.
        "hybrid-eager" => Arc::new(oftm_hybrid::HybridStm::new(
            oftm_hybrid::HybridConfig::eager(),
        )),
        other => panic!("unknown STM {other}"),
    }
}
