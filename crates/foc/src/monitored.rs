//! A monitoring decorator for fo-consensus objects: records every
//! `propose` as invocation/response events plus a step on the object's
//! base-object id, so the *fo-obstruction-freedom* property of Section 4.1
//! ("if a propose operation is step contention-free, then the operation
//! does not abort") can be checked on real threaded executions with the
//! `oftm-histories` machinery.

use crate::traits::FoConsensus;
use oftm_core::record::{fresh_base_id, Recorder};
use oftm_histories::{Access, BaseObjId, History, ProcId, TmOp, TmResp, TxId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Wraps a fo-consensus object, recording its operations.
///
/// Each `propose` by process `p` is modelled as a pseudo-transaction
/// `T_{p,k}` whose single operation brackets one step on the foc's base
/// object — mirroring how Theorem 9's proof treats foc proposes as
/// two-event operations. An aborted propose (`⊥`) records the abort
/// response `A_{p,k}`; [`check_fo_obstruction_freedom`] then asserts
/// Definition 2 over the recorded history.
pub struct MonitoredFoc<T: Clone, F: FoConsensus<T>> {
    inner: F,
    base: BaseObjId,
    recorder: Arc<Recorder>,
    seq: AtomicU32,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Clone, F: FoConsensus<T>> MonitoredFoc<T, F> {
    pub fn new(inner: F) -> Self {
        MonitoredFoc {
            inner,
            base: fresh_base_id(),
            recorder: Arc::new(Recorder::new()),
            seq: AtomicU32::new(0),
            _marker: std::marker::PhantomData,
        }
    }

    /// The recorded low-level history so far.
    pub fn history(&self) -> History {
        self.recorder.snapshot()
    }

    /// Marks process `p` as crashed in the record.
    pub fn record_crash(&self, p: u32) {
        self.recorder.crash(ProcId(p));
    }
}

impl<T: Clone + Send + Sync, F: FoConsensus<T>> FoConsensus<T> for MonitoredFoc<T, F> {
    fn propose(&self, proc: u32, v: T) -> Option<T> {
        let k = self.seq.fetch_add(1, Ordering::Relaxed);
        let tx = TxId::new(proc, k);
        // The propose models as a read-like operation on pseudo-t-variable
        // 0 (values are opaque to the checkers; only event structure
        // matters for step contention).
        self.recorder
            .invoke(tx, TmOp::Read(oftm_histories::TVarId(0)));
        self.recorder
            .step(ProcId(proc), Some(tx), self.base, Access::Modify);
        let out = self.inner.propose(proc, v);
        match &out {
            Some(_) => self.recorder.respond(tx, TmResp::Committed),
            None => self.recorder.respond(tx, TmResp::Aborted),
        }
        out
    }

    fn name(&self) -> &'static str {
        "monitored-foc"
    }
}

/// Checks fo-obstruction-freedom over a monitored history: every aborted
/// propose must have encountered step contention. Returns the offending
/// pseudo-transactions (empty = property holds).
pub fn check_fo_obstruction_freedom(h: &History) -> Vec<TxId> {
    h.tx_views()
        .values()
        .filter(|v| v.forcefully_aborted() && !h.step_contention(v.id))
        .map(|v| v.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas_foc::CasFoc;
    use crate::splitter_foc::SplitterFoc;
    use crate::traits::propose_until_decided;

    #[test]
    fn sequential_proposes_record_no_violation() {
        let m = MonitoredFoc::new(SplitterFoc::new());
        for p in 0..8u32 {
            assert!(m.propose(p, u64::from(p)).is_some());
        }
        let h = m.history();
        assert!(check_fo_obstruction_freedom(&h).is_empty());
        // 8 proposes = 8 pseudo-transactions, all completed.
        assert_eq!(h.tx_views().len(), 8);
    }

    #[test]
    fn concurrent_aborts_are_contention_justified() {
        for _ in 0..20 {
            let m = MonitoredFoc::new(SplitterFoc::new());
            std::thread::scope(|s| {
                for p in 0..4u32 {
                    let m = &m;
                    s.spawn(move || {
                        let _ = propose_until_decided(m, p, u64::from(p));
                    });
                }
            });
            let h = m.history();
            let violations = check_fo_obstruction_freedom(&h);
            assert!(
                violations.is_empty(),
                "aborts without recorded step contention: {violations:?}\n{}",
                h.render()
            );
        }
    }

    #[test]
    fn cas_foc_never_records_aborts() {
        let m = MonitoredFoc::new(CasFoc::new());
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let m = &m;
                s.spawn(move || {
                    assert!(m.propose(p, u64::from(p)).is_some());
                });
            }
        });
        let h = m.history();
        assert!(h.tx_views().values().all(|v| !v.forcefully_aborted()));
    }

    #[test]
    fn crash_markers_pass_through() {
        let m = MonitoredFoc::new(CasFoc::<u64>::new());
        m.record_crash(3);
        assert_eq!(m.history().crash_times().len(), 1);
    }
}
