//! Consensus built over fo-consensus objects — the machinery of
//! Corollary 11.
//!
//! \[6\] (Attiya, Guerraoui & Kouznetsov, DISC 2005) shows fo-consensus plus
//! registers solves consensus for 2 processes, giving the OFTM consensus
//! number its lower bound of 2; Theorem 9 shows 3 processes are impossible,
//! giving the upper bound. This module provides:
//!
//! * [`FocConsensus`] — the natural retry protocol (`propose` until non-⊥)
//!   over any [`FoConsensus`] object. Safety (agreement + validity) holds
//!   unconditionally; termination holds whenever the underlying object
//!   eventually lets some propose through — true of every foc in this
//!   crate, *not* guaranteed against the adversarial foc of Theorem 9's
//!   proof. The adversarial side is model-checked in `oftm-sim`
//!   (`valency`), where the bivalent-cycle certificate is produced.
//! * [`crate::tas::TasConsensus`] — deterministic wait-free 2-process
//!   consensus from a consensus-number-2 object, the baseline the
//!   experiments compare against.

use crate::traits::FoConsensus;

/// Retry-based consensus over a fo-consensus object.
pub struct FocConsensus<'f, T: Clone> {
    foc: &'f dyn FoConsensus<T>,
}

impl<'f, T: Clone> FocConsensus<'f, T> {
    pub fn new(foc: &'f dyn FoConsensus<T>) -> Self {
        FocConsensus { foc }
    }

    /// Proposes until the underlying object returns a decision. Returns the
    /// decision and the number of aborted attempts.
    pub fn propose(&self, proc: u32, v: T) -> (T, u64) {
        let mut aborts = 0;
        loop {
            match self.foc.propose(proc, v.clone()) {
                Some(d) => return (d, aborts),
                None => {
                    aborts += 1;
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas_foc::CasFoc;
    use crate::from_oftm::OftmFoc;
    use crate::splitter_foc::SplitterFoc;
    use oftm_core::cm::Polite;
    use oftm_core::dstm::Dstm;
    use std::collections::BTreeSet;
    use std::sync::{Arc, Mutex};

    fn run_consensus<F: FoConsensus<u64>>(foc: &F, n: u32) -> BTreeSet<u64> {
        let decisions = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for p in 0..n {
                let foc = &foc;
                let decisions = &decisions;
                s.spawn(move || {
                    let c = FocConsensus::new(*foc as &dyn FoConsensus<u64>);
                    let (d, _aborts) = c.propose(p, 10 + u64::from(p));
                    decisions.lock().unwrap().insert(d);
                });
            }
        });
        decisions.into_inner().unwrap()
    }

    #[test]
    fn two_process_consensus_over_cas_foc() {
        for _ in 0..50 {
            let foc = CasFoc::new();
            let d = run_consensus(&foc, 2);
            assert_eq!(d.len(), 1);
            let v = *d.iter().next().unwrap();
            assert!(v == 10 || v == 11);
        }
    }

    #[test]
    fn two_process_consensus_over_splitter_foc() {
        for _ in 0..50 {
            let foc = SplitterFoc::new();
            let d = run_consensus(&foc, 2);
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn two_process_consensus_over_algorithm1_foc() {
        for _ in 0..10 {
            let foc = OftmFoc::new(Dstm::new(Arc::new(Polite::default())));
            let d = run_consensus(&foc, 2);
            assert_eq!(d.len(), 1);
        }
    }

    #[test]
    fn many_process_safety_still_holds() {
        // Theorem 9 limits guaranteed termination, not safety: with our
        // non-adversarial foc objects, even n > 2 runs decide and agree.
        for _ in 0..10 {
            let foc = SplitterFoc::new();
            let d = run_consensus(&foc, 5);
            assert_eq!(d.len(), 1, "agreement must hold for any n");
        }
    }
}
