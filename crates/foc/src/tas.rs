//! One-shot test-and-set: the canonical object of consensus number exactly 2.
//!
//! Used by [`crate::SplitterFoc`] (fo-consensus from consensus-number-2
//! primitives, establishing the paper's "OFTM from one-shot objects of
//! consensus number 2 and registers" claim constructively) and by
//! [`TasConsensus`] (wait-free 2-process consensus,
//! the lower half of Corollary 11).

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// A one-shot test-and-set object. The first `test_and_set` wins.
#[derive(Default)]
pub struct TestAndSet {
    flag: AtomicBool,
}

impl TestAndSet {
    pub fn new() -> Self {
        TestAndSet {
            flag: AtomicBool::new(false),
        }
    }

    /// Returns `true` iff this call won (the flag was previously clear).
    ///
    /// `AcqRel`: the winner's prior writes become visible to losers (they
    /// acquire the same location), and the win is ordered after the
    /// winner's preceding announcements.
    pub fn test_and_set(&self) -> bool {
        !self.flag.swap(true, Ordering::AcqRel)
    }

    /// Non-winning read of the flag state.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Wait-free 2-process consensus from one TAS and two announce registers —
/// the classical construction showing TAS has consensus number ≥ 2, used
/// here as the machinery behind Corollary 11's "consensus number of an
/// OFTM equals 2" (2 processes *can* solve consensus with objects of this
/// strength).
pub struct TasConsensus<T> {
    announce: [AtomicPtr<T>; 2],
    tas: TestAndSet,
}

impl<T> Default for TasConsensus<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TasConsensus<T> {
    pub fn new() -> Self {
        TasConsensus {
            announce: [
                AtomicPtr::new(std::ptr::null_mut()),
                AtomicPtr::new(std::ptr::null_mut()),
            ],
            tas: TestAndSet::new(),
        }
    }

    /// Proposes `v` as process `slot` (0 or 1). Wait-free: always decides.
    pub fn propose(&self, slot: usize, v: T) -> T
    where
        T: Clone,
    {
        assert!(slot < 2, "TasConsensus is a 2-process object");
        let mine = Box::into_raw(Box::new(v));
        // Announce before competing (Release: paired with the loser's
        // Acquire load through the TAS's AcqRel chain).
        self.announce[slot].store(mine, Ordering::Release);
        if self.tas.test_and_set() {
            // Winner: decide own value.
            // SAFETY: `mine` was installed by us and is never freed before
            // drop.
            unsafe { (*mine).clone() }
        } else {
            // Loser: the winner announced before its TAS, which happened
            // before ours — its announcement is visible.
            let theirs = self.announce[1 - slot].load(Ordering::Acquire);
            assert!(
                !theirs.is_null(),
                "TAS winner must have announced before winning"
            );
            // SAFETY: announce pointers are written once per slot and only
            // freed on drop.
            unsafe { (*theirs).clone() }
        }
    }
}

impl<T> Drop for TasConsensus<T> {
    fn drop(&mut self) {
        for a in &self.announce {
            let p = a.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: exclusive access in drop; each slot written once.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tas_single_winner() {
        let t = TestAndSet::new();
        assert!(t.test_and_set());
        assert!(!t.test_and_set());
        assert!(t.is_set());
    }

    #[test]
    fn tas_single_winner_concurrent() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for _ in 0..100 {
            let t = TestAndSet::new();
            let wins = AtomicU32::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        if t.test_and_set() {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn two_consensus_solo() {
        let c = TasConsensus::new();
        assert_eq!(c.propose(0, 5u64), 5);
        assert_eq!(c.propose(1, 9u64), 5);
    }

    #[test]
    fn two_consensus_concurrent_agreement() {
        for _ in 0..200 {
            let c = TasConsensus::<u64>::new();
            let (d0, d1) = std::thread::scope(|s| {
                let h0 = s.spawn(|| c.propose(0, 100));
                let h1 = s.spawn(|| c.propose(1, 200));
                (h0.join().unwrap(), h1.join().unwrap())
            });
            assert_eq!(d0, d1, "agreement");
            assert!(d0 == 100 || d0 == 200, "validity");
        }
    }

    #[test]
    #[should_panic(expected = "2-process object")]
    fn two_consensus_rejects_third_slot() {
        let c = TasConsensus::new();
        let _ = c.propose(2, 0u64);
    }
}
