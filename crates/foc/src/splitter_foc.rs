//! fo-consensus from registers and one one-shot test-and-set object —
//! i.e. from one-shot objects of consensus number 2 and registers only.
//!
//! This realizes, constructively, the claim in the paper's introduction:
//! *"we exhibit an OFTM implementation that uses only one-shot objects of
//! consensus number 2 and registers"* — Algorithm 2 builds the OFTM from
//! fo-consensus, and this module builds fo-consensus itself without CAS.
//!
//! ## Construction
//!
//! * An unbounded (pre-allocated, see below) sequence of Moir–Anderson
//!   *splitters* built from two registers each. A splitter guarantees that
//!   at most one process ever *stops* on it; a process that does not stop
//!   has certainly observed a register value written by another process.
//! * One one-shot [`TestAndSet`] arbitrating the right to write the single
//!   single-writer decision register `D`.
//! * A contention counter register `C` incremented once per `propose`
//!   invocation; a proposer that observes `C` changing during its run has
//!   proof of step contention and may abort.
//!
//! `propose`: bump `C`; walk splitter rounds. Stopping at a splitter ⇒ try
//! the TAS; the TAS winner writes `D := v`, raises `done` and decides `v`.
//! Losing a splitter with `C` unchanged ⇒ the interference is residue of
//! *completed* proposes; move to the next (fresh) round — at most one burnt
//! round per past propose, so a solo proposer reaches a fresh splitter in
//! finitely many rounds (wait-freedom). Losing with `C` changed ⇒ abort
//! (step contention, allowed). Losing the TAS ⇒ briefly wait for `done`
//! (the TAS winner is between two register writes); if it does not appear,
//! abort — justified because the TAS winner's propose is then still
//! pending, i.e. contention. In a crash-free execution (OS threads; this is
//! the threaded plane — crashes are modelled exactly in `oftm-sim`) the
//! winner always finishes, so solo re-proposes decide.
//!
//! ## Bounds
//!
//! The splitter array is pre-allocated (`rounds` capacity); each *completed*
//! propose burns at most one round, so capacity bounds the total number of
//! propose invocations, not concurrency. Exceeding it panics loudly rather
//! than degrading correctness silently.

use crate::tas::TestAndSet;
use crate::traits::FoConsensus;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

const NO_PROC: u64 = u64::MAX;

/// One Moir–Anderson splitter: registers `x` (last entrant) and `y`
/// (door closed).
struct Splitter {
    x: AtomicU64,
    y: AtomicBool,
}

impl Splitter {
    fn new() -> Self {
        Splitter {
            x: AtomicU64::new(NO_PROC),
            y: AtomicBool::new(false),
        }
    }

    /// Classic splitter: at most one process ever returns `true` (stop).
    fn split(&self, proc: u64) -> bool {
        self.x.store(proc, Ordering::Release);
        if self.y.load(Ordering::Acquire) {
            return false;
        }
        self.y.store(true, Ordering::Release);
        self.x.load(Ordering::Acquire) == proc
    }
}

/// fo-consensus from splitters + one TAS + registers.
pub struct SplitterFoc<T> {
    rounds: Box<[Splitter]>,
    tas: TestAndSet,
    /// Single-writer decision register (written only by the TAS winner).
    decision: AtomicPtr<T>,
    done: AtomicBool,
    /// Contention counter: one increment per propose invocation.
    contention: AtomicU64,
    /// How long a TAS loser polls `done` before declaring contention.
    patience: u32,
}

impl<T> SplitterFoc<T> {
    /// Creates an instance able to serve up to `capacity` propose
    /// invocations over its lifetime.
    pub fn with_capacity(capacity: usize) -> Self {
        SplitterFoc {
            rounds: (0..capacity).map(|_| Splitter::new()).collect(),
            tas: TestAndSet::new(),
            decision: AtomicPtr::new(ptr::null_mut()),
            done: AtomicBool::new(false),
            contention: AtomicU64::new(0),
            patience: 1024,
        }
    }

    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    /// The decided value, if any (non-proposing observer).
    pub fn decided(&self) -> Option<T>
    where
        T: Clone,
    {
        self.read_decision()
    }

    fn read_decision(&self) -> Option<T>
    where
        T: Clone,
    {
        if self.done.load(Ordering::Acquire) {
            let p = self.decision.load(Ordering::Acquire);
            debug_assert!(!p.is_null());
            // SAFETY: `decision` is written exactly once (by the TAS
            // winner, before `done` is raised with Release) and never
            // freed before drop.
            Some(unsafe { (*p).clone() })
        } else {
            None
        }
    }
}

impl<T> Default for SplitterFoc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + Send + Sync> FoConsensus<T> for SplitterFoc<T> {
    fn propose(&self, proc: u32, v: T) -> Option<T> {
        // Entering is a (modifying) step other proposers can observe.
        let c_at_entry = self.contention.fetch_add(1, Ordering::AcqRel) + 1;

        for round in self.rounds.iter() {
            if let Some(d) = self.read_decision() {
                return Some(d);
            }
            if round.split(u64::from(proc)) {
                // Sole stopper of this splitter: compete for the write
                // right to D.
                if self.tas.test_and_set() {
                    let boxed = Box::into_raw(Box::new(v));
                    self.decision.store(boxed, Ordering::Release);
                    self.done.store(true, Ordering::Release);
                    // SAFETY: just installed; never freed before drop.
                    return Some(unsafe { (*boxed).clone() });
                }
                // TAS already won by another stopper (of an earlier round):
                // its D write is imminent. Wait briefly.
                for _ in 0..self.patience {
                    if let Some(d) = self.read_decision() {
                        return Some(d);
                    }
                    std::hint::spin_loop();
                }
                // The winner's propose is still pending — contention.
                return None;
            }
            // Splitter lost. Contention *during our operation*?
            if self.contention.load(Ordering::Acquire) != c_at_entry {
                return None; // step contention: abort is permitted
            }
            // Residue of completed proposes; try the next round.
        }
        panic!(
            "SplitterFoc round capacity ({}) exhausted; construct with a larger capacity",
            self.rounds.len()
        );
    }

    fn name(&self) -> &'static str {
        "splitter-tas-foc"
    }
}

impl<T> Drop for SplitterFoc<T> {
    fn drop(&mut self) {
        let p = *self.decision.get_mut();
        if !p.is_null() {
            // SAFETY: exclusive in drop; written once by the TAS winner.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{propose_until_decided, stress_agreement};

    #[test]
    fn splitter_at_most_one_stop() {
        use std::sync::atomic::AtomicU32;
        for _ in 0..200 {
            let sp = Splitter::new();
            let stops = AtomicU32::new(0);
            std::thread::scope(|s| {
                for p in 0..4u64 {
                    let sp = &sp;
                    let stops = &stops;
                    s.spawn(move || {
                        if sp.split(p) {
                            stops.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert!(stops.load(Ordering::Relaxed) <= 1);
        }
    }

    #[test]
    fn solo_propose_decides_without_abort() {
        let foc = SplitterFoc::new();
        assert_eq!(foc.propose(3, 42u64), Some(42));
        // Later solo proposes adopt the decision, still without abort.
        assert_eq!(foc.propose(5, 7u64), Some(42));
    }

    #[test]
    fn fo_obstruction_freedom_sequential() {
        // A sequence of step-contention-free proposes: none may abort.
        let foc = SplitterFoc::new();
        for p in 0..64u32 {
            assert!(
                foc.propose(p, u64::from(p)).is_some(),
                "sequential propose aborted — fo-obstruction-freedom violated"
            );
        }
    }

    #[test]
    fn concurrent_agreement_and_validity() {
        for _ in 0..50 {
            let foc = SplitterFoc::new();
            let (_d, _aborts) = stress_agreement(&foc, 6);
        }
    }

    #[test]
    fn retry_after_abort_terminates() {
        // Heavy contention: all proposers hammer the object, retrying until
        // decided; the TAS/decision mechanism guarantees convergence.
        let foc = SplitterFoc::new();
        std::thread::scope(|s| {
            for p in 0..8u32 {
                let foc = &foc;
                s.spawn(move || {
                    let (d, _a) = propose_until_decided(foc, p, u64::from(p));
                    assert!(d < 8);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_exhaustion_is_loud() {
        let foc = SplitterFoc::with_capacity(2);
        // Burn the rounds with completed (aborting or deciding) proposes is
        // hard solo — solo proposes stop at round 0. Force exhaustion by
        // pre-burning splitters directly.
        for r in foc.rounds.iter() {
            r.y.store(true, Ordering::Release);
        }
        let _ = foc.propose(0, 1u64);
    }
}
