//! fo-consensus from a single CAS word.
//!
//! The paper notes that all practical OFTMs are built on CAS; a CAS object
//! trivially implements fo-consensus (it is universal, so it over-delivers:
//! this implementation *never* aborts — the `⊥` case of the spec is simply
//! unused). It serves as the production-strength foc for Algorithm 2 and as
//! the reference point the weaker [`crate::SplitterFoc`] is tested against.

use crate::traits::FoConsensus;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Write-once CAS cell implementing [`FoConsensus`]. Lock-free; `propose`
/// performs at most one allocation and one CAS.
pub struct CasFoc<T> {
    cell: AtomicPtr<T>,
    _marker: PhantomData<T>,
}

impl<T> Default for CasFoc<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CasFoc<T> {
    pub fn new() -> Self {
        CasFoc {
            cell: AtomicPtr::new(ptr::null_mut()),
            _marker: PhantomData,
        }
    }

    /// The decided value, if any (non-proposing observer).
    pub fn decided(&self) -> Option<&T> {
        let p = self.cell.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: a non-null pointer was installed exactly once by the
            // winning CAS (Release) and is never modified or freed until
            // drop, which requires `&mut self`.
            Some(unsafe { &*p })
        }
    }
}

impl<T: Clone + Send + Sync> FoConsensus<T> for CasFoc<T> {
    fn propose(&self, _proc: u32, v: T) -> Option<T> {
        let candidate = Box::into_raw(Box::new(v));
        match self.cell.compare_exchange(
            ptr::null_mut(),
            candidate,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // We won: our proposal is the decision.
                // SAFETY: we just installed `candidate`; it is never freed
                // or mutated while `self` lives.
                Some(unsafe { (*candidate).clone() })
            }
            Err(winner) => {
                // SAFETY: `candidate` was never published; reclaim it.
                drop(unsafe { Box::from_raw(candidate) });
                // SAFETY: `winner` is the immutably installed decision.
                Some(unsafe { (*winner).clone() })
            }
        }
    }

    fn name(&self) -> &'static str {
        "cas-foc"
    }
}

impl<T> Drop for CasFoc<T> {
    fn drop(&mut self) {
        let p = *self.cell.get_mut();
        if !p.is_null() {
            // SAFETY: exclusive access in drop; the pointer was installed
            // by the winning propose and never freed elsewhere.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::stress_agreement;

    #[test]
    fn solo_propose_decides_own_value() {
        let foc = CasFoc::new();
        assert_eq!(foc.propose(0, 7u64), Some(7));
        assert_eq!(foc.decided().copied(), Some(7));
    }

    #[test]
    fn second_proposal_adopts_winner() {
        let foc = CasFoc::new();
        assert_eq!(foc.propose(0, 7u64), Some(7));
        assert_eq!(foc.propose(1, 9u64), Some(7));
    }

    #[test]
    fn never_aborts_under_contention() {
        for _ in 0..20 {
            let foc = CasFoc::new();
            let (_d, aborts) = stress_agreement(&foc, 8);
            assert_eq!(aborts, 0, "CasFoc must never abort");
        }
    }

    #[test]
    fn non_copy_payloads() {
        let foc = CasFoc::new();
        assert_eq!(foc.propose(0, String::from("a")), Some(String::from("a")));
        assert_eq!(foc.propose(1, String::from("b")), Some(String::from("a")));
    }

    #[test]
    fn no_leak_on_losing_propose() {
        // Exercised under the default allocator; mostly a miri/asan target,
        // but the logic path (drop of the unpublished box) runs here.
        let foc = CasFoc::new();
        for i in 0..100u64 {
            let _ = foc.propose((i % 4) as u32, i);
        }
        assert!(foc.decided().is_some());
    }
}
