//! **Algorithm 3** (Appendix A): fo-consensus from an *eventually
//! ic-obstruction-free* TM — the constructive half of Theorem 6 ("every
//! eventual ic-OFTM can implement an OFTM", via fo-consensus and Lemma 8).
//!
//! ```text
//! uses: R[1..n] – array of shared registers, V – t-variable
//! initially: R[1..n] = 0, V = ⊥, k = 0
//! upon propose(vi) do
//!   r[1..n] ← R[1..n]            (not atomic)
//!   while true do
//!     d ← vi; k ← k + 1
//!     R[i] ← R[i] + 1
//!     within transaction T_{i,k} do
//!       if V = ⊥ then V ← vi else d ← V
//!     on event C_k do return d
//!     if ∃ m≠i : r[m] ≠ R[m] then return ⊥
//! ```
//!
//! The inner TM may forcefully abort transactions even without current
//! contention (its grace period lets a crashed/suspended process obstruct
//! for a bounded time). Algorithm 3 keeps retrying; it returns `⊥` only
//! when the register array `R` proves that some *other* process took steps
//! during this `propose` — so fo-obstruction-freedom holds even though the
//! underlying TM is only eventually ic-obstruction-free (Lemma 14).

use crate::traits::FoConsensus;
use oftm_core::dstm::{Dstm, Progress, TVar};
use oftm_core::TxError;
use std::sync::atomic::{AtomicU64, Ordering};

/// fo-consensus over an eventually-ic OFTM (Definition 4 substrate).
pub struct EventualFoc<T: Clone + Send + Sync + 'static> {
    stm: Dstm,
    v: TVar<Option<T>>,
    /// The register array `R[1..n]`.
    r: Box<[AtomicU64]>,
}

impl<T: Clone + Send + Sync + 'static> EventualFoc<T> {
    /// Builds the object for `n` processes on the given TM instance.
    ///
    /// Panics if the TM is strictly obstruction-free — that would be a
    /// *stronger* substrate than Algorithm 3 assumes; use [`OftmFoc`]
    /// (Algorithm 1) there instead. This guard keeps the experiment honest:
    /// Algorithm 3 is exercised against the weaker progress property it was
    /// designed for.
    ///
    /// [`OftmFoc`]: crate::from_oftm::OftmFoc
    pub fn new(stm: Dstm, n: usize) -> Self {
        assert!(
            matches!(stm.progress(), Progress::EventualGrace(_)),
            "EventualFoc expects an eventually-ic TM (use Dstm::with_grace)"
        );
        let v = stm.new_tvar(None);
        EventualFoc {
            stm,
            v,
            r: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn stm(&self) -> &Dstm {
        &self.stm
    }
}

impl<T: Clone + Send + Sync + 'static> FoConsensus<T> for EventualFoc<T> {
    fn propose(&self, proc: u32, vi: T) -> Option<T> {
        let i = proc as usize;
        assert!(i < self.r.len(), "process id out of range");

        // r[1..n] ← R[1..n] (not atomic — a plain scan).
        let snapshot: Vec<u64> = self.r.iter().map(|x| x.load(Ordering::Acquire)).collect();

        loop {
            // R[i] ← R[i] + 1: announce that we are (still) trying.
            self.r[i].fetch_add(1, Ordering::AcqRel);

            // within transaction T_{i,k} …
            let mut tx = self.stm.begin(proc);
            let attempt: Result<T, TxError> = (|| {
                let d = match tx.read(&self.v)? {
                    None => {
                        tx.write(&self.v, Some(vi.clone()))?;
                        vi.clone()
                    }
                    Some(w) => w,
                };
                Ok(d)
            })();

            match attempt {
                Ok(d) => {
                    if tx.commit().is_ok() {
                        return Some(d); // on event C_k
                    }
                }
                Err(TxError::Aborted) => {
                    tx.rollback();
                }
            }

            // Aborted: give up only with evidence of a concurrent proposer.
            let contended = self
                .r
                .iter()
                .enumerate()
                .any(|(m, x)| m != i && x.load(Ordering::Acquire) != snapshot[m]);
            if contended {
                return None; // ⊥ without violating fo-obstruction-freedom
            }
            // No other proposer moved: the abort was grace-period residue
            // of the eventual-ic TM; retry (the paper's while-true loop).
        }
    }

    fn name(&self) -> &'static str {
        "eventual-foc (Algorithm 3)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{propose_until_decided, stress_agreement};
    use oftm_core::cm::Polite;
    use std::sync::Arc;
    use std::time::Duration;

    fn eventual_stm() -> Dstm {
        Dstm::new(Arc::new(Polite::default())).with_grace(Duration::from_micros(200))
    }

    #[test]
    #[should_panic(expected = "eventually-ic")]
    fn rejects_strict_oftm_substrate() {
        let _ = EventualFoc::<u64>::new(Dstm::default(), 2);
    }

    #[test]
    fn solo_propose_decides() {
        let f = EventualFoc::new(eventual_stm(), 4);
        assert_eq!(f.propose(0, 5u64), Some(5));
        assert_eq!(f.propose(1, 9u64), Some(5));
    }

    #[test]
    fn sequential_proposes_never_abort() {
        let f = EventualFoc::new(eventual_stm(), 8);
        for p in 0..8u32 {
            assert!(
                f.propose(p, u64::from(p)).is_some(),
                "step-contention-free propose returned ⊥"
            );
        }
    }

    #[test]
    fn concurrent_agreement_under_grace() {
        for _ in 0..10 {
            let f = EventualFoc::new(eventual_stm(), 6);
            let (_d, _aborts) = stress_agreement(&f, 6);
        }
    }

    #[test]
    fn retries_converge() {
        let f = EventualFoc::new(eventual_stm(), 4);
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let decisions = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let f = &f;
                let decisions = &decisions;
                s.spawn(move || {
                    let (d, _a) = propose_until_decided(f, p, 50 + u64::from(p));
                    decisions.lock().unwrap().insert(d);
                });
            }
        });
        assert_eq!(decisions.into_inner().unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_process() {
        let f = EventualFoc::new(eventual_stm(), 2);
        let _ = f.propose(5, 1u64);
    }
}
