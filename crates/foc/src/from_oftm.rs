//! **Algorithm 1** of the paper: implementing fo-consensus from an OFTM.
//!
//! ```text
//! uses: V – a t-variable          initially: V = ⊥, k = 0
//! upon propose(vi) do
//!   k ← k + 1
//!   within transaction T_{i,k} do
//!     if V = ⊥ then V ← vi  else vi ← V
//!   on event C_{i,k} do return vi
//!   on event A_{i,k} do return ⊥
//! ```
//!
//! Lemma 7: by serializability only one committed transaction observes
//! `V = ⊥` (agreement, fo-validity), and the transaction can be aborted
//! only under step contention (the OFTM's Definition 2), so an aborting
//! `propose` is not step-contention-free (fo-obstruction-freedom).

use crate::traits::FoConsensus;
use oftm_core::dstm::{Dstm, TVar};
use oftm_core::TxError;

/// fo-consensus built from one t-variable of an obstruction-free STM.
pub struct OftmFoc<T: Clone + Send + Sync + 'static> {
    stm: Dstm,
    /// The t-variable `V`; `None` is the paper's `⊥`.
    v: TVar<Option<T>>,
}

impl<T: Clone + Send + Sync + 'static> OftmFoc<T> {
    /// Builds the object on a fresh OFTM instance.
    pub fn new(stm: Dstm) -> Self {
        let v = stm.new_tvar(None);
        OftmFoc { stm, v }
    }

    /// The underlying STM (for attaching recorders in experiments).
    pub fn stm(&self) -> &Dstm {
        &self.stm
    }
}

impl<T: Clone + Send + Sync + 'static> FoConsensus<T> for OftmFoc<T> {
    fn propose(&self, proc: u32, vi: T) -> Option<T> {
        // One transaction T_{i,k}; a fresh k is implicit in `begin`.
        let mut tx = self.stm.begin(proc);
        let decision = match tx.read(&self.v) {
            Ok(None) => {
                // V = ⊥: claim it with our proposal.
                match tx.write(&self.v, Some(vi.clone())) {
                    Ok(()) => vi,
                    Err(TxError::Aborted) => return None, // A_{i,k}
                }
            }
            Ok(Some(w)) => w,                     // adopt the registered value
            Err(TxError::Aborted) => return None, // A_{i,k}
        };
        match tx.commit() {
            Ok(()) => Some(decision), // C_{i,k}
            Err(TxError::Aborted) => None,
        }
    }

    fn name(&self) -> &'static str {
        "oftm-foc (Algorithm 1)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{propose_until_decided, stress_agreement};
    use oftm_core::cm::{Aggressive, Polite};
    use std::sync::Arc;

    fn foc() -> OftmFoc<u64> {
        OftmFoc::new(Dstm::new(Arc::new(Polite::default())))
    }

    #[test]
    fn solo_propose_wins() {
        let f = foc();
        assert_eq!(f.propose(0, 11), Some(11));
    }

    #[test]
    fn fo_obstruction_freedom_sequential() {
        // Step-contention-free proposes never abort (Lemma 7's argument).
        let f = foc();
        assert_eq!(f.propose(0, 1), Some(1));
        for p in 1..32 {
            assert_eq!(
                f.propose(p, u64::from(p) + 100),
                Some(1),
                "sequential propose aborted or disagreed"
            );
        }
    }

    #[test]
    fn concurrent_agreement() {
        for _ in 0..20 {
            let f = foc();
            let (_d, _aborts) = stress_agreement(&f, 6);
        }
    }

    #[test]
    fn aborts_happen_only_under_contention_and_retries_converge() {
        // With the Aggressive manager, concurrent proposes do abort each
        // other; retrying must converge to a single decision.
        let f = OftmFoc::new(Dstm::new(Arc::new(Aggressive)));
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let decisions = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for p in 0..6u32 {
                let f = &f;
                let decisions = &decisions;
                s.spawn(move || {
                    let (d, _aborts) = propose_until_decided(f, p, 1000 + u64::from(p));
                    decisions.lock().unwrap().insert(d);
                });
            }
        });
        let d = decisions.into_inner().unwrap();
        assert_eq!(d.len(), 1, "all retries must converge to one decision");
    }

    #[test]
    fn generic_payload() {
        let stm = Dstm::default();
        let f: OftmFoc<(u32, u32)> = OftmFoc::new(stm);
        assert_eq!(f.propose(0, (1, 2)), Some((1, 2)));
        assert_eq!(f.propose(1, (3, 4)), Some((1, 2)));
    }
}
