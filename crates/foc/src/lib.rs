//! # oftm-foc — fail-only consensus and the paper's Algorithms 1 & 3
//!
//! Section 4 of *On Obstruction-Free Transactions* proves that an OFTM is
//! computationally equivalent to **fo-consensus** ("fail-only" consensus,
//! after \[6\]): a one-shot agreement object whose `propose` may abort (`⊥`)
//! but only under step contention. This crate provides:
//!
//! * [`FoConsensus`] — the abstraction (fo-validity, agreement,
//!   fo-obstruction-freedom) plus property-test harnesses;
//! * [`CasFoc`] — fo-consensus from one CAS word (never aborts);
//! * [`SplitterFoc`] — fo-consensus from registers and a single one-shot
//!   test-and-set, i.e. from objects of consensus number 2 only;
//! * [`OftmFoc`] — **Algorithm 1**: fo-consensus from an OFTM (Lemma 7);
//! * [`EventualFoc`] — **Algorithm 3**: fo-consensus from an *eventually
//!   ic*-obstruction-free TM (Theorem 6 / Lemma 14);
//! * [`TestAndSet`] / [`TasConsensus`] — the consensus-number-2 primitive
//!   and wait-free 2-process consensus (Corollary 11's lower bound);
//! * [`FocConsensus`] — retry-based consensus over any foc object.

pub mod cas_foc;
pub mod from_eventual;
pub mod from_oftm;
pub mod monitored;
pub mod splitter_foc;
pub mod tas;
pub mod traits;
pub mod two_consensus;

pub use cas_foc::CasFoc;
pub use from_eventual::EventualFoc;
pub use from_oftm::OftmFoc;
pub use monitored::{check_fo_obstruction_freedom, MonitoredFoc};
pub use splitter_foc::SplitterFoc;
pub use tas::{TasConsensus, TestAndSet};
pub use traits::{propose_until_decided, stress_agreement, FoConsensus, FocPropertyHarness};
pub use two_consensus::FocConsensus;
