//! The fo-consensus ("fail-only consensus") abstraction of Section 4.1.
//!
//! A fo-consensus object exports one operation, `propose(v)`, which returns
//! a decision value or `⊥` (here `None`, "the operation aborts"). The
//! properties, quantified over every low-level history:
//!
//! 1. **fo-validity** — a decided value was proposed by some `propose` that
//!    did *not* abort;
//! 2. **agreement** — no two processes decide different values;
//! 3. **fo-obstruction-freedom** — a step-contention-free `propose` does
//!    not abort.
//!
//! A process whose `propose` aborted may retry (on the same object, possibly
//! with a different value) until it decides.

use oftm_histories::ProcId;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A fail-only consensus object over values of type `T`.
pub trait FoConsensus<T: Clone>: Send + Sync {
    /// Proposes `v` on behalf of process `proc`. Returns the decision, or
    /// `None` if the operation aborts (`⊥`).
    fn propose(&self, proc: u32, v: T) -> Option<T>;

    /// Implementation name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Helper used by tests and experiments: retries `propose` until a decision
/// is returned, counting aborts. Termination relies on the concrete
/// implementation's progress under the ambient schedule (all in-crate
/// implementations decide once contention quiesces; adversarial-schedule
/// questions are explored exhaustively in `oftm-sim`).
pub fn propose_until_decided<T: Clone, F: FoConsensus<T> + ?Sized>(
    foc: &F,
    proc: u32,
    v: T,
) -> (T, u64) {
    let mut aborts = 0;
    loop {
        if let Some(d) = foc.propose(proc, v.clone()) {
            return (d, aborts);
        }
        aborts += 1;
        std::hint::spin_loop();
    }
}

/// A property harness that runs concurrent proposers against a fo-consensus
/// object and checks fo-validity and agreement on the outcome.
///
/// Every proposer proposes a distinct value and retries until decided. The
/// harness asserts that all deciders agree and that the agreed value is one
/// of the proposed values whose *final* (non-aborted) propose carried it —
/// with distinct per-process values this reduces to: the decision is some
/// process's proposal.
pub struct FocPropertyHarness {
    outcomes: Mutex<BTreeMap<ProcId, u64>>,
}

impl Default for FocPropertyHarness {
    fn default() -> Self {
        Self::new()
    }
}

impl FocPropertyHarness {
    pub fn new() -> Self {
        FocPropertyHarness {
            outcomes: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn record(&self, proc: ProcId, decided: u64) {
        self.outcomes.lock().unwrap().insert(proc, decided);
    }

    /// Checks agreement + validity given the per-process proposed values.
    /// Returns the agreed decision.
    pub fn check(&self, proposals: &BTreeMap<ProcId, u64>) -> u64 {
        let outcomes = self.outcomes.lock().unwrap();
        assert!(!outcomes.is_empty(), "nobody decided");
        let first = *outcomes.values().next().unwrap();
        for (p, d) in outcomes.iter() {
            assert_eq!(
                *d, first,
                "agreement violated: {p} decided {d}, expected {first}"
            );
        }
        assert!(
            proposals.values().any(|&v| v == first),
            "validity violated: decision {first} was never proposed"
        );
        first
    }
}

/// Runs `n` OS threads proposing distinct values `1000 + i` against `foc`,
/// retrying until all decide, then checks agreement/fo-validity and returns
/// (decision, total aborts observed).
pub fn stress_agreement(foc: &dyn FoConsensus<u64>, n: u32) -> (u64, u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let harness = FocPropertyHarness::new();
    let aborts = AtomicU64::new(0);
    let proposals: BTreeMap<ProcId, u64> =
        (0..n).map(|i| (ProcId(i), 1000 + u64::from(i))).collect();
    std::thread::scope(|s| {
        for i in 0..n {
            let harness = &harness;
            let aborts = &aborts;
            s.spawn(move || {
                let (d, a) = propose_until_decided(foc, i, 1000 + u64::from(i));
                aborts.fetch_add(a, Ordering::Relaxed);
                harness.record(ProcId(i), d);
            });
        }
    });
    let decision = harness.check(&proposals);
    (decision, aborts.load(std::sync::atomic::Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial foc for testing the harness itself: first propose wins,
    /// mutex-based (not a real foc — no abort path at all).
    struct MutexFoc {
        cell: Mutex<Option<u64>>,
    }

    impl FoConsensus<u64> for MutexFoc {
        fn propose(&self, _proc: u32, v: u64) -> Option<u64> {
            let mut g = self.cell.lock().unwrap();
            Some(*g.get_or_insert(v))
        }
        fn name(&self) -> &'static str {
            "mutex-test-double"
        }
    }

    #[test]
    fn harness_accepts_agreeing_runs() {
        let foc = MutexFoc {
            cell: Mutex::new(None),
        };
        let (d, aborts) = stress_agreement(&foc, 4);
        assert!((1000..1004).contains(&d));
        assert_eq!(aborts, 0);
    }

    #[test]
    #[should_panic(expected = "agreement violated")]
    fn harness_detects_disagreement() {
        let h = FocPropertyHarness::new();
        h.record(ProcId(0), 1);
        h.record(ProcId(1), 2);
        let proposals: BTreeMap<ProcId, u64> =
            [(ProcId(0), 1), (ProcId(1), 2)].into_iter().collect();
        h.check(&proposals);
    }

    #[test]
    #[should_panic(expected = "validity violated")]
    fn harness_detects_invalid_decision() {
        let h = FocPropertyHarness::new();
        h.record(ProcId(0), 99);
        let proposals: BTreeMap<ProcId, u64> = [(ProcId(0), 1)].into_iter().collect();
        h.check(&proposals);
    }
}
