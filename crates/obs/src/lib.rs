//! # oftm-obs — always-cheap STM telemetry
//!
//! Every STM instance in the workspace owns one [`StmStats`]: a sharded
//! registry of relaxed-atomic counters (begins, commits, aborts **by
//! cause**, retries, parks, reclamation and clock tallies) and three
//! allocation-free log2-bucket latency histograms (attempt latency,
//! commit-critical-section length, park duration). The always-on cost of
//! a transaction is a handful of uncontended relaxed increments plus two
//! monotonic clock reads — cheap enough that the numbers are *never*
//! compiled out, so every `BENCH_*.json` cell and every postmortem has
//! them.
//!
//! Why causes and not just counts: the paper's argument is about *where*
//! progress is lost — helping, aborts, version-chain walks. A single
//! `attempts_per_op` scalar says contention happened; the
//! [`AbortCause`] breakdown says whether it was read-validation (TL2's
//! documented failure mode), contention-manager arbitration (DSTM's), a
//! lost ownership CAS (Algorithm 2's), or a retry budget running dry.
//!
//! The [`ring`] module adds a `HARNESS_TRACE`-style env-gated structured
//! event ring: per-thread fixed-size rings of [`ring::TxEvent`] records,
//! drained to JSON for per-transaction timelines. When the gate is off
//! (the default), emitting an event is one relaxed boolean load.
//!
//! This crate is a dependency-free leaf so `oftm-core` can expose
//! [`StmStats`] from the `WordStm` trait itself.

pub mod conflict;
pub mod heatmap;
pub mod ring;
pub mod trace;

pub use conflict::{pack_tx, tx_proc, tx_seq, ConflictTable, Edge, TX_UNKNOWN};
pub use heatmap::{Heatmap, HotVar};

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Why a transaction attempt aborted. Exactly one cause is tagged per
/// aborted attempt (backends tag at the first operation that turns the
/// attempt dead; untagged abandonment is tagged `ExplicitRetry` when the
/// attempt settles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// A read (or commit-time read-set validation) observed a version
    /// outside the attempt's snapshot: TL/TL2 version-sandwich and
    /// commit validation, DSTM validation and stale upgrade probes,
    /// Algorithm 2 decided-chain validation.
    ReadValidation,
    /// A per-variable commit lock stayed busy past the lock patience
    /// (TL/TL2 read spins and commit-time lock acquisition).
    LockBusy,
    /// An ownership or commit CAS lost a race to a peer (DSTM descriptor
    /// commit CAS, Algorithm 2 ownership/state proposals).
    CasLost,
    /// A contention manager arbitrated the conflict against this
    /// transaction — a peer was told `AbortOther` and killed it (DSTM).
    CmArbitrated,
    /// The caller abandoned a still-viable attempt: an explicit `tryA`,
    /// or a body that returned `Err` without any backend operation
    /// failing (collection retry loops do this to rerun a precondition).
    ExplicitRetry,
    /// The bounded retry loop gave up: `max_attempts` attempts all
    /// aborted. Counted once per exhausted loop, by the loop.
    BudgetExhausted,
}

/// All causes, in the order they appear in snapshots and JSON.
pub const ABORT_CAUSES: &[AbortCause] = &[
    AbortCause::ReadValidation,
    AbortCause::LockBusy,
    AbortCause::CasLost,
    AbortCause::CmArbitrated,
    AbortCause::ExplicitRetry,
    AbortCause::BudgetExhausted,
];

impl AbortCause {
    /// Stable snake_case name (JSON keys, event kinds).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::ReadValidation => "read_validation",
            AbortCause::LockBusy => "lock_busy",
            AbortCause::CasLost => "cas_lost",
            AbortCause::CmArbitrated => "cm_arbitrated",
            AbortCause::ExplicitRetry => "explicit_retry",
            AbortCause::BudgetExhausted => "budget_exhausted",
        }
    }

    /// This cause's position in [`ABORT_CAUSES`] (heatmap rows and edge
    /// slots index by it).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The dedicated counter slot this cause increments.
    pub fn counter(self) -> Counter {
        match self {
            AbortCause::ReadValidation => Counter::AbortReadValidation,
            AbortCause::LockBusy => Counter::AbortLockBusy,
            AbortCause::CasLost => Counter::AbortCasLost,
            AbortCause::CmArbitrated => Counter::AbortCmArbitrated,
            AbortCause::ExplicitRetry => Counter::AbortExplicitRetry,
            AbortCause::BudgetExhausted => Counter::AbortBudgetExhausted,
        }
    }
}

/// Every scalar counter an [`StmStats`] tracks. The discriminant is the
/// index into each shard's counter array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Transactions begun via `begin`.
    Begins,
    /// Transactions begun via the declared read-only path (`begin_ro`).
    BeginsRo,
    /// Writing commits.
    Commits,
    /// Commits of declared read-only transactions.
    CommitsRo,
    /// Detect-on-commit promotions: transactions begun on the general
    /// path that committed with an empty write-set and took the cheap
    /// read-only commit.
    CommitsPromoted,
    AbortReadValidation,
    AbortLockBusy,
    AbortCasLost,
    AbortCmArbitrated,
    AbortExplicitRetry,
    AbortBudgetExhausted,
    /// Re-runs after an aborted attempt (attempt 2 and later of a retry
    /// loop). `Begins - Retries` approximates distinct logical ops.
    Retries,
    /// Aborted async attempts that parked on the commit notifier.
    Parks,
    /// Parked attempts woken by a relevant commit.
    Wakes,
    /// Wakes whose footprint had not actually changed (watchdog timeouts
    /// and raced parks) — the parking subsystem's false-positive rate.
    StaleWakes,
    /// Grace-period flushes that released at least one retired block.
    GraceFlushes,
    /// T-variables allocated (static registrations + dynamic blocks).
    TvarsAllocated,
    /// T-variables freed (grace-period evictions + aborted-attempt
    /// allocation releases).
    TvarsFreed,
    /// Commit-clock shard bumps (TL/TL2 writing commits).
    ClockShardTicks,
    /// Process-wide default-mode switches of a hybrid backend (each
    /// direction counts once; a full escalate+de-escalate cycle is 2).
    ModeMigrations,
    /// Per-transaction escalation requests of a hybrid backend: a retry
    /// loop exhausted its escalation budget with a contention-dominated
    /// cause profile and asked for the arbitrated mode.
    Escalations,
}

/// Number of counters (length of each shard's array).
pub const COUNTER_KINDS: usize = Counter::Escalations as usize + 1;

/// `(name, counter)` for every scalar counter, in snapshot/JSON order.
pub const COUNTER_NAMES: &[(&str, Counter)] = &[
    ("begins", Counter::Begins),
    ("begins_ro", Counter::BeginsRo),
    ("commits", Counter::Commits),
    ("commits_ro", Counter::CommitsRo),
    ("commits_promoted", Counter::CommitsPromoted),
    ("abort_read_validation", Counter::AbortReadValidation),
    ("abort_lock_busy", Counter::AbortLockBusy),
    ("abort_cas_lost", Counter::AbortCasLost),
    ("abort_cm_arbitrated", Counter::AbortCmArbitrated),
    ("abort_explicit_retry", Counter::AbortExplicitRetry),
    ("abort_budget_exhausted", Counter::AbortBudgetExhausted),
    ("retries", Counter::Retries),
    ("parks", Counter::Parks),
    ("wakes", Counter::Wakes),
    ("stale_wakes", Counter::StaleWakes),
    ("grace_flushes", Counter::GraceFlushes),
    ("tvars_allocated", Counter::TvarsAllocated),
    ("tvars_freed", Counter::TvarsFreed),
    ("clock_shard_ticks", Counter::ClockShardTicks),
    ("mode_migrations", Counter::ModeMigrations),
    ("escalations", Counter::Escalations),
];

/// Execution-mode labels a backend may stamp on its stats (index into
/// this table is the value passed to [`StmStats::set_mode`]). `"none"`
/// is the default for single-engine backends; a hybrid stamps which
/// engine currently runs the default path.
pub const MODE_NAMES: &[&str] = &["none", "tl2", "dstm"];

/// The t-variable attribution every abort-tagging site must pass
/// ([`StmStats::abort_at`]): either the variable the conflict was over,
/// or the explicit [`VarAttr::NoVar`] marker for causes that genuinely
/// have no variable (budget exhaustion, explicit retries). The marker is
/// deliberately spelled at every site — `oftm-lint` rejects tag sites
/// without a `VarAttr`, so "forgot to attribute" cannot compile into
/// "silently unattributed".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarAttr {
    /// The conflict was over this t-variable (raw id word).
    Var(u64),
    /// No variable is attributable to this abort by construction.
    NoVar,
}

impl VarAttr {
    /// The attributed id, if any.
    pub fn id(self) -> Option<u64> {
        match self {
            VarAttr::Var(x) => Some(x),
            VarAttr::NoVar => None,
        }
    }

    /// Attribution from an optional id — for sites that relay a stamp a
    /// peer may or may not have left (e.g. the DSTM killer stamp).
    pub fn opt(v: Option<u64>) -> VarAttr {
        match v {
            Some(x) => VarAttr::Var(x),
            None => VarAttr::NoVar,
        }
    }
}

/// Default forensics sampling period: every attributed abort is recorded.
/// The abort path is never the hot path (a recorded abort already cost a
/// failed validation or a lost CAS plus backoff), and recording is two
/// relaxed increments — so exact tables are affordable, and the gates
/// (`hot_vars` counts ≤ cell aborts, forced-conflict edge exactness) stay
/// deterministic. Raise `OFTM_FORENSICS_SAMPLE=N` to thin pathological
/// abort storms to 1-in-N per thread; the first event on each thread is
/// always recorded, so seeded single-conflict tests survive any rate.
pub const DEFAULT_FORENSICS_SAMPLE: u64 = 1;

thread_local! {
    /// Per-thread sampling tick: event `n` is recorded iff
    /// `n % period == 0`, starting at 0 — the first abort a thread takes
    /// is always recorded regardless of the period.
    static SAMPLE_TICK: Cell<u64> = const { Cell::new(0) };
}

/// The conflict-forensics bundle every [`StmStats`] carries: the
/// per-variable [`Heatmap`], the who-aborted-whom [`ConflictTable`], and
/// the sampling gate in front of both. Reached via
/// [`StmStats::forensics`] (and `WordStm::forensics()` in `oftm-core`).
pub struct Forensics {
    heatmap: Heatmap,
    edges: ConflictTable,
    /// 1-in-N per-thread sampling period (≥ 1).
    sample_period: AtomicU64,
}

impl Default for Forensics {
    fn default() -> Self {
        Self::new()
    }
}

impl Forensics {
    pub fn new() -> Forensics {
        let period = std::env::var("OFTM_FORENSICS_SAMPLE")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_FORENSICS_SAMPLE);
        Forensics {
            heatmap: Heatmap::new(),
            edges: ConflictTable::new(),
            sample_period: AtomicU64::new(period),
        }
    }

    /// The per-variable abort-attribution heatmap.
    pub fn heatmap(&self) -> &Heatmap {
        &self.heatmap
    }

    /// The who-aborted-whom conflict-edge table.
    pub fn edges(&self) -> &ConflictTable {
        &self.edges
    }

    /// Current 1-in-N sampling period.
    pub fn sample_period(&self) -> u64 {
        self.sample_period.load(Ordering::Relaxed)
    }

    /// Overrides the sampling period (tests and tools).
    pub fn set_sample_period(&self, n: u64) {
        self.sample_period.store(n.max(1), Ordering::Relaxed);
    }

    /// The sampling gate: ticks this thread's counter and says whether
    /// this event is in the recorded 1-in-N.
    fn sampled(&self) -> bool {
        let period = self.sample_period();
        if period <= 1 {
            return true;
        }
        SAMPLE_TICK.with(|t| {
            let n = t.get();
            t.set(n.wrapping_add(1));
            n % period == 0
        })
    }

    /// Records one attributed abort: heatmap row for the variable (when
    /// one was named) and, when the aggressor is known, a conflict edge.
    /// Subject to the sampling gate; recorded counts are therefore always
    /// ≤ the exact cause counters.
    pub fn record(&self, cause: AbortCause, var: VarAttr, victim: u64, aggressor: u64) {
        if !self.sampled() {
            return;
        }
        if let Some(x) = var.id() {
            self.heatmap.record(x, cause);
            self.edges.record(aggressor, victim, cause, x);
        }
    }

    /// Zeroes both tables (benches call this when a measured cell
    /// starts, so per-cell tables are net of warmup).
    pub fn reset(&self) {
        self.heatmap.reset();
        self.edges.reset();
    }

    /// The top-`k` hot variables as a JSON array — the `hot_vars` field
    /// every contended `BENCH_*.json` cell carries. Per-var `count`s are
    /// sampled attributions, so they sum to ≤ the cell's exact `aborts`
    /// (the inequality `check_bench_stats` gates on).
    pub fn hot_vars_json(&self, k: usize) -> String {
        let mut s = String::from("[");
        for (i, h) in self.heatmap.top_k(k).iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"var\": {}, \"count\": {}, \"dominant\": \"{}\"}}",
                h.var,
                h.total,
                h.dominant_cause().name()
            ));
        }
        s.push(']');
        s
    }

    /// The top-`k` conflict edges as a JSON array — the `hot_edges`
    /// field of a `BENCH_*.json` cell.
    pub fn hot_edges_json(&self, k: usize) -> String {
        let mut s = String::from("[");
        for (i, e) in self.edges.top_k(k).iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"aggressor\": {}, \"victim\": {}, \"cause\": \"{}\", \
                 \"var\": {}, \"count\": {}}}",
                e.aggressor_proc,
                e.victim_proc,
                e.cause.name(),
                e.var,
                e.count
            ));
        }
        s.push(']');
        s
    }
}

/// Histogram bucket count: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`. 64 log2 buckets cover all of `u64`.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket a value falls in.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value of bucket `b`.
pub fn bucket_floor(b: usize) -> u64 {
    debug_assert!(b < HIST_BUCKETS);
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Largest value of bucket `b`.
pub fn bucket_ceiling(b: usize) -> u64 {
    debug_assert!(b < HIST_BUCKETS);
    if b == 0 {
        0
    } else if b == 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// One allocation-free log2 histogram: 65 relaxed-atomic buckets.
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a histogram's buckets. Merging a snapshot per
/// shard yields exactly the global snapshot (bucket-wise sums — the
/// property the proptest in this crate pins down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise accumulate.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram (buckets are monotonic, so saturation means misuse).
    pub fn since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| self.buckets[b].saturating_sub(base.buckets[b])),
        }
    }

    /// The bucket containing the `p`-th percentile sample (nearest-rank:
    /// the bucket of the `ceil(p/100 · count)`-th smallest sample).
    /// `None` when empty.
    pub fn percentile_bucket(&self, p: f64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let rank = rank.min(n);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(b);
            }
        }
        unreachable!("cumulative count reached total before last bucket")
    }

    /// Upper bound of the `p`-th percentile: the nearest-rank sample is
    /// ≤ this and ≥ half of it (log2 bucket resolution). 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentile_bucket(p).map_or(0, bucket_ceiling)
    }

    /// `{"count": N, "p50": …, "p90": …, "p99": …}` (upper bounds, ns).
    pub fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            self.count(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0)
        )
    }
}

/// Shard count; a power of two. Threads map to shards round-robin on
/// first use, so up to this many threads increment without sharing a
/// cache line.
pub const STAT_SHARDS: usize = 16;

/// One stats shard, line-aligned so concurrent incrementers on distinct
/// shards never bounce a line between them.
#[repr(align(128))]
struct StatShard {
    counters: [AtomicU64; COUNTER_KINDS],
    attempt_ns: Histogram,
    commit_cs_ns: Histogram,
    park_ns: Histogram,
}

impl StatShard {
    fn new() -> Self {
        StatShard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            attempt_ns: Histogram::new(),
            commit_cs_ns: Histogram::new(),
            park_ns: Histogram::new(),
        }
    }
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned round-robin on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (STAT_SHARDS - 1);
}

fn my_shard() -> usize {
    MY_SHARD.with(|s| *s)
}

/// The per-STM-instance telemetry registry (see module docs). All writes
/// are relaxed increments into the calling thread's shard; reads merge
/// every shard into a [`StatsSnapshot`].
pub struct StmStats {
    shards: Box<[StatShard]>,
    /// Index into [`MODE_NAMES`]: which engine currently runs the default
    /// path (hybrid backends only; 0 = "none" everywhere else).
    mode: AtomicUsize,
    /// The conflict-forensics bundle (heatmap + edges). Lives inside the
    /// stats so a hybrid's engines, which share one `Arc<StmStats>`,
    /// automatically share one forensics view too.
    forensics: Forensics,
}

impl Default for StmStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StmStats {
    pub fn new() -> Self {
        StmStats {
            shards: (0..STAT_SHARDS).map(|_| StatShard::new()).collect(),
            mode: AtomicUsize::new(0),
            forensics: Forensics::new(),
        }
    }

    /// The conflict-forensics bundle: per-variable heatmap and
    /// who-aborted-whom edges, fed by [`StmStats::abort_at`].
    pub fn forensics(&self) -> &Forensics {
        &self.forensics
    }

    /// Stamps the current execution mode (index into [`MODE_NAMES`]).
    /// Advisory metadata: snapshots copy it, nothing synchronizes on it.
    #[inline]
    pub fn set_mode(&self, m: usize) {
        debug_assert!(m < MODE_NAMES.len());
        self.mode.store(m, Ordering::Relaxed);
    }

    /// The last stamped mode (index into [`MODE_NAMES`]).
    pub fn mode(&self) -> usize {
        self.mode.load(Ordering::Relaxed)
    }

    /// Adds 1 to `c` in the calling thread's shard.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to `c` in the calling thread's shard.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if n > 0 {
            self.shards[my_shard()].counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Tags one aborted attempt with its cause.
    ///
    /// Prefer [`StmStats::abort_at`] at backend tag sites — it carries
    /// the var/peer attribution the forensics layer (and `oftm-lint`)
    /// demand. This bare form remains for pass-through helpers.
    #[inline]
    pub fn abort(&self, cause: AbortCause) {
        self.incr(cause.counter());
    }

    /// Tags one aborted attempt with its cause *and* its forensic
    /// attribution: the t-variable the conflict was over (`var`, or the
    /// explicit [`VarAttr::NoVar`] marker), the aborting transaction
    /// (`victim`, packed via [`pack_tx`]), and — where the backend knows
    /// it — the conflicting peer (`aggressor`; [`TX_UNKNOWN`] otherwise).
    /// Feeds the cause counter exactly like [`StmStats::abort`], plus the
    /// heatmap/edge tables (sampled) and, when tracing is on, an `abort`
    /// instant on the event ring carrying cause + var.
    #[inline]
    pub fn abort_at(&self, cause: AbortCause, var: VarAttr, victim: u64, aggressor: u64) {
        self.incr(cause.counter());
        self.forensics.record(cause, var, victim, aggressor);
        if ring::enabled() {
            ring::emit(
                "abort",
                cause.name(),
                var.id().unwrap_or(trace::NO_VAR),
                victim,
            );
        }
    }

    /// Records one attempt's wall-clock latency (begin → commit/abort).
    #[inline]
    pub fn record_attempt_ns(&self, ns: u64) {
        self.shards[my_shard()].attempt_ns.record(ns);
    }

    /// Records one commit critical section (first lock/CAS → effects
    /// visible; on the coarse backend, the whole gate hold).
    #[inline]
    pub fn record_commit_cs_ns(&self, ns: u64) {
        self.shards[my_shard()].commit_cs_ns.record(ns);
    }

    /// Records one async park (park → wake).
    #[inline]
    pub fn record_park_ns(&self, ns: u64) {
        self.shards[my_shard()].park_ns.record(ns);
    }

    /// Merged point-in-time copy of every shard.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for s in self.shard_snapshots() {
            out.merge(&s);
        }
        out.mode = self.mode();
        out
    }

    /// One snapshot per shard, unmerged (tests pin down that merging
    /// these equals [`StmStats::snapshot`]).
    pub fn shard_snapshots(&self) -> Vec<StatsSnapshot> {
        self.shards
            .iter()
            .map(|s| StatsSnapshot {
                counters: std::array::from_fn(|c| s.counters[c].load(Ordering::Relaxed)),
                attempt_ns: s.attempt_ns.snapshot(),
                commit_cs_ns: s.commit_cs_ns.snapshot(),
                park_ns: s.park_ns.snapshot(),
                mode: 0,
            })
            .collect()
    }
}

/// A merged point-in-time copy of an [`StmStats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    counters: [u64; COUNTER_KINDS],
    pub attempt_ns: HistogramSnapshot,
    pub commit_cs_ns: HistogramSnapshot,
    pub park_ns: HistogramSnapshot,
    /// Mode stamp at snapshot time (index into [`MODE_NAMES`]).
    pub mode: usize,
}

impl StatsSnapshot {
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Total aborted attempts — by construction the sum of the six cause
    /// counters, so "causes sum to aborts" holds identically.
    pub fn aborts(&self) -> u64 {
        ABORT_CAUSES.iter().map(|&c| self.get(c.counter())).sum()
    }

    /// Total committed transactions on any path.
    pub fn all_commits(&self) -> u64 {
        self.get(Counter::Commits) + self.get(Counter::CommitsRo)
    }

    /// Accumulates `other` into `self` (counter-wise, bucket-wise).
    pub fn merge(&mut self, other: &StatsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        self.attempt_ns.merge(&other.attempt_ns);
        self.commit_cs_ns.merge(&other.commit_cs_ns);
        self.park_ns.merge(&other.park_ns);
    }

    /// Difference against an earlier snapshot of the same stats — the
    /// bench harnesses use this to report a timed phase net of warmup.
    pub fn since(&self, base: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            counters: std::array::from_fn(|c| self.counters[c].saturating_sub(base.counters[c])),
            attempt_ns: self.attempt_ns.since(&base.attempt_ns),
            commit_cs_ns: self.commit_cs_ns.since(&base.commit_cs_ns),
            park_ns: self.park_ns.since(&base.park_ns),
            mode: self.mode,
        }
    }

    /// Total attempts started on any path (`begins + begins_ro`).
    pub fn all_begins(&self) -> u64 {
        self.get(Counter::Begins) + self.get(Counter::BeginsRo)
    }

    /// Aborted attempts as a fraction of started attempts (0 when no
    /// attempts started). On a `since()` delta this is the window's
    /// abort ratio — the mode controller's primary escalation signal.
    pub fn abort_ratio(&self) -> f64 {
        let begins = self.all_begins();
        if begins == 0 {
            0.0
        } else {
            self.aborts() as f64 / begins as f64
        }
    }

    /// `cause`'s fraction of all aborts (0 when nothing aborted). On a
    /// `since()` delta this tells a controller *why* the window aborted.
    pub fn cause_share(&self, cause: AbortCause) -> f64 {
        let aborts = self.aborts();
        if aborts == 0 {
            0.0
        } else {
            self.get(cause.counter()) as f64 / aborts as f64
        }
    }

    /// Per-second rates of this snapshot over `elapsed_secs` — meant for
    /// a `since()` delta, so controllers and adapters don't each
    /// reimplement the same division (non-positive elapsed yields zero
    /// rates rather than infinities).
    pub fn rates(&self, elapsed_secs: f64) -> WindowRates {
        let per_sec = |n: u64| {
            if elapsed_secs > 0.0 {
                n as f64 / elapsed_secs
            } else {
                0.0
            }
        };
        WindowRates {
            elapsed_secs,
            begins_per_sec: per_sec(self.all_begins()),
            commits_per_sec: per_sec(self.all_commits()),
            aborts_per_sec: per_sec(self.aborts()),
            cause_per_sec: std::array::from_fn(|i| per_sec(self.get(ABORT_CAUSES[i].counter()))),
        }
    }

    /// The canonical JSON object every `BENCH_*.json` cell embeds:
    /// scalar counters, derived `aborts` (= sum of the cause breakdown
    /// in `abort_causes`), and the three latency histograms.
    pub fn json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"mode\": \"{}\", ", MODE_NAMES[self.mode]));
        for (name, c) in COUNTER_NAMES {
            if c.is_cause() {
                continue; // causes go in their own nested object
            }
            s.push_str(&format!("\"{name}\": {}, ", self.get(*c)));
        }
        s.push_str(&format!(
            "\"aborts\": {}, \"abort_causes\": {{",
            self.aborts()
        ));
        for (i, &cause) in ABORT_CAUSES.iter().enumerate() {
            s.push_str(&format!(
                "\"{}\": {}{}",
                cause.name(),
                self.get(cause.counter()),
                if i + 1 == ABORT_CAUSES.len() {
                    ""
                } else {
                    ", "
                }
            ));
        }
        s.push_str(&format!(
            "}}, \"attempt_ns\": {}, \"commit_cs_ns\": {}, \"park_ns\": {}}}",
            self.attempt_ns.json(),
            self.commit_cs_ns.json(),
            self.park_ns.json()
        ));
        s
    }

    /// The cause with the highest count (ties broken by taxonomy order),
    /// or `None` when nothing aborted. Benches use this to label a
    /// cell's dominant failure mode.
    pub fn dominant_cause(&self) -> Option<AbortCause> {
        ABORT_CAUSES
            .iter()
            .copied()
            .max_by_key(|c| self.get(c.counter()))
            .filter(|c| self.get(c.counter()) > 0)
    }
}

/// Per-second rates of one telemetry window (a `since()` delta divided
/// by its wall-clock length) — see [`StatsSnapshot::rates`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowRates {
    pub elapsed_secs: f64,
    pub begins_per_sec: f64,
    pub commits_per_sec: f64,
    pub aborts_per_sec: f64,
    /// Per-cause abort rates, indexed like [`ABORT_CAUSES`].
    pub cause_per_sec: [f64; 6],
}

impl WindowRates {
    /// `cause`'s aborts per second in this window.
    pub fn cause_rate(&self, cause: AbortCause) -> f64 {
        let i = ABORT_CAUSES
            .iter()
            .position(|&c| c == cause)
            .expect("every cause is in ABORT_CAUSES");
        self.cause_per_sec[i]
    }
}

impl Counter {
    /// True for the six abort-cause counters.
    pub fn is_cause(self) -> bool {
        matches!(
            self,
            Counter::AbortReadValidation
                | Counter::AbortLockBusy
                | Counter::AbortCasLost
                | Counter::AbortCmArbitrated
                | Counter::AbortExplicitRetry
                | Counter::AbortBudgetExhausted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(b)), b, "floor of bucket {b}");
            assert_eq!(bucket_of(bucket_ceiling(b)), b, "ceiling of bucket {b}");
            if b > 0 {
                assert_eq!(bucket_floor(b), bucket_ceiling(b - 1) + 1);
            }
        }
    }

    #[test]
    fn counter_names_cover_every_counter_exactly_once() {
        assert_eq!(COUNTER_NAMES.len(), COUNTER_KINDS);
        for (i, (_, c)) in COUNTER_NAMES.iter().enumerate() {
            assert_eq!(*c as usize, i, "COUNTER_NAMES out of discriminant order");
        }
    }

    #[test]
    fn aborts_is_sum_of_causes() {
        let stats = StmStats::new();
        stats.abort(AbortCause::ReadValidation);
        stats.abort(AbortCause::ReadValidation);
        stats.abort(AbortCause::CmArbitrated);
        let snap = stats.snapshot();
        assert_eq!(snap.aborts(), 3);
        assert_eq!(snap.get(Counter::AbortReadValidation), 2);
        assert_eq!(snap.dominant_cause(), Some(AbortCause::ReadValidation));
    }

    #[test]
    fn json_shape() {
        let stats = StmStats::new();
        stats.incr(Counter::Begins);
        stats.incr(Counter::Commits);
        stats.abort(AbortCause::LockBusy);
        stats.record_attempt_ns(1500);
        let j = stats.snapshot().json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"begins\": 1"), "{j}");
        assert!(j.contains("\"aborts\": 1"), "{j}");
        assert!(
            j.contains("\"abort_causes\": {\"read_validation\": 0, \"lock_busy\": 1"),
            "{j}"
        );
        assert!(j.contains("\"attempt_ns\": {\"count\": 1"), "{j}");
        // Balanced braces (the benches splice this into hand-rolled JSON).
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn since_subtracts_warmup() {
        let stats = StmStats::new();
        stats.incr(Counter::Begins);
        stats.abort(AbortCause::CasLost);
        stats.record_attempt_ns(100);
        let warm = stats.snapshot();
        stats.incr(Counter::Begins);
        stats.record_attempt_ns(100);
        let net = stats.snapshot().since(&warm);
        assert_eq!(net.get(Counter::Begins), 1);
        assert_eq!(net.aborts(), 0);
        assert_eq!(net.attempt_ns.count(), 1);
    }

    #[test]
    fn window_rates_divide_the_delta() {
        let stats = StmStats::new();
        stats.incr(Counter::Begins);
        stats.abort(AbortCause::LockBusy);
        let warm = stats.snapshot();
        for _ in 0..10 {
            stats.incr(Counter::Begins);
        }
        for _ in 0..4 {
            stats.incr(Counter::Commits);
        }
        for _ in 0..6 {
            stats.abort(AbortCause::LockBusy);
        }
        stats.abort(AbortCause::ReadValidation);
        stats.incr(Counter::BeginsRo);
        let delta = stats.snapshot().since(&warm);
        let r = delta.rates(2.0);
        assert_eq!(r.begins_per_sec, 5.5); // (10 + 1 ro) / 2s
        assert_eq!(r.commits_per_sec, 2.0);
        assert_eq!(r.aborts_per_sec, 3.5);
        assert_eq!(r.cause_rate(AbortCause::LockBusy), 3.0);
        assert_eq!(r.cause_rate(AbortCause::ReadValidation), 0.5);
        assert_eq!(r.cause_rate(AbortCause::CasLost), 0.0);
    }

    #[test]
    fn window_ratios_and_shares() {
        let stats = StmStats::new();
        for _ in 0..8 {
            stats.incr(Counter::Begins);
        }
        for _ in 0..3 {
            stats.abort(AbortCause::LockBusy);
        }
        stats.abort(AbortCause::CmArbitrated);
        let snap = stats.snapshot();
        assert_eq!(snap.abort_ratio(), 0.5);
        assert_eq!(snap.cause_share(AbortCause::LockBusy), 0.75);
        assert_eq!(snap.cause_share(AbortCause::CmArbitrated), 0.25);
        assert_eq!(snap.cause_share(AbortCause::CasLost), 0.0);
        // Empty snapshots yield zeros, never NaN/inf.
        let empty = StatsSnapshot::default();
        assert_eq!(empty.abort_ratio(), 0.0);
        assert_eq!(empty.cause_share(AbortCause::LockBusy), 0.0);
        assert_eq!(empty.rates(0.0).begins_per_sec, 0.0);
    }

    #[test]
    fn mode_stamp_flows_into_snapshots_and_json() {
        let stats = StmStats::new();
        assert_eq!(stats.snapshot().mode, 0);
        assert!(stats.snapshot().json().contains("\"mode\": \"none\""));
        stats.set_mode(2);
        let warm = stats.snapshot();
        assert_eq!(warm.mode, 2);
        let delta = stats.snapshot().since(&warm);
        assert_eq!(delta.mode, 2);
        assert!(delta.json().contains("\"mode\": \"dstm\""));
    }

    #[test]
    fn abort_at_feeds_cause_counter_heatmap_and_edges() {
        let stats = StmStats::new();
        stats.forensics().set_sample_period(1);
        stats.abort_at(
            AbortCause::CmArbitrated,
            VarAttr::Var(7),
            pack_tx(2, 5),
            pack_tx(1, 3),
        );
        stats.abort_at(
            AbortCause::BudgetExhausted,
            VarAttr::NoVar,
            pack_tx(2, 6),
            TX_UNKNOWN,
        );
        let snap = stats.snapshot();
        assert_eq!(snap.aborts(), 2);
        let hot = stats.forensics().heatmap().top_k(4);
        assert_eq!(hot.len(), 1, "NoVar must not land in the heatmap");
        assert_eq!(hot[0].var, 7);
        let edges = stats.forensics().edges().top_k(4);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].aggressor_proc, 1);
        assert_eq!(edges[0].victim_proc, 2);
        assert_eq!(edges[0].last_aggressor, pack_tx(1, 3));
        assert_eq!(edges[0].cause, AbortCause::CmArbitrated);
    }

    /// The forensics tables are sampled; the cause counters are exact.
    /// Whatever the period, attributed counts can only undershoot.
    #[test]
    fn sampled_attributions_never_exceed_exact_aborts() {
        let stats = StmStats::new();
        stats.forensics().set_sample_period(4);
        for i in 0..100u64 {
            stats.abort_at(
                AbortCause::ReadValidation,
                VarAttr::Var(i % 3),
                pack_tx(0, i as u32),
                TX_UNKNOWN,
            );
        }
        let snap = stats.snapshot();
        assert_eq!(snap.aborts(), 100);
        let attributed = stats.forensics().heatmap().total();
        assert!(attributed >= 1, "first event per thread always records");
        assert!(
            attributed <= 100,
            "sampled attributions exceed exact aborts: {attributed}"
        );
        stats.forensics().set_sample_period(1);
    }

    #[test]
    fn forensics_json_fragments_are_balanced() {
        let stats = StmStats::new();
        stats.forensics().set_sample_period(1);
        stats.abort_at(
            AbortCause::LockBusy,
            VarAttr::Var(11),
            pack_tx(4, 1),
            pack_tx(3, 9),
        );
        let vars = stats.forensics().hot_vars_json(8);
        let edges = stats.forensics().hot_edges_json(8);
        assert!(vars.contains("\"var\": 11"), "{vars}");
        assert!(vars.contains("\"dominant\": \"lock_busy\""), "{vars}");
        assert!(edges.contains("\"aggressor\": 3"), "{edges}");
        for j in [&vars, &edges] {
            assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
            assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        }
        stats.forensics().reset();
        assert_eq!(stats.forensics().hot_vars_json(8), "[]");
        assert_eq!(stats.forensics().hot_edges_json(8), "[]");
    }

    #[test]
    fn concurrent_increments_all_land() {
        let stats = std::sync::Arc::new(StmStats::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let stats = std::sync::Arc::clone(&stats);
                s.spawn(move || {
                    for _ in 0..1000 {
                        stats.incr(Counter::Begins);
                        stats.record_attempt_ns(42);
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.get(Counter::Begins), 8000);
        assert_eq!(snap.attempt_ns.count(), 8000);
    }
}
