//! Env-gated structured event ring: per-thread fixed-size rings of
//! [`TxEvent`] records, drained to JSON for per-transaction postmortems.
//!
//! The gate follows the harness convention: set `HARNESS_TRACE=1` (or
//! `OFTM_TRACE=1`) and every instrumented site records a timestamped
//! event — abort causes as they are tagged, commits with their attempt
//! counts, parks and wakes, harness cell markers. With the gate off (the
//! default) an emit is a single relaxed load and branch, so the call
//! sites stay in release builds.
//!
//! Rings are fixed-size and overwrite oldest-first: a wedged run keeps
//! the *latest* window of events, which is the window a postmortem needs.
//! [`drain_json`] merges every thread's ring into one time-sorted JSON
//! array and empties the rings.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread; oldest are overwritten (`dropped` counts
/// the overwrites so a drain states what it lost).
pub const RING_CAPACITY: usize = 4096;

/// One structured trace record. Payload words `a`/`b` are event-kind
/// specific (documented at each emitting site); keeping them as plain
/// words keeps emission allocation-free.
#[derive(Clone, Copy, Debug)]
pub struct TxEvent {
    /// Monotonic nanoseconds since the process's first trace-clock read.
    /// For span records ([`emit_span`]) this is the span's *start*.
    pub nanos: u64,
    /// Emitting thread (dense trace-local index, not the OS tid).
    pub thread: u64,
    /// Event kind: an abort-cause name, `"commit"`, `"park"`, `"wake"`,
    /// `"budget_exhausted"`, `"cell"`, …
    pub kind: &'static str,
    /// STM backend name, or a harness label for non-backend events.
    pub stm: &'static str,
    pub a: u64,
    pub b: u64,
    /// Span duration in nanoseconds; 0 marks an instant event. Spans are
    /// what [`crate::trace::export_chrome`] turns into `"X"` slices.
    pub dur: u64,
}

struct RingBuf {
    events: Vec<TxEvent>,
    /// Next slot to write (wraps at `RING_CAPACITY`).
    next: usize,
    /// Total events overwritten after the ring filled.
    dropped: u64,
}

struct Ring {
    /// Dense trace-local thread index of the owning thread.
    thread: u64,
    buf: Mutex<RingBuf>,
}

impl Ring {
    fn push(&self, ev: TxEvent) {
        let mut b = self.buf.lock().unwrap();
        if b.events.len() < RING_CAPACITY {
            b.events.push(ev);
        } else {
            let slot = b.next % RING_CAPACITY;
            b.events[slot] = ev;
            b.dropped += 1;
        }
        b.next = (b.next + 1) % RING_CAPACITY;
    }
}

/// Tri-state gate: 0 unknown (consult env), 1 off, 2 on.
static GATE: AtomicU8 = AtomicU8::new(0);
static THREAD_IDS: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds on the trace clock (0 at first use).
pub fn clock_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// True when tracing is on: `HARNESS_TRACE` or `OFTM_TRACE` set in the
/// environment (checked once), or forced by [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var_os("HARNESS_TRACE").is_some()
                || std::env::var_os("OFTM_TRACE").is_some();
            GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the gate (tests and tools; the env is read-only in-process).
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

thread_local! {
    static MY_RING: (u64, Arc<Ring>) = {
        let thread = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Ring {
            thread,
            buf: Mutex::new(RingBuf {
                events: Vec::with_capacity(64),
                next: 0,
                dropped: 0,
            }),
        });
        registry().lock().unwrap().push(Arc::clone(&ring));
        (thread, ring)
    };
}

/// Records one event into the calling thread's ring. No-op (one relaxed
/// load) when tracing is off.
#[inline]
pub fn emit(kind: &'static str, stm: &'static str, a: u64, b: u64) {
    if !enabled() {
        return;
    }
    let nanos = clock_ns();
    push_event(nanos, kind, stm, a, b, 0);
}

/// Records a span that started at `start_ns` (a [`clock_ns`] reading) and
/// ends now. No-op when tracing is off — callers typically guard the
/// `start_ns` read with [`enabled`] too, so an untraced attempt pays one
/// relaxed load in total.
#[inline]
pub fn emit_span(kind: &'static str, stm: &'static str, a: u64, b: u64, start_ns: u64) {
    if !enabled() {
        return;
    }
    let dur = clock_ns().saturating_sub(start_ns).max(1);
    push_event(start_ns, kind, stm, a, b, dur);
}

fn push_event(nanos: u64, kind: &'static str, stm: &'static str, a: u64, b: u64, dur: u64) {
    MY_RING.with(|(thread, ring)| {
        ring.push(TxEvent {
            nanos,
            thread: *thread,
            kind,
            stm,
            a,
            b,
            dur,
        });
    });
}

/// Everything one drain pulled out of the rings: the merged time-sorted
/// events plus the truncation accounting — total overwrites and the
/// per-thread breakdown (thread id, events overwritten), so a postmortem
/// can see *whose* window was too small, not just that one was.
#[derive(Clone, Debug, Default)]
pub struct Drained {
    pub events: Vec<TxEvent>,
    pub dropped: u64,
    /// `(thread, dropped_events)` for every thread that overwrote at
    /// least one event.
    pub dropped_by_thread: Vec<(u64, u64)>,
}

/// Drains every thread's ring into one time-sorted batch, emptying the
/// rings. The structured twin of [`drain_json`]; the Chrome-trace
/// exporter ([`crate::trace::export_chrome`]) consumes this.
pub fn drain() -> Drained {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap().clone();
    let mut out = Drained::default();
    for ring in &rings {
        let mut b = ring.buf.lock().unwrap();
        if b.dropped > 0 {
            out.dropped += b.dropped;
            out.dropped_by_thread.push((ring.thread, b.dropped));
        }
        // Oldest-first: the slice after `next` (if wrapped), then before.
        if b.events.len() == RING_CAPACITY {
            let next = b.next;
            out.events.extend_from_slice(&b.events[next..]);
            out.events.extend_from_slice(&b.events[..next]);
        } else {
            out.events.extend_from_slice(&b.events);
        }
        b.events.clear();
        b.next = 0;
        b.dropped = 0;
    }
    out.events.sort_by_key(|e| e.nanos);
    out.dropped_by_thread.sort_unstable();
    out
}

/// Drains every thread's ring into one time-sorted JSON array
/// (`{"dropped": N, "dropped_by_thread": [...], "events": [...]}`),
/// emptying the rings. Truncation is never silent: the total overwrite
/// count and its per-thread breakdown lead the object. Returns `None`
/// when tracing is off and nothing was ever recorded.
pub fn drain_json() -> Option<String> {
    let d = drain();
    if d.events.is_empty() && d.dropped == 0 {
        return None;
    }
    let mut s = format!("{{\"dropped\": {}, \"dropped_by_thread\": [", d.dropped);
    for (i, (thread, n)) in d.dropped_by_thread.iter().enumerate() {
        s.push_str(&format!(
            "{{\"thread\": {thread}, \"dropped\": {n}}}{}",
            if i + 1 == d.dropped_by_thread.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    s.push_str("], \"events\": [\n");
    for (i, e) in d.events.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"ns\": {}, \"thread\": {}, \"kind\": \"{}\", \"stm\": \"{}\", \
             \"a\": {}, \"b\": {}, \"dur\": {}}}{}\n",
            e.nanos,
            e.thread,
            e.kind,
            e.stm,
            e.a,
            e.b,
            e.dur,
            if i + 1 == d.events.len() { "" } else { "," }
        ));
    }
    s.push_str("]}\n");
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate and registry are process-global; tests that toggle them
    /// must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn ring_records_and_drains_when_enabled() {
        let _g = serial();
        set_enabled(true);
        emit("commit", "tl2", 3, 0);
        emit("read_validation", "tl2", 7, 1);
        let json = drain_json().expect("events recorded");
        assert!(json.contains("\"kind\": \"commit\""), "{json}");
        assert!(json.contains("\"kind\": \"read_validation\""), "{json}");
        assert!(json.contains("\"dropped\": 0"), "{json}");
        // Drained: a second drain on this thread starts empty (other
        // tests may race their own events in, so only check our kinds).
        let again = drain_json().unwrap_or_default();
        assert!(!again.contains("\"kind\": \"commit\""), "{again}");
        set_enabled(false);
    }

    #[test]
    fn disabled_gate_drops_events() {
        let _g = serial();
        set_enabled(false);
        emit("never", "tl", 0, 0);
        let json = drain_json().unwrap_or_default();
        assert!(!json.contains("never"), "{json}");
    }

    #[test]
    fn overwrite_keeps_latest_window() {
        let _g = serial();
        set_enabled(true);
        std::thread::spawn(|| {
            for i in 0..(RING_CAPACITY as u64 + 10) {
                emit("tick", "test", i, 0);
            }
            let json = drain_json().expect("events recorded");
            assert!(json.contains("\"dropped\": 10"), "{json}");
            // The oldest 10 were overwritten; the newest survive.
            assert!(!json.contains("\"a\": 9,"), "{json}");
            assert!(
                json.contains(&format!("\"a\": {}", RING_CAPACITY as u64 + 9)),
                "{json}"
            );
        })
        .join()
        .unwrap();
        set_enabled(false);
    }

    /// Truncation must be *reported per thread*, not silently folded into
    /// a process-wide total: a drained JSON names each overflowing thread
    /// with its own overwrite count.
    #[test]
    fn truncation_reports_per_thread_dropped_counts() {
        let _g = serial();
        set_enabled(true);
        drain_json(); // start from empty rings
        let overflow = |extra: u64| {
            std::thread::spawn(move || {
                for i in 0..(RING_CAPACITY as u64 + extra) {
                    emit("tick", "test", i, 0);
                }
                MY_RING.with(|(thread, _)| *thread)
            })
            .join()
            .unwrap()
        };
        let t1 = overflow(3);
        let t2 = overflow(7);
        let json = drain_json().expect("events recorded");
        assert!(json.contains("\"dropped\": 10"), "{json}");
        assert!(
            json.contains(&format!("{{\"thread\": {t1}, \"dropped\": 3}}")),
            "thread {t1} truncation swallowed: {json}"
        );
        assert!(
            json.contains(&format!("{{\"thread\": {t2}, \"dropped\": 7}}")),
            "thread {t2} truncation swallowed: {json}"
        );
        // Once drained, the counters reset — no double reporting.
        let again = drain_json().unwrap_or_default();
        assert!(!again.contains("\"dropped\": 10"), "{again}");
        set_enabled(false);
    }

    #[test]
    fn spans_carry_start_and_duration() {
        let _g = serial();
        set_enabled(true);
        drain_json();
        let start = clock_ns();
        emit_span("attempt", "tl2", 1, 2, start);
        let d = drain();
        let span = d
            .events
            .iter()
            .find(|e| e.kind == "attempt")
            .expect("span recorded");
        assert_eq!(span.nanos, start, "span keeps its start timestamp");
        assert!(span.dur >= 1, "span duration is never zero");
        set_enabled(false);
    }
}
