//! Who-aborted-whom conflict edges: *who* is killing *whom*, over *what*.
//!
//! Aggregate cause counts can't distinguish symmetric churn from
//! asymmetric starvation — one writer serially killing every reader looks
//! identical to everyone killing everyone. This table keeps the missing
//! direction: whenever a backend can name the conflicting peer (a DSTM
//! locator owner, an Algorithm 2 `Owner[x,k]` winner, a TL/TL2
//! lock-holder stamp), the victim's abort records an **edge**
//! `aggressor → victim` tagged with the cause and the t-variable fought
//! over.
//!
//! Edges aggregate by `(aggressor proc, victim proc, cause, var)` in a
//! fixed-capacity open-addressed table: slots are claimed by one CAS on a
//! key hash, counted with relaxed increments, and never deallocated, so
//! recording is lock- and allocation-free. The last full transaction ids
//! seen on each edge are kept alongside the count — that is what the
//! forced-conflict exactness tests pin (the *right* aggressor, not just
//! the right process). A full table overflows into a counter, never
//! silently.

use crate::{AbortCause, ABORT_CAUSES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Slots in the edge table; a power of two. 1024 distinct
/// (aggressor, victim, cause, var) combinations is far beyond any
/// workload in the workspace (procs ≤ 64, hot vars ≪ slots).
const TABLE_SLOTS: usize = 1024;
/// Linear-probe limit before an insert gives up into `overflow`.
const MAX_PROBES: usize = 32;

/// Packs a transaction identity `(proc, seq)` into the u64 wire form the
/// forensics layer carries (`proc` in the high half).
pub fn pack_tx(proc: u32, seq: u32) -> u64 {
    (u64::from(proc) << 32) | u64::from(seq)
}

/// The process half of a packed transaction id.
pub fn tx_proc(bits: u64) -> u32 {
    (bits >> 32) as u32
}

/// The sequence half of a packed transaction id.
pub fn tx_seq(bits: u64) -> u32 {
    bits as u32
}

/// Sentinel for "peer unknown": sites that cannot name the aggressor
/// pass this and the edge is not recorded (the heatmap still is).
pub const TX_UNKNOWN: u64 = u64::MAX;

/// One aggregated conflict edge, as returned by [`ConflictTable::top_k`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Process of the transaction that won the conflict.
    pub aggressor_proc: u32,
    /// Process of the transaction that aborted.
    pub victim_proc: u32,
    pub cause: AbortCause,
    /// The t-variable fought over.
    pub var: u64,
    /// Aborts attributed to this edge.
    pub count: u64,
    /// Packed id ([`pack_tx`]) of the most recent aggressor on this edge.
    pub last_aggressor: u64,
    /// Packed id of the most recent victim on this edge.
    pub last_victim: u64,
}

/// One table slot. `key` is 0 when free, else the claim hash; the
/// identity fields are written once by the claiming thread and guarded by
/// `init` so a racing reader never sees a half-written slot.
struct Slot {
    key: AtomicU64,
    init: AtomicU64,
    count: AtomicU64,
    aggressor_proc: AtomicU64,
    victim_proc: AtomicU64,
    cause: AtomicU64,
    var: AtomicU64,
    last_aggressor: AtomicU64,
    last_victim: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            key: AtomicU64::new(0),
            init: AtomicU64::new(0),
            count: AtomicU64::new(0),
            aggressor_proc: AtomicU64::new(0),
            victim_proc: AtomicU64::new(0),
            cause: AtomicU64::new(0),
            var: AtomicU64::new(0),
            last_aggressor: AtomicU64::new(0),
            last_victim: AtomicU64::new(0),
        }
    }
}

/// SplitMix64 finalizer: the slot key for an edge identity. Never 0 for
/// practical inputs; 0 inputs are nudged so the free-slot sentinel stays
/// unambiguous.
fn edge_key(aggressor_proc: u32, victim_proc: u32, cause: AbortCause, var: u64) -> u64 {
    let mut z = (u64::from(aggressor_proc) << 38)
        ^ (u64::from(victim_proc) << 12)
        ^ ((cause.index() as u64) << 58)
        ^ var
        ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

/// The sampled who-aborted-whom edge table (see module docs).
pub struct ConflictTable {
    slots: Box<[Slot]>,
    /// Edges dropped because the table (or a probe window) was full.
    overflow: AtomicU64,
}

impl Default for ConflictTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ConflictTable {
    pub fn new() -> ConflictTable {
        ConflictTable {
            slots: (0..TABLE_SLOTS).map(|_| Slot::new()).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    /// Records one conflict `aggressor → victim` over `var`. Both ids are
    /// packed ([`pack_tx`]); an [`TX_UNKNOWN`] aggressor is skipped (no
    /// edge without a named peer).
    pub fn record(&self, aggressor: u64, victim: u64, cause: AbortCause, var: u64) {
        if aggressor == TX_UNKNOWN {
            return;
        }
        let (ap, vp) = (tx_proc(aggressor), tx_proc(victim));
        let key = edge_key(ap, vp, cause, var);
        for probe in 0..MAX_PROBES {
            let slot = &self.slots[(key as usize + probe) & (TABLE_SLOTS - 1)];
            let cur = slot.key.load(Ordering::Acquire);
            let claimed = cur == 0
                && match slot
                    .key
                    .compare_exchange(0, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => true,
                    Err(raced) if raced == key => false,
                    Err(_) => continue, // another edge won this slot
                };
            if !claimed && cur != 0 && cur != key {
                continue;
            }
            if claimed {
                slot.aggressor_proc.store(u64::from(ap), Ordering::Relaxed);
                slot.victim_proc.store(u64::from(vp), Ordering::Relaxed);
                slot.cause.store(cause.index() as u64, Ordering::Relaxed);
                slot.var.store(var, Ordering::Relaxed);
                // Publish the identity fields before the slot becomes
                // visible to `top_k` readers.
                slot.init.store(1, Ordering::Release);
            }
            slot.last_aggressor.store(aggressor, Ordering::Relaxed);
            slot.last_victim.store(victim, Ordering::Relaxed);
            slot.count.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.overflow.fetch_add(1, Ordering::Relaxed);
    }

    /// Edges dropped because the table was full.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total recorded conflicts across every edge.
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        self.for_each(|e| sum += e.count);
        sum
    }

    /// Visits every recorded edge.
    pub fn for_each(&self, mut f: impl FnMut(Edge)) {
        for slot in self.slots.iter() {
            // Pairs with the claiming thread's Release: identity fields
            // are fully written once `init` reads 1.
            if slot.init.load(Ordering::Acquire) == 0 {
                continue;
            }
            let count = slot.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            f(Edge {
                aggressor_proc: slot.aggressor_proc.load(Ordering::Relaxed) as u32,
                victim_proc: slot.victim_proc.load(Ordering::Relaxed) as u32,
                cause: ABORT_CAUSES[slot.cause.load(Ordering::Relaxed) as usize],
                var: slot.var.load(Ordering::Relaxed),
                count,
                last_aggressor: slot.last_aggressor.load(Ordering::Relaxed),
                last_victim: slot.last_victim.load(Ordering::Relaxed),
            });
        }
    }

    /// The `k` heaviest edges, descending by count (ties broken by var
    /// then aggressor for determinism).
    pub fn top_k(&self, k: usize) -> Vec<Edge> {
        let mut all = Vec::new();
        self.for_each(|e| all.push(e));
        all.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.var.cmp(&b.var))
                .then(a.aggressor_proc.cmp(&b.aggressor_proc))
        });
        all.truncate(k);
        all
    }

    /// Zeroes every edge count (slots keep their identity claims).
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.count.store(0, Ordering::Relaxed);
        }
        self.overflow.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let bits = pack_tx(5, 77);
        assert_eq!(tx_proc(bits), 5);
        assert_eq!(tx_seq(bits), 77);
        assert_ne!(bits, TX_UNKNOWN);
    }

    #[test]
    fn records_aggregate_per_edge_and_keep_last_ids() {
        let t = ConflictTable::new();
        t.record(pack_tx(1, 10), pack_tx(2, 20), AbortCause::CmArbitrated, 7);
        t.record(pack_tx(1, 11), pack_tx(2, 21), AbortCause::CmArbitrated, 7);
        t.record(pack_tx(3, 1), pack_tx(2, 22), AbortCause::LockBusy, 9);
        let top = t.top_k(4);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].count, 2);
        assert_eq!(top[0].aggressor_proc, 1);
        assert_eq!(top[0].victim_proc, 2);
        assert_eq!(top[0].cause, AbortCause::CmArbitrated);
        assert_eq!(top[0].var, 7);
        assert_eq!(top[0].last_aggressor, pack_tx(1, 11));
        assert_eq!(top[0].last_victim, pack_tx(2, 21));
        assert_eq!(top[1].count, 1);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn unknown_aggressor_records_nothing() {
        let t = ConflictTable::new();
        t.record(TX_UNKNOWN, pack_tx(2, 2), AbortCause::ReadValidation, 3);
        assert_eq!(t.total(), 0);
        assert!(t.top_k(4).is_empty());
    }

    #[test]
    fn reset_clears_counts() {
        let t = ConflictTable::new();
        t.record(pack_tx(0, 1), pack_tx(1, 1), AbortCause::CasLost, 4);
        t.reset();
        assert_eq!(t.total(), 0);
        t.record(pack_tx(0, 2), pack_tx(1, 2), AbortCause::CasLost, 4);
        assert_eq!(t.top_k(1)[0].count, 1);
    }

    #[test]
    fn concurrent_records_all_land() {
        let t = std::sync::Arc::new(ConflictTable::new());
        std::thread::scope(|s| {
            for p in 0..8u32 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..500u64 {
                        t.record(
                            pack_tx(p, i as u32),
                            pack_tx(p + 8, i as u32),
                            ABORT_CAUSES[(i % 4) as usize],
                            i % 8,
                        );
                    }
                });
            }
        });
        assert_eq!(t.total() + t.overflow(), 4000);
    }
}
