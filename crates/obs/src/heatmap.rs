//! Per-t-variable contention heatmap: *where* progress is lost.
//!
//! [`StmStats`](crate::StmStats) says how many attempts died per cause;
//! this accumulator says which t-variables they died *on*. Every
//! var-attributed abort ([`crate::StmStats::abort_at`] with
//! [`crate::VarAttr::Var`]) lands one relaxed increment in the variable's
//! per-cause counter row; [`Heatmap::top_k`] ranks the hot set.
//!
//! Layout mirrors the workspace's `VarTable`: two lazily-populated page
//! directories — a flat one for static ids (small integers) and one for
//! the dynamic region (ids at or above [`DYNAMIC_REGION_BASE`], allocated
//! contiguously from there) — so a lookup is two shifts and two loads,
//! lock-free and allocation-free once a page exists. Pages materialize on
//! first touch via `OnceLock`, so an idle STM instance costs two small
//! directories and nothing else. Ids beyond either region's capacity are
//! tallied in `overflow` rather than silently ignored.

use crate::{AbortCause, ABORT_CAUSES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// First dynamic t-variable id (`oftm_core::table::DYNAMIC_TVAR_BASE`);
/// duplicated here because this crate is a dependency-free leaf below
/// `oftm-core`.
pub const DYNAMIC_REGION_BASE: u64 = 1 << 32;

/// Variables per heatmap page.
const PAGE_SIZE: usize = 1024;
/// Pages in the static directory: static ids `0..65536` are tracked.
const STATIC_PAGES: usize = 64;
/// Pages in the dynamic directory: the first ~1M dynamic ids are tracked
/// (benches allocate dynamically from the base upward, so the hot set of
/// any bounded run lives here).
const DYN_PAGES: usize = 1024;

const CAUSES: usize = ABORT_CAUSES.len();

/// One page: a per-variable row of per-cause counters. ~48 KiB, allocated
/// only when a variable in its range first takes an attributed abort.
struct Page {
    rows: Box<[[AtomicU64; CAUSES]]>,
}

impl Page {
    fn new() -> Page {
        Page {
            rows: (0..PAGE_SIZE)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }
}

/// One ranked entry of [`Heatmap::top_k`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotVar {
    /// The t-variable id (raw word, as passed to `abort_at`).
    pub var: u64,
    /// Total attributed aborts on this variable.
    pub total: u64,
    /// Per-cause breakdown, indexed like [`ABORT_CAUSES`].
    pub by_cause: [u64; CAUSES],
}

impl HotVar {
    /// The cause with the highest count on this variable.
    pub fn dominant_cause(&self) -> AbortCause {
        let (i, _) = self
            .by_cause
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("cause array is non-empty");
        ABORT_CAUSES[i]
    }
}

/// The per-variable abort-attribution accumulator (see module docs).
pub struct Heatmap {
    static_pages: Box<[OnceLock<Page>]>,
    dyn_pages: Box<[OnceLock<Page>]>,
    /// Attributed aborts on ids outside both tracked regions.
    overflow: AtomicU64,
}

impl Default for Heatmap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heatmap {
    pub fn new() -> Heatmap {
        Heatmap {
            static_pages: (0..STATIC_PAGES).map(|_| OnceLock::new()).collect(),
            dyn_pages: (0..DYN_PAGES).map(|_| OnceLock::new()).collect(),
            overflow: AtomicU64::new(0),
        }
    }

    /// The counter row for `var`, or `None` when it falls outside both
    /// tracked regions.
    fn row(&self, var: u64) -> Option<&[AtomicU64; CAUSES]> {
        let (dir, idx) = if var < DYNAMIC_REGION_BASE {
            (&self.static_pages, var as usize)
        } else {
            (&self.dyn_pages, (var - DYNAMIC_REGION_BASE) as usize)
        };
        let page = idx / PAGE_SIZE;
        if page >= dir.len() {
            return None;
        }
        Some(&dir[page].get_or_init(Page::new).rows[idx % PAGE_SIZE])
    }

    /// Tallies one attributed abort of `cause` on `var`. Lock-free: a
    /// page lookup plus one relaxed increment (plus a one-time page
    /// allocation on the first touch of a 1024-id range).
    pub fn record(&self, var: u64, cause: AbortCause) {
        match self.row(var) {
            Some(row) => {
                row[cause.index()].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.overflow.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Attributed aborts that fell outside the tracked id regions.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total attributed aborts across every tracked variable.
    pub fn total(&self) -> u64 {
        let mut sum = 0;
        self.for_each_hot(|h| sum += h.total);
        sum
    }

    /// Visits every variable with at least one attributed abort.
    pub fn for_each_hot(&self, mut f: impl FnMut(HotVar)) {
        let mut walk = |dir: &[OnceLock<Page>], base: u64| {
            for (p, slot) in dir.iter().enumerate() {
                let Some(page) = slot.get() else { continue };
                for (r, row) in page.rows.iter().enumerate() {
                    let by_cause: [u64; CAUSES] =
                        std::array::from_fn(|c| row[c].load(Ordering::Relaxed));
                    let total: u64 = by_cause.iter().sum();
                    if total > 0 {
                        f(HotVar {
                            var: base + (p * PAGE_SIZE + r) as u64,
                            total,
                            by_cause,
                        });
                    }
                }
            }
        };
        walk(&self.static_pages, 0);
        walk(&self.dyn_pages, DYNAMIC_REGION_BASE);
    }

    /// The `k` hottest variables, descending by total attributed aborts
    /// (ties broken by id for determinism).
    pub fn top_k(&self, k: usize) -> Vec<HotVar> {
        let mut all = Vec::new();
        self.for_each_hot(|h| all.push(h));
        all.sort_by(|a, b| b.total.cmp(&a.total).then(a.var.cmp(&b.var)));
        all.truncate(k);
        all
    }

    /// Zeroes every allocated counter (pages stay allocated). Benches
    /// call this at the start of a measured phase so a cell's table is
    /// net of warmup.
    pub fn reset(&self) {
        let clear = |dir: &[OnceLock<Page>]| {
            for slot in dir {
                let Some(page) = slot.get() else { continue };
                for row in page.rows.iter() {
                    for c in row {
                        c.store(0, Ordering::Relaxed);
                    }
                }
            }
        };
        clear(&self.static_pages);
        clear(&self.dyn_pages);
        self.overflow.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ranks_hot_vars() {
        let h = Heatmap::new();
        for _ in 0..5 {
            h.record(7, AbortCause::ReadValidation);
        }
        for _ in 0..3 {
            h.record(7, AbortCause::LockBusy);
        }
        h.record(9, AbortCause::CasLost);
        h.record(DYNAMIC_REGION_BASE + 17, AbortCause::CmArbitrated);
        h.record(DYNAMIC_REGION_BASE + 17, AbortCause::CmArbitrated);

        let top = h.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].var, 7);
        assert_eq!(top[0].total, 8);
        assert_eq!(top[0].dominant_cause(), AbortCause::ReadValidation);
        assert_eq!(top[1].var, DYNAMIC_REGION_BASE + 17);
        assert_eq!(top[1].total, 2);
        assert_eq!(h.total(), 11);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_region_ids_land_in_overflow_not_silence() {
        let h = Heatmap::new();
        h.record((STATIC_PAGES * PAGE_SIZE) as u64 + 1, AbortCause::LockBusy);
        h.record(u64::MAX - 3, AbortCause::LockBusy);
        assert_eq!(h.overflow(), 2);
        assert!(h.top_k(8).is_empty());
    }

    #[test]
    fn reset_zeroes_counts() {
        let h = Heatmap::new();
        h.record(3, AbortCause::ReadValidation);
        h.record(u64::MAX, AbortCause::ReadValidation);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.top_k(4).is_empty());
        // Still usable after a reset.
        h.record(3, AbortCause::LockBusy);
        assert_eq!(h.top_k(1)[0].total, 1);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Heatmap::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(i % 16 + t * 2048, AbortCause::ReadValidation);
                    }
                });
            }
        });
        assert_eq!(h.total(), 8000);
    }
}
