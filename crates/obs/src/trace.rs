//! Transaction timelines: the event ring rendered as a Chrome-trace /
//! Perfetto JSON file, so a contended run opens directly in
//! `chrome://tracing` (or ui.perfetto.dev).
//!
//! Span-structured records come from [`crate::ring::emit_span`] — attempt
//! spans from the retry loops, park spans from the async runtime,
//! migration-barrier spans from the hybrid — and instants from
//! [`crate::ring::emit`]: every abort carries its cause and the
//! t-variable it was attributed to ([`crate::StmStats::abort_at`] emits
//! them), commits and budget exhaustions ride along. The mapping:
//!
//! * `dur > 0` → a `"ph": "X"` complete event (one slice on the emitting
//!   thread's track, `ts`/`dur` in microseconds);
//! * `dur == 0` → a `"ph": "i"` thread-scoped instant;
//! * `kind == "abort"` instants additionally carry `"cause"` (the abort
//!   cause name, stashed in the event's `stm` field by `abort_at`) and
//!   `"var"` (`"none"` for [`crate::VarAttr::NoVar`] attributions) in
//!   `args` — the properties the CI trace validator (`check_trace`)
//!   demands of every abort.
//!
//! One event per line, so dependency-free line-oriented tooling (the
//! validator, grep) can parse the file without a JSON library.

use crate::ring::{self, Drained, TxEvent};

/// Sentinel `a`-word of an `"abort"` event whose site passed
/// [`crate::VarAttr::NoVar`] — rendered as `"var": "none"`.
pub const NO_VAR: u64 = u64::MAX;

fn event_json(e: &TxEvent) -> String {
    let ts = e.nanos as f64 / 1000.0;
    let tid = e.thread;
    if e.dur > 0 {
        let dur = e.dur as f64 / 1000.0;
        format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {ts:.3}, \
             \"dur\": {dur:.3}, \"pid\": 0, \"tid\": {tid}, \
             \"args\": {{\"a\": {}, \"b\": {}}}}}",
            e.kind, e.stm, e.a, e.b
        )
    } else if e.kind == "abort" {
        let var = if e.a == NO_VAR {
            "\"none\"".to_string()
        } else {
            e.a.to_string()
        };
        format!(
            "{{\"name\": \"abort\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {ts:.3}, \"pid\": 0, \"tid\": {tid}, \
             \"args\": {{\"cause\": \"{}\", \"var\": {var}, \"victim\": {}}}}}",
            e.stm, e.stm, e.b
        )
    } else {
        format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
             \"ts\": {ts:.3}, \"pid\": 0, \"tid\": {tid}, \
             \"args\": {{\"a\": {}, \"b\": {}}}}}",
            e.kind, e.stm, e.a, e.b
        )
    }
}

/// Renders a drained ring batch as a Chrome-trace JSON document.
pub fn chrome_json(d: &Drained) -> String {
    let mut s = String::from("{\"traceEvents\": [\n");
    for (i, e) in d.events.iter().enumerate() {
        s.push_str(&event_json(e));
        s.push_str(if i + 1 == d.events.len() { "\n" } else { ",\n" });
    }
    s.push_str("], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": ");
    s.push_str(&d.dropped.to_string());
    s.push_str("}}\n");
    s
}

/// Drains every thread's event ring and writes the batch to `path` as
/// Chrome-trace JSON. Returns the number of events exported.
pub fn export_chrome(path: &str) -> std::io::Result<usize> {
    let d = ring::drain();
    std::fs::write(path, chrome_json(&d))?;
    Ok(d.events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(nanos: u64, thread: u64, kind: &'static str, stm: &'static str, dur: u64) -> TxEvent {
        TxEvent {
            nanos,
            thread,
            kind,
            stm,
            a: 42,
            b: 7,
            dur,
        }
    }

    #[test]
    fn spans_render_as_complete_events() {
        let d = Drained {
            events: vec![ev(2000, 3, "attempt", "tl2", 1500)],
            dropped: 0,
            dropped_by_thread: vec![],
        };
        let j = chrome_json(&d);
        assert!(j.contains("\"ph\": \"X\""), "{j}");
        assert!(j.contains("\"ts\": 2.000"), "{j}");
        assert!(j.contains("\"dur\": 1.500"), "{j}");
        assert!(j.contains("\"tid\": 3"), "{j}");
        assert!(j.starts_with("{\"traceEvents\": ["), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn aborts_render_as_instants_with_cause_and_var() {
        let mut e = ev(500, 1, "abort", "read_validation", 0);
        e.a = 17;
        e.b = crate::conflict::pack_tx(2, 9);
        let d = Drained {
            events: vec![e],
            dropped: 0,
            dropped_by_thread: vec![],
        };
        let j = chrome_json(&d);
        assert!(j.contains("\"ph\": \"i\""), "{j}");
        assert!(j.contains("\"cause\": \"read_validation\""), "{j}");
        assert!(j.contains("\"var\": 17"), "{j}");
    }

    #[test]
    fn novar_aborts_carry_the_explicit_marker() {
        let mut e = ev(500, 1, "abort", "budget_exhausted", 0);
        e.a = NO_VAR;
        let d = Drained {
            events: vec![e],
            dropped: 0,
            dropped_by_thread: vec![],
        };
        let j = chrome_json(&d);
        assert!(j.contains("\"var\": \"none\""), "{j}");
    }

    #[test]
    fn dropped_count_is_surfaced() {
        let d = Drained {
            events: vec![ev(1, 0, "commit", "tl", 0)],
            dropped: 12,
            dropped_by_thread: vec![(0, 12)],
        };
        assert!(chrome_json(&d).contains("\"dropped_events\": 12"));
    }
}
