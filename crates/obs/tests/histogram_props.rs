//! Property tests for the log2 latency histograms: percentile extraction
//! agrees with a sorted reference at bucket resolution, and merging
//! per-shard snapshots reproduces the global snapshot exactly.
//!
//! A failing case prints `PROPTEST_SEED=…` for exact replay (the shim has
//! no shrinking; seeds replay instead).

use oftm_obs::{bucket_ceiling, bucket_of, StatsSnapshot, StmStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Nearest-rank percentile out of the histogram lands in exactly the
    /// bucket of the nearest-rank sample of the sorted reference, and the
    /// reported upper bound actually bounds it.
    #[test]
    fn percentiles_match_sorted_reference(samples in proptest::collection::vec(0u64..2_000_000_000, 1..300)) {
        let stats = StmStats::new();
        for &s in &samples {
            stats.record_attempt_ns(s);
        }
        let hist = stats.snapshot().attempt_ns;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &p in &[50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            let reference = sorted[rank.min(sorted.len()) - 1];
            let bucket = hist.percentile_bucket(p).expect("non-empty");
            prop_assert_eq!(bucket, bucket_of(reference),
                "p{} bucket mismatch: reference {}", p, reference);
            prop_assert_eq!(hist.percentile(p), bucket_ceiling(bucket));
            prop_assert!(hist.percentile(p) >= reference);
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
    }

    /// merge(shard snapshots) == global snapshot: recording from many
    /// threads (threads map round-robin onto shards) must never lose or
    /// double-count a sample.
    #[test]
    fn shard_merge_equals_global(per_thread in proptest::collection::vec(
        proptest::collection::vec(0u64..1_000_000, 0..40), 1..6)) {
        let stats = StmStats::new();
        std::thread::scope(|s| {
            for chunk in &per_thread {
                let stats = &stats;
                s.spawn(move || {
                    for &v in chunk {
                        stats.record_attempt_ns(v);
                        stats.record_commit_cs_ns(v / 2);
                        stats.incr(oftm_obs::Counter::Begins);
                    }
                });
            }
        });
        let global = stats.snapshot();
        let mut merged = StatsSnapshot::default();
        for shard in stats.shard_snapshots() {
            merged.merge(&shard);
        }
        prop_assert_eq!(&merged, &global);
        let total: u64 = per_thread.iter().map(|c| c.len() as u64).sum();
        prop_assert_eq!(global.attempt_ns.count(), total);
        prop_assert_eq!(global.get(oftm_obs::Counter::Begins), total);
    }
}
