//! Negative oracles for the checkers: hand-written histories that violate
//! each safety/liveness property, which the corresponding checker MUST
//! reject. These complement the proptests (which mostly certify
//! known-good histories) by pinning down the checkers' discriminating
//! power — a checker that accepts everything would pass every proptest
//! that only feeds it legal histories.

use oftm_histories::{
    check_eventual_ic_of, check_ic_of, check_of, check_strict_dap, conflict_serializable,
    final_state_opaque, serializable, well_formed, Access, BaseObjId, HistoryBuilder, OpacityCheck,
    ProcId, SerCheck, TVarId, TmOp, TxId,
};

fn t(p: u32, k: u32) -> TxId {
    TxId::new(p, k)
}
const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

/// Classic lost update: both transactions read x = 0, both write x = 1,
/// both commit. In any serial order the second transaction must read 1,
/// so no legal serialization exists — and the conflict graph has a cycle.
#[test]
fn lost_update_rejected_by_both_serializability_checkers() {
    let mut b = HistoryBuilder::new();
    b.read(t(1, 0), X, 0);
    b.read(t(2, 0), X, 0);
    b.write(t(1, 0), X, 1);
    b.commit(t(1, 0));
    b.write(t(2, 0), X, 1);
    b.commit(t(2, 0));
    let h = b.build();
    assert!(
        well_formed(&h).is_ok(),
        "oracle history must be well-formed"
    );
    assert_eq!(
        serializable(&h, 12),
        SerCheck::NotSerializable,
        "lost update must not be exactly serializable"
    );
    assert!(
        !conflict_serializable(&h),
        "r-w/r-w cycle must not be conflict-serializable"
    );
}

/// A committed transaction that read a value nobody ever wrote: there is
/// no serial replay producing it.
#[test]
fn fabricated_read_value_rejected() {
    let mut b = HistoryBuilder::new();
    b.read(t(1, 0), X, 42);
    b.commit(t(1, 0));
    let h = b.build();
    assert_eq!(serializable(&h, 12), SerCheck::NotSerializable);
    assert!(!final_state_opaque(&h, 12).is_opaque());
}

/// Write skew across two variables: T1 reads x,y then writes y; T2 reads
/// x,y then writes x; both commit having read the initial snapshot. Every
/// serial order makes the later transaction's read stale.
#[test]
fn write_skew_rejected() {
    let mut b = HistoryBuilder::new();
    b.read(t(1, 0), X, 0).read(t(1, 0), Y, 0);
    b.read(t(2, 0), X, 0).read(t(2, 0), Y, 0);
    b.write(t(1, 0), Y, 7).commit(t(1, 0));
    b.write(t(2, 0), X, 9).commit(t(2, 0));
    let h = b.build();
    // Serial T1;T2 forces T2 to read y = 7; serial T2;T1 forces T1 to
    // read x = 9. Neither matches, and the conflict graph is cyclic.
    assert_eq!(serializable(&h, 12), SerCheck::NotSerializable);
    assert!(!conflict_serializable(&h));
}

/// Dirty read: T2 commits a value that T1 wrote and then rolled back.
#[test]
fn dirty_read_of_aborted_writer_rejected() {
    let mut b = HistoryBuilder::new();
    b.write(t(1, 0), X, 5);
    b.read(t(2, 0), X, 5);
    b.abort(t(1, 0));
    b.commit(t(2, 0));
    let h = b.build();
    assert_eq!(
        serializable(&h, 12),
        SerCheck::NotSerializable,
        "a committed read of an aborted write has no serial justification"
    );
    assert!(!final_state_opaque(&h, 12).is_opaque());
}

/// The opacity-specific case: the COMMITTED part is perfectly serializable
/// (only T1 commits), but an *aborted* transaction observed a torn
/// snapshot (x before T1's writes, y after). Serializability of committed
/// transactions cannot see this; final-state opacity must.
#[test]
fn torn_snapshot_in_aborted_tx_rejected_by_opacity_only() {
    let mut b = HistoryBuilder::new();
    b.read(t(2, 0), X, 0); // T2 starts reading the initial state
    b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1);
    b.commit(t(1, 0));
    b.read(t(2, 0), Y, 1); // …and finishes after T1: x=0 but y=1
    b.aborted_op(t(2, 0), TmOp::TryCommit);
    let h = b.build();
    let op = final_state_opaque(&h, 12);
    assert!(
        matches!(op, OpacityCheck::NotOpaque),
        "aborted transaction saw a torn snapshot; got {op:?}"
    );
    // The committed projection (T1 alone) is still serializable: this is
    // exactly the gap between serializability and opacity.
    assert!(!matches!(serializable(&h, 12), SerCheck::NotSerializable));
}

/// Definition 2 negative: a forceful abort with zero step contention.
#[test]
fn forceful_abort_without_any_contention_rejected_by_of() {
    let mut b = HistoryBuilder::new();
    b.read(t(1, 0), X, 0);
    b.aborted_op(t(1, 0), TmOp::TryCommit);
    let h = b.build();
    let v = check_of(&h);
    assert_eq!(v.len(), 1, "expected exactly one Definition 2 violation");
    assert_eq!(v[0].tx, t(1, 0));
    // With no concurrent transaction at all, ic-OF (Definition 3) and even
    // eventual ic-OF (Definition 4) must reject too.
    assert_eq!(check_ic_of(&h).len(), 1);
    assert!(check_eventual_ic_of(&h).is_err());
}

/// Strict-DAP negative (Definition 12): two transactions over DISJOINT
/// t-variable sets that nevertheless conflict on a shared base object.
#[test]
fn disjoint_txs_contending_on_base_object_rejected_by_strict_dap() {
    let mut b = HistoryBuilder::new();
    let hot = BaseObjId(99);
    b.read(t(1, 0), X, 0);
    b.step(ProcId(1), Some(t(1, 0)), hot, Access::Modify);
    b.read(t(2, 0), Y, 0);
    b.step(ProcId(2), Some(t(2, 0)), hot, Access::Modify);
    b.commit(t(1, 0));
    b.commit(t(2, 0));
    let h = b.build();
    let v = check_strict_dap(&h);
    assert_eq!(v.len(), 1, "expected one strict-DAP violation: {v:?}");
    assert_eq!(v[0].obj, hot);
    // Same accesses through DIFFERENT base objects: no violation.
    let mut b2 = HistoryBuilder::new();
    b2.read(t(1, 0), X, 0);
    b2.step(ProcId(1), Some(t(1, 0)), BaseObjId(1), Access::Modify);
    b2.read(t(2, 0), Y, 0);
    b2.step(ProcId(2), Some(t(2, 0)), BaseObjId(2), Access::Modify);
    b2.commit(t(1, 0));
    b2.commit(t(2, 0));
    assert!(check_strict_dap(&b2.build()).is_empty());
}

/// Ill-formed history: an operation after the transaction committed. The
/// well-formedness gate must reject it before any checker runs.
#[test]
fn op_after_commit_rejected_by_well_formedness() {
    let mut b = HistoryBuilder::new();
    b.write(t(1, 0), X, 1);
    b.commit(t(1, 0));
    b.read(t(1, 0), X, 1); // zombie operation
    let h = b.build();
    assert!(well_formed(&h).is_err());
}
