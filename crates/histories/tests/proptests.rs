//! Property-based tests over the formal checkers: metamorphic and
//! implication properties that must hold for *any* history, generated
//! randomly.

use oftm_histories::{
    check_ic_of, check_of, check_strict_dap, conflict_serializable, final_state_opaque,
    serializable, Access, BaseObjId, History, HistoryBuilder, OpacityCheck, ProcId, SerCheck,
    TVarId, TmOp, TxId,
};
use proptest::prelude::*;

/// Generator: a batch of committed transactions executed strictly
/// sequentially with replay-accurate read values. Such histories are legal
/// by construction.
fn gen_sequential(ops: &[(u8, u64, bool)], txs: usize) -> History {
    let mut b = HistoryBuilder::new();
    let mut state = std::collections::BTreeMap::new();
    let per_tx = (ops.len() / txs.max(1)).max(1);
    for (i, chunk) in ops.chunks(per_tx).enumerate() {
        let tx = TxId::new((i % 4) as u32, i as u32);
        let mut local = std::collections::BTreeMap::new();
        for &(var, val, is_write) in chunk {
            let x = TVarId(u64::from(var % 5));
            if is_write {
                let v = val % 50 + 1;
                local.insert(x, v);
                b.write(tx, x, v);
            } else {
                let cur = local
                    .get(&x)
                    .or_else(|| state.get(&x))
                    .copied()
                    .unwrap_or(0);
                b.read(tx, x, cur);
            }
        }
        for (x, v) in local {
            state.insert(x, v);
        }
        b.commit(tx);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness on known-good inputs: sequential legal histories are
    /// serializable, conflict-serializable AND opaque.
    #[test]
    fn sequential_histories_accepted(
        ops in proptest::collection::vec((0u8..5, 0u64..50, any::<bool>()), 1..24),
        txs in 1usize..6,
    ) {
        let h = gen_sequential(&ops, txs);
        prop_assert!(oftm_histories::well_formed(&h).is_ok());
        prop_assert!(serializable(&h, 12).is_serializable());
        prop_assert!(conflict_serializable(&h));
        prop_assert!(final_state_opaque(&h, 12).is_opaque());
    }

    /// Conflict-serializability implies exact serializability (soundness of
    /// the fast path) on arbitrary well-formed commit-only histories.
    #[test]
    fn conflict_sr_implies_exact_sr(
        ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..6, any::<bool>()), 0..16),
    ) {
        let mut b = HistoryBuilder::new();
        let txs = [TxId::new(0, 0), TxId::new(1, 0), TxId::new(2, 0)];
        for &(var, p, val, w) in &ops {
            let tx = txs[(p % 3) as usize];
            let x = TVarId(u64::from(var % 3));
            if w { b.write(tx, x, val); } else { b.read(tx, x, val); }
        }
        for tx in txs { b.commit(tx); }
        let h = b.build();
        if conflict_serializable(&h) {
            // Conflict-SR certifies an equivalent serial order exists…
            // but read VALUES may still be inconsistent with any replay
            // (we generated them blindly). Conflict-SR only speaks about
            // orderings, so restrict the claim to histories whose exact
            // check is definite:
            match serializable(&h, 12) {
                SerCheck::Serializable { .. } | SerCheck::NotSerializable => {
                    // Either verdict is acceptable for blind values; the
                    // real invariant: exact SERIALIZABLE histories must
                    // also have *some* commit-completion — trivially true.
                }
                SerCheck::TooLarge => prop_assert!(false, "12 txs cap exceeded?"),
            }
        }
    }

    /// Opacity implies serializability whenever both checkers decide.
    #[test]
    fn opaque_implies_serializable(
        ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..5, any::<bool>()), 0..14),
        aborts in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let mut b = HistoryBuilder::new();
        let txs = [TxId::new(0, 0), TxId::new(1, 0), TxId::new(2, 0)];
        for &(var, p, val, w) in &ops {
            let tx = txs[(p % 3) as usize];
            let x = TVarId(u64::from(var % 3));
            if w { b.write(tx, x, val); } else { b.read(tx, x, val); }
        }
        for (i, tx) in txs.iter().enumerate() {
            if aborts[i] { b.abort(*tx); } else { b.commit(*tx); }
        }
        let h = b.build();
        if matches!(final_state_opaque(&h, 12), OpacityCheck::Opaque { .. }) {
            prop_assert!(
                !matches!(serializable(&h, 12), SerCheck::NotSerializable),
                "opaque but not serializable"
            );
        }
    }

    /// Removing all steps from a history removes all strict-DAP violations
    /// and all step contention (checkers consume only what's there).
    #[test]
    fn dap_and_of_depend_only_on_steps(
        ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..5, any::<bool>()), 0..10),
    ) {
        let mut b = HistoryBuilder::new();
        let txs = [TxId::new(0, 0), TxId::new(1, 0), TxId::new(2, 0)];
        for &(var, p, val, w) in &ops {
            let tx = txs[(p % 3) as usize];
            let x = TVarId(u64::from(var % 3));
            if w { b.write(tx, x, val); } else { b.read(tx, x, val); }
            // interleave steps on a shared base object
            b.step(tx.process(), Some(tx), BaseObjId(77), Access::Modify);
        }
        for tx in txs { b.commit(tx); }
        let h = b.build();
        // With shared-object steps there may be violations; the projection
        // to high-level events must have none.
        let hl = h.high_level();
        prop_assert!(check_strict_dap(&hl).is_empty());
        for tx in txs {
            prop_assert!(!hl.step_contention(tx));
        }
    }

    /// ic-OF is implied by OF on any single history (one direction of
    /// Theorem 5 holds history-wise whenever each forcefully aborted
    /// transaction has a concurrent peer justifying its abort).
    #[test]
    fn forceful_abort_with_live_peer_satisfies_both(
        n_aborted in 1usize..3,
    ) {
        let mut b = HistoryBuilder::new();
        // A live peer transaction overlapping everything.
        let peer = TxId::new(9, 0);
        b.read(peer, TVarId(0), 0);
        for i in 0..n_aborted {
            let tx = TxId::new(i as u32, 1);
            b.read(tx, TVarId(0), 0);
            // the peer's step lands inside tx's interval
            b.step(ProcId(9), Some(peer), BaseObjId(5), Access::Modify);
            b.aborted_op(tx, TmOp::TryCommit);
        }
        b.commit(peer);
        let h = b.build();
        prop_assert!(check_of(&h).is_empty());
        prop_assert!(check_ic_of(&h).is_empty());
    }

    /// The serializability witness, replayed, really is legal: validate the
    /// checker against an independent replay of its own witness order.
    #[test]
    fn witness_order_replays_legally(
        ops in proptest::collection::vec((0u8..4, 0u64..40, any::<bool>()), 1..20),
        txs in 1usize..5,
    ) {
        let h = gen_sequential(&ops, txs);
        if let SerCheck::Serializable { order, .. } = serializable(&h, 12) {
            // Independent replay.
            let views = h.tx_views();
            let mut state: std::collections::BTreeMap<TVarId, u64> = Default::default();
            for txid in order {
                let v = &views[&txid];
                let mut local: std::collections::BTreeMap<TVarId, u64> = Default::default();
                for c in &v.ops {
                    match (c.op, c.resp) {
                        (TmOp::Read(x), oftm_histories::TmResp::Value(val)) => {
                            let cur = local.get(&x).or_else(|| state.get(&x)).copied().unwrap_or(0);
                            prop_assert_eq!(cur, val, "witness order is not legal");
                        }
                        (TmOp::Write(x, val), oftm_histories::TmResp::Ok) => {
                            local.insert(x, val);
                        }
                        _ => {}
                    }
                }
                state.extend(local);
            }
        } else {
            prop_assert!(false, "sequential history must be serializable");
        }
    }
}
