//! Opacity checking (the safety property of \[15\], used in Appendix B).
//!
//! Opacity strengthens serializability (Definition 1) in two ways:
//!
//! 1. the serialization order must preserve the *real-time* order of
//!    transactions, and
//! 2. *every* transaction — including aborted and still-live ones — must
//!    observe a consistent state of the system.
//!
//! The normative checker here is [`final_state_opaque`] (existence of a
//! real-time-respecting total order in which committed transactions replay
//! legally and aborted/live transactions read consistently), and
//! [`opaque`], which additionally requires every prefix to be final-state
//! opaque — the standard prefix-closure formulation of opacity.
//!
//! [`OpacityGraph`] mirrors the graph representation `OPG(H', ≪, V)` used
//! by the paper's Appendix B proof: vertices are transactions (labelled
//! `vis` when their updates are visible), edges are labelled `Lrt`
//! (real-time order), `Lrf` (reads-from) and `Lrw` (anti-dependency). The
//! graph is acyclic for exactly the orders the search finds; it is exposed
//! for rendering witnesses in the experiment binaries.

use crate::event::{TmOp, TmResp};
use crate::history::{History, TxStatus, TxView};
use crate::ids::{TVarId, TxId, Value};
use crate::serializability::{TxProgram, INITIAL_VALUE};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// Result of an opacity check, with a witness order when positive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpacityCheck {
    /// Opaque; `order` is a witness serialization of all transactions and
    /// `visible` the set whose updates take effect (committed ∪ promoted
    /// commit-pending).
    Opaque {
        order: Vec<TxId>,
        visible: Vec<TxId>,
    },
    NotOpaque,
    TooLarge,
}

impl OpacityCheck {
    pub fn is_opaque(&self) -> bool {
        matches!(self, OpacityCheck::Opaque { .. })
    }
}

/// Replays `prog` read-only against `state` (own writes buffered locally,
/// never published). Returns true iff all reads are consistent.
fn replay_invisible(prog: &TxProgram, state: &BTreeMap<TVarId, Value>) -> bool {
    let mut local: BTreeMap<TVarId, Value> = BTreeMap::new();
    for c in &prog.ops {
        match (c.op, c.resp) {
            (TmOp::Read(x), TmResp::Value(v)) => {
                let cur = local
                    .get(&x)
                    .or_else(|| state.get(&x))
                    .copied()
                    .unwrap_or(INITIAL_VALUE);
                if cur != v {
                    return false;
                }
            }
            (TmOp::Write(x, v), TmResp::Ok) => {
                local.insert(x, v);
            }
            _ => {}
        }
    }
    true
}

struct OpacitySearch {
    programs: Vec<TxProgram>,
    status: Vec<TxStatus>,
    /// preds[i] = bitmask of transactions that must be placed before i
    /// (real-time order).
    preds: Vec<u64>,
    full: u64,
    visited: HashSet<(u64, u64, u64)>,
}

impl OpacitySearch {
    fn fingerprint(state: &BTreeMap<TVarId, Value>) -> u64 {
        let mut h = DefaultHasher::new();
        for (k, v) in state {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        h.finish()
    }

    /// DFS over placements. `vis_mask` records which placed transactions
    /// were treated as visible (matters only for commit-pending ones).
    fn dfs(
        &mut self,
        mask: u64,
        vis_mask: u64,
        state: &mut BTreeMap<TVarId, Value>,
        order: &mut Vec<usize>,
        visible: &mut Vec<usize>,
    ) -> bool {
        if mask == self.full {
            return true;
        }
        let fp = Self::fingerprint(state);
        if !self.visited.insert((mask, vis_mask & mask, fp)) {
            return false;
        }
        for i in 0..self.programs.len() {
            let bit = 1u64 << i;
            if mask & bit != 0 || self.preds[i] & !mask != 0 {
                continue;
            }
            let choices: &[bool] = match self.status[i] {
                TxStatus::Committed => &[true],
                TxStatus::Aborted | TxStatus::Live => &[false],
                TxStatus::CommitPending => &[true, false],
            };
            for &as_visible in choices {
                if as_visible {
                    let snapshot = state.clone();
                    if self.programs[i].replay(state) {
                        order.push(i);
                        visible.push(i);
                        if self.dfs(mask | bit, vis_mask | bit, state, order, visible) {
                            return true;
                        }
                        visible.pop();
                        order.pop();
                    }
                    *state = snapshot;
                } else if replay_invisible(&self.programs[i], state) {
                    order.push(i);
                    if self.dfs(mask | bit, vis_mask, state, order, visible) {
                        return true;
                    }
                    order.pop();
                }
            }
        }
        false
    }
}

/// Checks final-state opacity of `h` exactly; exponential, bounded by
/// `max_exact` transactions.
pub fn final_state_opaque(h: &History, max_exact: usize) -> OpacityCheck {
    let views: Vec<TxView> = h.tx_views().into_values().collect();
    let n = views.len();
    if n > max_exact || n > 60 {
        return OpacityCheck::TooLarge;
    }
    if n == 0 {
        return OpacityCheck::Opaque {
            order: Vec::new(),
            visible: Vec::new(),
        };
    }

    let mut preds = vec![0u64; n];
    for (i, vi) in views.iter().enumerate() {
        for (j, vj) in views.iter().enumerate() {
            if i != j && vj.status.is_completed() && vj.last_event < vi.first_event {
                preds[i] |= 1 << j;
            }
        }
    }

    let mut search = OpacitySearch {
        programs: views.iter().map(TxProgram::from_view).collect(),
        status: views.iter().map(|v| v.status).collect(),
        preds,
        full: if n == 64 { u64::MAX } else { (1u64 << n) - 1 },
        visited: HashSet::new(),
    };
    let mut state = BTreeMap::new();
    let mut order = Vec::new();
    let mut visible = Vec::new();
    if search.dfs(0, 0, &mut state, &mut order, &mut visible) {
        OpacityCheck::Opaque {
            order: order.into_iter().map(|i| views[i].id).collect(),
            visible: visible.into_iter().map(|i| views[i].id).collect(),
        }
    } else {
        OpacityCheck::NotOpaque
    }
}

/// Full opacity: every prefix of `h` (ending at each response event) is
/// final-state opaque. Quadratic in history length times the cost of
/// [`final_state_opaque`]; intended for small histories and the simulator.
pub fn opaque(h: &History, max_exact: usize) -> OpacityCheck {
    let events = h.events();
    let mut last = OpacityCheck::Opaque {
        order: Vec::new(),
        visible: Vec::new(),
    };
    for end in 0..=events.len() {
        if end < events.len() && !matches!(events[end].event, crate::event::Event::Respond { .. }) {
            continue;
        }
        let prefix = History::from_events(events[..end].iter().map(|te| te.event).collect());
        match final_state_opaque(&prefix, max_exact) {
            OpacityCheck::Opaque { order, visible } => {
                last = OpacityCheck::Opaque { order, visible };
            }
            other => return other,
        }
    }
    last
}

/// Edge labels of the opacity graph (Appendix B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpgEdge {
    /// `T_i ≺_H T_k`: real-time order.
    Lrt,
    /// `T_k` reads some t-variable from `T_i`.
    Lrf,
    /// Anti-dependency through the order `≪`.
    Lrw,
    /// Write-write order through `≪`.
    Lww,
}

/// The opacity graph `OPG(H', ≪, V)` for a given visible set and order.
#[derive(Clone, Debug, Default)]
pub struct OpacityGraph {
    /// Vertices with their `vis` label.
    pub vertices: BTreeMap<TxId, bool>,
    /// Labelled edges.
    pub edges: BTreeSet<(TxId, TxId, u8)>,
}

impl OpacityGraph {
    fn edge_code(e: OpgEdge) -> u8 {
        match e {
            OpgEdge::Lrt => 0,
            OpgEdge::Lrf => 1,
            OpgEdge::Lrw => 2,
            OpgEdge::Lww => 3,
        }
    }

    /// Builds the graph for history `h`, visible set `visible`, using
    /// reads-from resolved by written values (callers should use workloads
    /// with distinct written values for unambiguous `Lrf` edges — all our
    /// generators do).
    pub fn build(h: &History, visible: &[TxId]) -> Self {
        let views = h.tx_views();
        let vis: BTreeSet<TxId> = visible.iter().copied().collect();
        let mut g = OpacityGraph::default();
        for v in views.values() {
            g.vertices
                .insert(v.id, vis.contains(&v.id) || v.status == TxStatus::Committed);
        }
        // Lrt edges.
        for a in views.values() {
            for b in views.values() {
                if a.id != b.id && a.status.is_completed() && a.last_event < b.first_event {
                    g.edges.insert((a.id, b.id, Self::edge_code(OpgEdge::Lrt)));
                }
            }
        }
        // Lrf edges: T_k reads value v of x; the writer of (x, v) among
        // visible transactions is its source.
        let mut writers: BTreeMap<(TVarId, Value), TxId> = BTreeMap::new();
        for v in views.values() {
            if !g.vertices[&v.id] {
                continue;
            }
            for c in &v.ops {
                if let (TmOp::Write(x, val), TmResp::Ok) = (c.op, c.resp) {
                    writers.insert((x, val), v.id);
                }
            }
        }
        for v in views.values() {
            for c in &v.ops {
                if let (TmOp::Read(x), TmResp::Value(val)) = (c.op, c.resp) {
                    if val == INITIAL_VALUE {
                        continue;
                    }
                    if let Some(&w) = writers.get(&(x, val)) {
                        if w != v.id {
                            g.edges.insert((w, v.id, Self::edge_code(OpgEdge::Lrf)));
                        }
                    }
                }
            }
        }
        g
    }

    /// Adds the order-dependent `Lrw`/`Lww` edges induced by a candidate
    /// serialization order `order` and returns whether the graph is
    /// consistent with (i.e. acyclic under) that order.
    pub fn acyclic_under(&self, order: &[TxId]) -> bool {
        let pos: BTreeMap<TxId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        self.edges
            .iter()
            .all(|(a, b, _)| match (pos.get(a), pos.get(b)) {
                (Some(pa), Some(pb)) => pa < pb,
                _ => true,
            })
    }

    /// True iff the fixed (order-independent) edges form an acyclic graph.
    pub fn acyclic(&self) -> bool {
        let mut indeg: BTreeMap<TxId, usize> = self.vertices.keys().map(|&k| (k, 0)).collect();
        let mut succ: BTreeMap<TxId, Vec<TxId>> = BTreeMap::new();
        let mut seen_pairs = BTreeSet::new();
        for (a, b, _) in &self.edges {
            if seen_pairs.insert((*a, *b)) {
                succ.entry(*a).or_default().push(*b);
                *indeg.entry(*b).or_insert(0) += 1;
            }
        }
        let mut q: Vec<TxId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        let mut n = 0;
        while let Some(t) = q.pop() {
            n += 1;
            for s in succ.get(&t).cloned().unwrap_or_default() {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    q.push(s);
                }
            }
        }
        n == self.vertices.len()
    }

    /// Renders the graph in DOT-ish text for experiment output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (t, vis) in &self.vertices {
            let _ = writeln!(s, "  {t} [{}]", if *vis { "vis" } else { "¬vis" });
        }
        for (a, b, code) in &self.edges {
            let lbl = match code {
                0 => "Lrt",
                1 => "Lrf",
                2 => "Lrw",
                _ => "Lww",
            };
            let _ = writeln!(s, "  {a} -> {b} [{lbl}]");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn t(p: u32, k: u32) -> TxId {
        TxId::new(p, k)
    }
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn empty_opaque() {
        assert!(final_state_opaque(&History::new(), 16).is_opaque());
        assert!(opaque(&History::new(), 16).is_opaque());
    }

    #[test]
    fn serial_committed_opaque() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).commit(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        assert!(opaque(&h, 16).is_opaque());
    }

    #[test]
    fn real_time_order_enforced() {
        // T1 completes reading x=5 before T2 (the writer of 5) even starts:
        // serializable (reorder allowed) but NOT opaque (real-time
        // violated).
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 5).commit(t(1, 0));
        b.write(t(2, 0), X, 5).commit(t(2, 0));
        let h = b.build();
        assert!(crate::serializability::serializable(&h, 16).is_serializable());
        assert_eq!(final_state_opaque(&h, 16), OpacityCheck::NotOpaque);
    }

    #[test]
    fn aborted_tx_must_read_consistently() {
        // Committed T1 sets x=1, y=1 (serially before the reader starts).
        // Aborted T2 reads x=1 but y=0: an inconsistent snapshot. The
        // history is serializable (T2 is aborted, doesn't matter) but not
        // opaque.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1).commit(t(1, 0));
        b.read(t(2, 0), X, 1).read(t(2, 0), Y, 0).abort(t(2, 0));
        let h = b.build();
        assert!(crate::serializability::serializable(&h, 16).is_serializable());
        assert_eq!(final_state_opaque(&h, 16), OpacityCheck::NotOpaque);
    }

    #[test]
    fn aborted_tx_consistent_snapshot_ok() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1).commit(t(1, 0));
        b.read(t(2, 0), X, 1).read(t(2, 0), Y, 1).abort(t(2, 0));
        let h = b.build();
        assert!(opaque(&h, 16).is_opaque());
    }

    #[test]
    fn live_tx_reads_checked() {
        // Live T2 saw x=1 before the (only) writer committed… in a history
        // where the writer is still live too — nobody's updates may be
        // visible, so reading 1 is inconsistent.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1); // T1 live, never commits
        b.read(t(2, 0), X, 1); // T2 live, read 1
        let h = b.build();
        assert_eq!(final_state_opaque(&h, 16), OpacityCheck::NotOpaque);
    }

    #[test]
    fn commit_pending_promotion_in_opacity() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).try_commit_pending(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        match final_state_opaque(&h, 16) {
            OpacityCheck::Opaque { visible, .. } => assert!(visible.contains(&t(1, 0))),
            other => panic!("expected opaque, got {other:?}"),
        }
    }

    #[test]
    fn prefix_closure_catches_transient_violation() {
        // Prefix: T2 (live) reads x=1 while no writer could be visible; the
        // full history later "fixes" it by committing T1… but opacity is
        // prefix-closed so the history must be rejected. (Here even the full
        // history is not final-state opaque because real-time order pins T2
        // after nothing — construct the transient case precisely:)
        let mut b = HistoryBuilder::new();
        b.read(t(2, 0), X, 1); // inconsistent read while T1 hasn't written
        b.write(t(1, 0), X, 1).commit(t(1, 0));
        b.commit(t(2, 0));
        let h = b.build();
        assert_eq!(opaque(&h, 16), OpacityCheck::NotOpaque);
    }

    #[test]
    fn opg_graph_builds_edges() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).commit(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        let g = OpacityGraph::build(&h, &[]);
        assert!(g.vertices[&t(1, 0)]);
        assert!(g.edges.contains(&(t(1, 0), t(2, 0), 0 /* Lrt */)));
        assert!(g.edges.contains(&(t(1, 0), t(2, 0), 1 /* Lrf */)));
        assert!(g.acyclic());
        let order = vec![t(1, 0), t(2, 0)];
        assert!(g.acyclic_under(&order));
        assert!(!g.acyclic_under(&[t(2, 0), t(1, 0)]));
        assert!(g.render().contains("Lrf"));
    }

    #[test]
    fn figure2_not_opaque_either() {
        use crate::ids::TVarId;
        let w = TVarId(2);
        let z = TVarId(3);
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), w, 0).read(t(1, 0), z, 0);
        b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1);
        b.try_commit_pending(t(1, 0));
        b.read(t(2, 0), X, 0).write(t(2, 0), w, 1).commit(t(2, 0));
        b.read(t(3, 0), Y, 1).write(t(3, 0), z, 1).commit(t(3, 0));
        let h = b.build();
        assert_eq!(final_state_opaque(&h, 16), OpacityCheck::NotOpaque);
    }
}
