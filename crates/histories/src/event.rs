//! Events of the two-level execution model (Section 2.1, Figure 1).
//!
//! The paper distinguishes *high-level* events — invocations and responses
//! of TM operations (`read`, `write`, `tryC`, `tryA`) — from *low-level*
//! steps on base objects. A [`crate::history::History`] is a totally
//! ordered sequence of such events; a *low-level history* additionally
//! contains [`Event::Step`]s, and histories used by the ic-obstruction
//! checkers may contain [`Event::Crash`] markers.

use crate::ids::{BaseObjId, ProcId, TVarId, TxId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A TM operation that a transaction can invoke (Section 2.2, "TM as a
/// shared object").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TmOp {
    /// Read t-variable `x` within the transaction.
    Read(TVarId),
    /// Write value `v` to t-variable `x` within the transaction.
    Write(TVarId, Value),
    /// `tryC(T_k)` — request commitment; returns `C_k` or `A_k`.
    TryCommit,
    /// `tryA(T_k)` — request abortion; always returns `A_k`.
    TryAbort,
}

impl TmOp {
    /// The t-variable accessed by this operation, if any.
    pub fn tvar(&self) -> Option<TVarId> {
        match self {
            TmOp::Read(x) | TmOp::Write(x, _) => Some(*x),
            TmOp::TryCommit | TmOp::TryAbort => None,
        }
    }
}

/// A response from a TM operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TmResp {
    /// Value returned by a successful `read`.
    Value(Value),
    /// `ok` returned by a successful `write`.
    Ok,
    /// The commit event `C_k`.
    Committed,
    /// The abort event `A_k`.
    Aborted,
}

/// How a step accesses a base object — used by the conflict relation of
/// Section 5.1 ("we distinguish base object operations that modify the
/// state of the object, and those that are read-only").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Access {
    /// A read-only operation on the base object.
    Read,
    /// An operation that (potentially) modifies the base object: a plain
    /// write, a successful CAS, a `propose` on a fo-consensus object, …
    Modify,
}

impl Access {
    /// True iff the access modifies the state of the base object.
    pub fn modifies(&self) -> bool {
        matches!(self, Access::Modify)
    }
}

/// One event of a (low-level) history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Event {
    /// Invocation of a TM operation by transaction `tx` (executed by `proc`).
    Invoke { proc: ProcId, tx: TxId, op: TmOp },
    /// Response of the previously invoked TM operation of `tx`.
    Respond {
        proc: ProcId,
        tx: TxId,
        resp: TmResp,
    },
    /// A step: an operation on a base object, executed by `proc` on behalf
    /// of the TM implementation. `tx` records which transaction the step
    /// serves when known (steps may also be attributable to helping).
    Step {
        proc: ProcId,
        tx: Option<TxId>,
        obj: BaseObjId,
        access: Access,
    },
    /// Process `proc` crashes and takes no further actions (Section 2.1).
    Crash { proc: ProcId },
}

impl Event {
    /// The process executing this event.
    pub fn proc(&self) -> ProcId {
        match self {
            Event::Invoke { proc, .. }
            | Event::Respond { proc, .. }
            | Event::Step { proc, .. }
            | Event::Crash { proc } => *proc,
        }
    }

    /// The transaction this event belongs to, if any.
    pub fn tx(&self) -> Option<TxId> {
        match self {
            Event::Invoke { tx, .. } | Event::Respond { tx, .. } => Some(*tx),
            Event::Step { tx, .. } => *tx,
            Event::Crash { .. } => None,
        }
    }

    /// True iff this is a low-level step on a base object.
    ///
    /// Crash markers are bookkeeping, not steps; invocations/responses of TM
    /// operations are local to the invoking process (Section 2.1: "events of
    /// operations on high-level objects, issued by a process pi, are local
    /// to pi").
    pub fn is_step(&self) -> bool {
        matches!(self, Event::Step { .. })
    }

    /// True for high-level (TM-interface) events.
    pub fn is_high_level(&self) -> bool {
        matches!(self, Event::Invoke { .. } | Event::Respond { .. })
    }

    /// True iff this event is the commit event `C_k` of some transaction.
    pub fn is_commit(&self) -> bool {
        matches!(
            self,
            Event::Respond {
                resp: TmResp::Committed,
                ..
            }
        )
    }

    /// True iff this event is an abort event `A_k` of some transaction.
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            Event::Respond {
                resp: TmResp::Aborted,
                ..
            }
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Invoke { tx, op, .. } => match op {
                TmOp::Read(x) => write!(f, "{tx}:inv R({x})"),
                TmOp::Write(x, v) => write!(f, "{tx}:inv W({x},{v})"),
                TmOp::TryCommit => write!(f, "{tx}:inv tryC"),
                TmOp::TryAbort => write!(f, "{tx}:inv tryA"),
            },
            Event::Respond { tx, resp, .. } => match resp {
                TmResp::Value(v) => write!(f, "{tx}:ret {v}"),
                TmResp::Ok => write!(f, "{tx}:ret ok"),
                TmResp::Committed => write!(f, "C[{tx}]"),
                TmResp::Aborted => write!(f, "A[{tx}]"),
            },
            Event::Step {
                proc, obj, access, ..
            } => match access {
                Access::Read => write!(f, "{proc}:r({obj})"),
                Access::Modify => write!(f, "{proc}:w({obj})"),
            },
            Event::Crash { proc } => write!(f, "crash({proc})"),
        }
    }
}

/// The operation performed by a transaction, paired with the response it
/// received. This is the unit of per-transaction comparison that the
/// paper's history-equivalence (`H ≡ H'` iff `H|T_i = H'|T_i` for every
/// `T_i`) is defined over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompletedOp {
    pub op: TmOp,
    pub resp: TmResp,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxId {
        TxId::new(i, 0)
    }

    #[test]
    fn event_accessors() {
        let e = Event::Invoke {
            proc: ProcId(1),
            tx: t(1),
            op: TmOp::Read(TVarId(0)),
        };
        assert_eq!(e.proc(), ProcId(1));
        assert_eq!(e.tx(), Some(t(1)));
        assert!(e.is_high_level());
        assert!(!e.is_step());

        let s = Event::Step {
            proc: ProcId(2),
            tx: None,
            obj: BaseObjId(5),
            access: Access::Modify,
        };
        assert!(s.is_step());
        assert_eq!(s.tx(), None);

        let c = Event::Crash { proc: ProcId(0) };
        assert!(!c.is_step());
        assert!(!c.is_high_level());
    }

    #[test]
    fn commit_abort_predicates() {
        let c = Event::Respond {
            proc: ProcId(0),
            tx: t(0),
            resp: TmResp::Committed,
        };
        let a = Event::Respond {
            proc: ProcId(0),
            tx: t(0),
            resp: TmResp::Aborted,
        };
        assert!(c.is_commit() && !c.is_abort());
        assert!(a.is_abort() && !a.is_commit());
    }

    #[test]
    fn access_modifies() {
        assert!(Access::Modify.modifies());
        assert!(!Access::Read.modifies());
    }

    #[test]
    fn display_is_compact() {
        let e = Event::Invoke {
            proc: ProcId(1),
            tx: TxId::new(1, 2),
            op: TmOp::Write(TVarId(3), 9),
        };
        assert_eq!(e.to_string(), "T1.2:inv W(x3,9)");
    }

    #[test]
    fn tmop_tvar() {
        assert_eq!(TmOp::Read(TVarId(1)).tvar(), Some(TVarId(1)));
        assert_eq!(TmOp::TryCommit.tvar(), None);
    }
}
