//! Histories: totally ordered sequences of events (Section 2.1–2.2).
//!
//! A [`History`] stores events in execution order together with a logical
//! timestamp per event (the index doubles as the paper's total order on
//! events; an optional wall-clock nanosecond stamp supports the *eventual*
//! ic-obstruction-freedom checker, whose Definition 4 quantifies over real
//! time `d`).

use crate::event::{Access, CompletedOp, Event, TmOp, TmResp};
use crate::ids::{BaseObjId, ProcId, TVarId, TxId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An event with its position in the total order and an optional wall-clock
/// time (nanoseconds from an arbitrary epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Index in the total order of the history.
    pub time: u64,
    /// Wall-clock nanoseconds; equals `time` when not recorded.
    pub nanos: u64,
    pub event: Event,
}

/// Completion status of a transaction within a history (Section 2.2,
/// "Transactions").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxStatus {
    /// Committed in `H` (contains `C_k`).
    Committed,
    /// Aborted in `H` (contains `A_k`).
    Aborted,
    /// Has invoked `tryC` but not yet received a response.
    CommitPending,
    /// Neither completed nor commit-pending.
    Live,
}

impl TxStatus {
    /// A transaction that is committed or aborted is *completed*.
    pub fn is_completed(&self) -> bool {
        matches!(self, TxStatus::Committed | TxStatus::Aborted)
    }
}

/// Aggregated per-transaction view of a history: the subsequence `H|T_k`
/// plus derived data the checkers need.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxView {
    pub id: TxId,
    pub status: TxStatus,
    /// Completed operations of the transaction in program order (reads with
    /// the value returned, writes acknowledged with `ok`, `tryC`/`tryA`).
    pub ops: Vec<CompletedOp>,
    /// Index (time) of the first event of the transaction in the history.
    pub first_event: u64,
    /// Index of the last event of the transaction in the history.
    pub last_event: u64,
    /// Wall-clock time of the first event.
    pub first_nanos: u64,
    /// True iff the transaction invoked `tryA` at some point.
    pub invoked_try_abort: bool,
    /// T-variables read (with an operation that returned a value).
    pub read_set: BTreeSet<TVarId>,
    /// T-variables written (with an acknowledged write).
    pub write_set: BTreeSet<TVarId>,
    /// T-variables on which an operation was *invoked*, regardless of the
    /// response (a read answered by `A_k` still counts as an access of the
    /// t-variable for Definition 12's purposes).
    pub attempted_set: BTreeSet<TVarId>,
}

impl TxView {
    /// All t-variables accessed by the transaction — including operations
    /// that were answered with an abort.
    pub fn access_set(&self) -> BTreeSet<TVarId> {
        let mut s = self.attempted_set.clone();
        s.extend(self.read_set.iter().copied());
        s.extend(self.write_set.iter().copied());
        s
    }

    /// A transaction is *forcefully aborted* if it is aborted but never
    /// issued `tryA` (Section 2.2).
    pub fn forcefully_aborted(&self) -> bool {
        self.status == TxStatus::Aborted && !self.invoked_try_abort
    }
}

/// A (possibly low-level) history of a TM implementation.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct History {
    events: Vec<TimedEvent>,
}

impl History {
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    pub fn from_events(events: Vec<Event>) -> Self {
        History {
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| TimedEvent {
                    time: i as u64,
                    nanos: i as u64,
                    event,
                })
                .collect(),
        }
    }

    /// Appends an event, assigning it the next logical time.
    pub fn push(&mut self, event: Event) {
        let t = self.events.len() as u64;
        self.events.push(TimedEvent {
            time: t,
            nanos: t,
            event,
        });
    }

    /// Appends an event with an explicit wall-clock stamp (nanoseconds).
    pub fn push_at(&mut self, event: Event, nanos: u64) {
        let t = self.events.len() as u64;
        self.events.push(TimedEvent {
            time: t,
            nanos,
            event,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// `H|p_i` — the subsequence of events executed by process `p`.
    pub fn restrict_proc(&self, p: ProcId) -> Vec<TimedEvent> {
        self.events
            .iter()
            .filter(|te| te.event.proc() == p)
            .copied()
            .collect()
    }

    /// `H|T_k` — the subsequence of high-level events of transaction `tx`.
    pub fn restrict_tx(&self, tx: TxId) -> Vec<TimedEvent> {
        self.events
            .iter()
            .filter(|te| te.event.is_high_level() && te.event.tx() == Some(tx))
            .copied()
            .collect()
    }

    /// `E|H` — the high-level history: all invocation/response events.
    pub fn high_level(&self) -> History {
        History {
            events: self
                .events
                .iter()
                .filter(|te| te.event.is_high_level() || matches!(te.event, Event::Crash { .. }))
                .copied()
                .collect(),
        }
    }

    /// All transactions appearing in the history, in order of first event.
    pub fn transactions(&self) -> Vec<TxId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for te in &self.events {
            if let Some(tx) = te.event.tx() {
                if seen.insert(tx) {
                    out.push(tx);
                }
            }
        }
        out
    }

    /// Wall-clock crash time of each crashed process.
    pub fn crash_times(&self) -> BTreeMap<ProcId, u64> {
        let mut m = BTreeMap::new();
        for te in &self.events {
            if let Event::Crash { proc } = te.event {
                m.entry(proc).or_insert(te.nanos);
            }
        }
        m
    }

    /// Builds the per-transaction views (see [`TxView`]).
    ///
    /// Views are keyed by transaction id; iteration order of the returned
    /// map is by `TxId`, use [`History::transactions`] for first-event
    /// order.
    pub fn tx_views(&self) -> BTreeMap<TxId, TxView> {
        let mut views: BTreeMap<TxId, TxView> = BTreeMap::new();
        // Pending invocation per transaction (well-formed histories have at
        // most one outstanding operation per process, hence per tx).
        let mut pending: BTreeMap<TxId, TmOp> = BTreeMap::new();

        for te in &self.events {
            match te.event {
                Event::Invoke { tx, op, .. } => {
                    let v = views.entry(tx).or_insert_with(|| TxView {
                        id: tx,
                        status: TxStatus::Live,
                        ops: Vec::new(),
                        first_event: te.time,
                        last_event: te.time,
                        first_nanos: te.nanos,
                        invoked_try_abort: false,
                        read_set: BTreeSet::new(),
                        write_set: BTreeSet::new(),
                        attempted_set: BTreeSet::new(),
                    });
                    v.last_event = te.time;
                    if op == TmOp::TryCommit {
                        v.status = TxStatus::CommitPending;
                    }
                    if op == TmOp::TryAbort {
                        v.invoked_try_abort = true;
                    }
                    if let Some(x) = op.tvar() {
                        v.attempted_set.insert(x);
                    }
                    pending.insert(tx, op);
                }
                Event::Respond { tx, resp, .. } => {
                    let op = pending.remove(&tx);
                    if let Some(v) = views.get_mut(&tx) {
                        v.last_event = te.time;
                        if let Some(op) = op {
                            v.ops.push(CompletedOp { op, resp });
                            match (op, resp) {
                                (TmOp::Read(x), TmResp::Value(_)) => {
                                    v.read_set.insert(x);
                                }
                                (TmOp::Write(x, _), TmResp::Ok) => {
                                    v.write_set.insert(x);
                                }
                                _ => {}
                            }
                        }
                        match resp {
                            TmResp::Committed => v.status = TxStatus::Committed,
                            TmResp::Aborted => v.status = TxStatus::Aborted,
                            _ => {}
                        }
                    }
                }
                Event::Step { tx: Some(tx), .. } => {
                    if let Some(v) = views.get_mut(&tx) {
                        v.last_event = te.time;
                    }
                }
                _ => {}
            }
        }
        views
    }

    /// `T_k` precedes `T_m` iff `T_k` is completed and its last event is
    /// before the first event of `T_m` (Section 2.2).
    pub fn precedes(&self, views: &BTreeMap<TxId, TxView>, a: TxId, b: TxId) -> bool {
        match (views.get(&a), views.get(&b)) {
            (Some(va), Some(vb)) => va.status.is_completed() && va.last_event < vb.first_event,
            _ => false,
        }
    }

    /// Transactions are concurrent iff neither precedes the other.
    pub fn concurrent(&self, views: &BTreeMap<TxId, TxView>, a: TxId, b: TxId) -> bool {
        a != b && !self.precedes(views, a, b) && !self.precedes(views, b, a)
    }

    /// Does transaction `tx` encounter *step contention* (Section 2.3)?
    ///
    /// True iff some step of a process other than `p_E(tx)` occurs after the
    /// first event of `tx` and before its commit/abort event (or the end of
    /// the history if `tx` never completes).
    pub fn step_contention(&self, tx: TxId) -> bool {
        let me = tx.process();
        let mut started = false;
        for te in &self.events {
            match te.event {
                Event::Invoke { tx: t, .. } if t == tx && !started => started = true,
                Event::Respond { tx: t, resp, .. }
                    if t == tx
                        && started
                        && matches!(resp, TmResp::Committed | TmResp::Aborted) =>
                {
                    return false;
                }
                Event::Step { proc, .. } if started && proc != me => return true,
                _ => {}
            }
        }
        false
    }

    /// Pretty-prints the history, one event per line.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for te in &self.events {
            use fmt::Write;
            let _ = writeln!(s, "{:>6}  {}", te.time, te.event);
        }
        s
    }
}

/// Convenience builder producing well-formed high-level histories for tests
/// and generators: it pairs every invocation with its response immediately
/// or at a chosen later point.
#[derive(Default)]
pub struct HistoryBuilder {
    h: History,
}

impl HistoryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Complete read: invocation immediately followed by its response.
    pub fn read(&mut self, tx: TxId, x: TVarId, v: Value) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op: TmOp::Read(x),
        });
        self.h.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp: TmResp::Value(v),
        });
        self
    }

    /// Complete write acknowledged with `ok`.
    pub fn write(&mut self, tx: TxId, x: TVarId, v: Value) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op: TmOp::Write(x, v),
        });
        self.h.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp: TmResp::Ok,
        });
        self
    }

    /// `tryC` followed by `C_k`.
    pub fn commit(&mut self, tx: TxId) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op: TmOp::TryCommit,
        });
        self.h.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp: TmResp::Committed,
        });
        self
    }

    /// `tryC` with no response yet (commit-pending).
    pub fn try_commit_pending(&mut self, tx: TxId) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op: TmOp::TryCommit,
        });
        self
    }

    /// Forceful abort: the abort event `A_k` delivered as the response to
    /// the given operation invocation.
    pub fn aborted_op(&mut self, tx: TxId, op: TmOp) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op,
        });
        self.h.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp: TmResp::Aborted,
        });
        self
    }

    /// Voluntary abort: `tryA` followed by `A_k`.
    pub fn abort(&mut self, tx: TxId) -> &mut Self {
        self.h.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op: TmOp::TryAbort,
        });
        self.h.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp: TmResp::Aborted,
        });
        self
    }

    /// A low-level step.
    pub fn step(
        &mut self,
        proc: ProcId,
        tx: Option<TxId>,
        obj: BaseObjId,
        access: Access,
    ) -> &mut Self {
        self.h.push(Event::Step {
            proc,
            tx,
            obj,
            access,
        });
        self
    }

    pub fn crash(&mut self, proc: ProcId) -> &mut Self {
        self.h.push(Event::Crash { proc });
        self
    }

    pub fn build(&mut self) -> History {
        std::mem::take(&mut self.h)
    }
}

/// Checks the well-formedness conditions of Section 2.1 on a history:
/// per process, high-level operations do not overlap, and every response
/// matches the pending invocation; steps only occur between an invocation
/// and its response... (steps outside any TM operation are permitted for
/// generality — Algorithm 3 for instance reads registers outside
/// transactions).
pub fn well_formed(h: &History) -> Result<(), String> {
    let mut pending: BTreeMap<ProcId, (TxId, TmOp)> = BTreeMap::new();
    let mut completed: BTreeSet<TxId> = BTreeSet::new();
    let mut crashed: BTreeSet<ProcId> = BTreeSet::new();

    for te in h.iter() {
        let p = te.event.proc();
        if crashed.contains(&p) {
            return Err(format!("event {} by crashed process {p}", te.event));
        }
        match te.event {
            Event::Invoke { proc, tx, op } => {
                if tx.process() != proc {
                    return Err(format!("{tx} invoked by wrong process {proc}"));
                }
                if completed.contains(&tx) {
                    return Err(format!("operation on completed transaction {tx}"));
                }
                if pending.contains_key(&proc) {
                    return Err(format!("overlapping operations at {proc}"));
                }
                pending.insert(proc, (tx, op));
            }
            Event::Respond { proc, tx, resp } => {
                match pending.remove(&proc) {
                    None => return Err(format!("response without invocation at {proc}")),
                    Some((ptx, pop)) => {
                        if ptx != tx {
                            return Err(format!(
                                "response for {tx} but pending operation is for {ptx}"
                            ));
                        }
                        // Response type must be plausible for the operation.
                        let ok = match (pop, resp) {
                            (TmOp::Read(_), TmResp::Value(_)) => true,
                            (TmOp::Write(..), TmResp::Ok) => true,
                            (TmOp::TryCommit, TmResp::Committed) => true,
                            (TmOp::TryAbort, TmResp::Aborted) => true,
                            // Any operation may be answered by A_k.
                            (_, TmResp::Aborted) => true,
                            _ => false,
                        };
                        if !ok {
                            return Err(format!("mismatched response {resp:?} to {pop:?}"));
                        }
                    }
                }
                if matches!(resp, TmResp::Committed | TmResp::Aborted) {
                    completed.insert(tx);
                }
            }
            Event::Step { .. } => {}
            Event::Crash { proc } => {
                crashed.insert(proc);
                pending.remove(&proc);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(p: u32, k: u32) -> TxId {
        TxId::new(p, k)
    }

    #[test]
    fn builder_and_views() {
        let x = TVarId(0);
        let y = TVarId(1);
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), x, 0)
            .write(t(1, 0), y, 5)
            .commit(t(1, 0))
            .aborted_op(t(2, 0), TmOp::Read(y));
        let h = b.build();
        assert!(well_formed(&h).is_ok());

        let views = h.tx_views();
        let v1 = &views[&t(1, 0)];
        assert_eq!(v1.status, TxStatus::Committed);
        assert_eq!(v1.read_set.iter().copied().collect::<Vec<_>>(), vec![x]);
        assert_eq!(v1.write_set.iter().copied().collect::<Vec<_>>(), vec![y]);
        assert!(!v1.forcefully_aborted());

        let v2 = &views[&t(2, 0)];
        assert_eq!(v2.status, TxStatus::Aborted);
        assert!(v2.forcefully_aborted());
    }

    #[test]
    fn precedence_and_concurrency() {
        let x = TVarId(0);
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), x, 0)
            .commit(t(1, 0))
            .read(t(2, 0), x, 0)
            .commit(t(2, 0));
        let h = b.build();
        let views = h.tx_views();
        assert!(h.precedes(&views, t(1, 0), t(2, 0)));
        assert!(!h.precedes(&views, t(2, 0), t(1, 0)));
        assert!(!h.concurrent(&views, t(1, 0), t(2, 0)));
    }

    #[test]
    fn concurrent_interleaved() {
        let x = TVarId(0);
        let mut h = History::new();
        // T1 reads, then T2 reads, then both commit: concurrent.
        for e in [
            Event::Invoke {
                proc: ProcId(1),
                tx: t(1, 0),
                op: TmOp::Read(x),
            },
            Event::Respond {
                proc: ProcId(1),
                tx: t(1, 0),
                resp: TmResp::Value(0),
            },
            Event::Invoke {
                proc: ProcId(2),
                tx: t(2, 0),
                op: TmOp::Read(x),
            },
            Event::Respond {
                proc: ProcId(2),
                tx: t(2, 0),
                resp: TmResp::Value(0),
            },
            Event::Invoke {
                proc: ProcId(1),
                tx: t(1, 0),
                op: TmOp::TryCommit,
            },
            Event::Respond {
                proc: ProcId(1),
                tx: t(1, 0),
                resp: TmResp::Committed,
            },
        ] {
            h.push(e);
        }
        let views = h.tx_views();
        assert!(h.concurrent(&views, t(1, 0), t(2, 0)));
        assert_eq!(views[&t(2, 0)].status, TxStatus::Live);
    }

    #[test]
    fn step_contention_detected() {
        let x = TVarId(0);
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), x, 0);
        b.step(ProcId(2), None, BaseObjId(0), Access::Read);
        b.commit(t(1, 0));
        let h = b.build();
        assert!(h.step_contention(t(1, 0)));
        // Own steps do not count.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), x, 0);
        b.step(ProcId(1), Some(t(1, 0)), BaseObjId(0), Access::Modify);
        b.commit(t(1, 0));
        let h = b.build();
        assert!(!h.step_contention(t(1, 0)));
    }

    #[test]
    fn step_contention_stops_at_completion() {
        let x = TVarId(0);
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), x, 0).commit(t(1, 0));
        b.step(ProcId(2), None, BaseObjId(0), Access::Modify);
        let h = b.build();
        // Step occurs after T1 completed: no contention for T1.
        assert!(!h.step_contention(t(1, 0)));
    }

    #[test]
    fn wf_rejects_overlap_at_one_process() {
        let x = TVarId(0);
        let mut h = History::new();
        h.push(Event::Invoke {
            proc: ProcId(1),
            tx: t(1, 0),
            op: TmOp::Read(x),
        });
        h.push(Event::Invoke {
            proc: ProcId(1),
            tx: t(1, 0),
            op: TmOp::Read(x),
        });
        assert!(well_formed(&h).is_err());
    }

    #[test]
    fn wf_rejects_event_after_crash() {
        let mut h = History::new();
        h.push(Event::Crash { proc: ProcId(1) });
        h.push(Event::Invoke {
            proc: ProcId(1),
            tx: t(1, 0),
            op: TmOp::TryCommit,
        });
        assert!(well_formed(&h).is_err());
    }

    #[test]
    fn wf_rejects_op_on_completed_tx() {
        let x = TVarId(0);
        let mut b = HistoryBuilder::new();
        b.commit(t(1, 0));
        b.read(t(1, 0), x, 0);
        let h = b.build();
        assert!(well_formed(&h).is_err());
    }

    #[test]
    fn high_level_projection_drops_steps() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), TVarId(0), 0);
        b.step(ProcId(1), Some(t(1, 0)), BaseObjId(0), Access::Read);
        let h = b.build();
        assert_eq!(h.len(), 3);
        assert_eq!(h.high_level().len(), 2);
    }

    #[test]
    fn restrict_by_proc_and_tx() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), TVarId(0), 0).read(t(2, 0), TVarId(1), 0);
        let h = b.build();
        assert_eq!(h.restrict_proc(ProcId(1)).len(), 2);
        assert_eq!(h.restrict_tx(t(2, 0)).len(), 2);
    }

    #[test]
    fn crash_times_recorded() {
        let mut h = History::new();
        h.push_at(Event::Crash { proc: ProcId(3) }, 42);
        assert_eq!(h.crash_times()[&ProcId(3)], 42);
    }

    #[test]
    fn render_contains_events() {
        let mut b = HistoryBuilder::new();
        b.commit(t(1, 0));
        let h = b.build();
        let s = h.render();
        assert!(s.contains("tryC"));
        assert!(s.contains("C[T1.0]"));
    }
}
