//! Obstruction-freedom checkers: Definitions 2, 3 and 4 of the paper.
//!
//! * [`check_of`] — Definition 2 (step contention): a forcefully aborted
//!   transaction must have encountered step contention.
//! * [`check_ic_of`] — Definition 3 (interval contention): a forcefully
//!   aborted `T_k` must have a concurrent `T_i` whose process had not
//!   crashed before the first event of `T_k`.
//! * [`check_eventual_ic_of`] — Definition 4: like ic-OF, but a crashed
//!   process may obstruct for a bounded time `d`; the checker computes the
//!   smallest `d` that validates the history, if one exists.
//!
//! Each checker returns the list of violating transactions (empty ⇒ the
//! property holds), so experiment binaries can print witnesses.

use crate::history::{History, TxView};
use crate::ids::TxId;
use std::collections::BTreeMap;

/// A violation of one of the obstruction-freedom definitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OfViolation {
    /// The forcefully aborted transaction with no justifying contention.
    pub tx: TxId,
    pub reason: String,
}

/// Definition 2: every forcefully aborted transaction must encounter step
/// contention. Requires a low-level history (with `Event::Step`s) to be
/// meaningful; on a pure high-level history every forceful abort is a
/// violation, which is the correct degenerate reading.
pub fn check_of(h: &History) -> Vec<OfViolation> {
    let views = h.tx_views();
    let mut out = Vec::new();
    for v in views.values() {
        if v.forcefully_aborted() && !h.step_contention(v.id) {
            out.push(OfViolation {
                tx: v.id,
                reason: "forcefully aborted without step contention".into(),
            });
        }
    }
    out
}

/// Definition 3: every forcefully aborted `T_k` needs a concurrent `T_i`
/// executed by a process that had not crashed before `T_k`'s first event.
pub fn check_ic_of(h: &History) -> Vec<OfViolation> {
    let views = h.tx_views();
    let crashes = h.crash_times();
    let mut out = Vec::new();
    for v in views.values() {
        if !v.forcefully_aborted() {
            continue;
        }
        if !has_ic_witness(h, &views, &crashes, v, 0) {
            out.push(OfViolation {
                tx: v.id,
                reason: "forcefully aborted with no live concurrent transaction".into(),
            });
        }
    }
    out
}

/// Definition 4: returns `Ok(d)` with the smallest bound `d` (in the
/// history's wall-clock units) for which the history is eventually
/// ic-obstruction-free, or `Err(violations)` if no finite `d` works (i.e.
/// some forcefully aborted transaction has no concurrent transaction at
/// all).
pub fn check_eventual_ic_of(h: &History) -> Result<u64, Vec<OfViolation>> {
    let views = h.tx_views();
    let crashes = h.crash_times();
    let mut needed: u64 = 0;
    let mut violations = Vec::new();

    for v in views.values() {
        if !v.forcefully_aborted() {
            continue;
        }
        // Find the concurrent transaction whose process crashed the
        // shortest time before T_k's first event (or did not crash at all,
        // contributing d = 0).
        let mut best: Option<u64> = None;
        for other in views.values() {
            if other.id == v.id || !h.concurrent(&views, v.id, other.id) {
                continue;
            }
            let d = match crashes.get(&other.id.process()) {
                None => 0,
                Some(&ct) if ct >= v.first_nanos => 0,
                Some(&ct) => v.first_nanos - ct,
            };
            best = Some(best.map_or(d, |b: u64| b.min(d)));
        }
        match best {
            Some(d) => needed = needed.max(d),
            None => violations.push(OfViolation {
                tx: v.id,
                reason: "forcefully aborted with no concurrent transaction at all".into(),
            }),
        }
    }
    if violations.is_empty() {
        Ok(needed)
    } else {
        Err(violations)
    }
}

fn has_ic_witness(
    h: &History,
    views: &BTreeMap<TxId, TxView>,
    crashes: &BTreeMap<crate::ids::ProcId, u64>,
    v: &TxView,
    slack: u64,
) -> bool {
    views.values().any(|other| {
        other.id != v.id
            && h.concurrent(views, v.id, other.id)
            && match crashes.get(&other.id.process()) {
                None => true,
                // "has not crashed before the first event of T_k" (allowing
                // `slack` of pre-crash obstruction for Definition 4).
                Some(&ct) => ct + slack >= v.first_nanos,
            }
    })
}

/// Theorem 5 helper: evaluates both Definition 2 and Definition 3 on the
/// same history and reports whether they agree. (The theorem says every
/// OFTM is an ic-OFTM and vice versa; on any single *low-level* history OF
/// implies ic-OF — the converse direction of the theorem is about
/// implementations, not single histories, because slow and crashed
/// processes are indistinguishable. See `exp_of_equivalence`.)
pub fn of_implies_ic_of(h: &History) -> bool {
    !check_of(h).is_empty() || check_ic_of(h).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Access, TmOp};
    use crate::history::HistoryBuilder;
    use crate::ids::{BaseObjId, ProcId, TVarId, TxId};

    fn t(p: u32, k: u32) -> TxId {
        TxId::new(p, k)
    }
    const X: TVarId = TVarId(0);

    #[test]
    fn voluntary_abort_never_violates() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).abort(t(1, 0));
        let h = b.build();
        assert!(check_of(&h).is_empty());
        assert!(check_ic_of(&h).is_empty());
        assert_eq!(check_eventual_ic_of(&h), Ok(0));
    }

    #[test]
    fn forceful_abort_without_contention_violates_of() {
        let mut b = HistoryBuilder::new();
        b.aborted_op(t(1, 0), TmOp::TryCommit);
        let h = b.build();
        let v = check_of(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].tx, t(1, 0));
    }

    #[test]
    fn forceful_abort_with_step_contention_ok() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(2), None, BaseObjId(0), Access::Modify);
        b.aborted_op(t(1, 0), TmOp::TryCommit);
        let h = b.build();
        assert!(check_of(&h).is_empty());
    }

    #[test]
    fn ic_of_needs_concurrent_live_tx() {
        // T2 runs concurrently with T1 and its process never crashes:
        // T1's forceful abort is ic-justified.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.read(t(2, 0), X, 0);
        b.aborted_op(t(1, 0), TmOp::TryCommit);
        b.commit(t(2, 0));
        let h = b.build();
        assert!(check_ic_of(&h).is_empty());
    }

    #[test]
    fn ic_of_violated_when_only_concurrent_tx_crashed_before() {
        // p2 crashes, then T1 starts and is forcefully aborted. T2 (by p2)
        // is concurrent (never completed) but p2 crashed before T1's first
        // event → Definition 3 violated.
        let mut h = History::new();
        // T2 starts (one read invocation, never answered).
        h.push_at(
            crate::event::Event::Invoke {
                proc: ProcId(2),
                tx: t(2, 0),
                op: TmOp::Read(X),
            },
            0,
        );
        h.push_at(crate::event::Event::Crash { proc: ProcId(2) }, 10);
        // T1 starts at time 100 and gets forcefully aborted.
        h.push_at(
            crate::event::Event::Invoke {
                proc: ProcId(1),
                tx: t(1, 0),
                op: TmOp::Read(X),
            },
            100,
        );
        h.push_at(
            crate::event::Event::Respond {
                proc: ProcId(1),
                tx: t(1, 0),
                resp: crate::event::TmResp::Aborted,
            },
            110,
        );
        let viol = check_ic_of(&h);
        assert_eq!(viol.len(), 1);
        // …but eventual ic-OF accepts it with d = 90 (crash at 10, first
        // event at 100).
        assert_eq!(check_eventual_ic_of(&h), Ok(90));
    }

    #[test]
    fn eventual_ic_of_unsatisfiable_without_concurrency() {
        let mut b = HistoryBuilder::new();
        b.aborted_op(t(1, 0), TmOp::TryCommit);
        let h = b.build();
        assert!(check_eventual_ic_of(&h).is_err());
    }

    #[test]
    fn of_implies_ic_of_on_histories() {
        // A history satisfying OF: forceful abort justified by a step of a
        // live process that also runs a concurrent transaction.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.read(t(2, 0), X, 0);
        b.step(ProcId(2), Some(t(2, 0)), BaseObjId(0), Access::Modify);
        b.aborted_op(t(1, 0), TmOp::TryCommit);
        b.commit(t(2, 0));
        let h = b.build();
        assert!(check_of(&h).is_empty());
        assert!(check_ic_of(&h).is_empty());
        assert!(of_implies_ic_of(&h));
    }

    #[test]
    fn crash_after_tx_start_still_ic_witness() {
        // T2 concurrent with T1; p2 crashes AFTER T1's first event: still a
        // valid Definition 3 witness.
        let mut h = History::new();
        h.push_at(
            crate::event::Event::Invoke {
                proc: ProcId(1),
                tx: t(1, 0),
                op: TmOp::Read(X),
            },
            0,
        );
        h.push_at(
            crate::event::Event::Invoke {
                proc: ProcId(2),
                tx: t(2, 0),
                op: TmOp::Read(X),
            },
            5,
        );
        h.push_at(crate::event::Event::Crash { proc: ProcId(2) }, 8);
        h.push_at(
            crate::event::Event::Respond {
                proc: ProcId(1),
                tx: t(1, 0),
                resp: crate::event::TmResp::Aborted,
            },
            20,
        );
        assert!(check_ic_of(&h).is_empty());
    }
}
