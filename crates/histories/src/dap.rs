//! Strict disjoint-access-parallelism checking (Definition 12, Section 5.1).
//!
//! Two transactions *conflict on a base object* `x` if both execute an
//! operation on `x` and at least one of those operations modifies `x`'s
//! state. An STM is strictly disjoint-access-parallel if conflicting
//! transactions always share a t-variable. [`check_strict_dap`] scans a
//! low-level history for violating pairs: transactions that conflict on a
//! base object but access disjoint t-variable sets. Theorem 13 says every
//! OFTM must produce such a pair in some execution — the experiments
//! (`fig2_dap`, `exp_conflict_density`) use this checker to exhibit them.

use crate::event::Event;
use crate::history::History;
use crate::ids::{BaseObjId, TxId};
use std::collections::{BTreeMap, BTreeSet};

/// A witnessed violation of strict disjoint-access-parallelism.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DapViolation {
    pub tx_a: TxId,
    pub tx_b: TxId,
    /// The base object both transactions touched with at least one
    /// modification.
    pub obj: BaseObjId,
}

/// Per-(transaction, base-object) access summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct AccessSummary {
    read: bool,
    modified: bool,
}

/// Scans a low-level history for strict-DAP violations.
///
/// Steps not attributed to any transaction (`tx: None`) are ignored — the
/// definition quantifies over transactions; recorders in this repository
/// always attribute steps (a step performed while forcefully aborting a
/// victim is attributed to the *aborting* transaction, which is precisely
/// what exposes the Figure 2 descriptor hot-spot).
pub fn check_strict_dap(h: &History) -> Vec<DapViolation> {
    let views = h.tx_views();

    // (tx, obj) -> summary
    let mut acc: BTreeMap<TxId, BTreeMap<BaseObjId, AccessSummary>> = BTreeMap::new();
    for te in h.iter() {
        if let Event::Step {
            tx: Some(tx),
            obj,
            access,
            ..
        } = te.event
        {
            let s = acc.entry(tx).or_default().entry(obj).or_default();
            if access.modifies() {
                s.modified = true;
            } else {
                s.read = true;
            }
        }
    }

    let txs: Vec<TxId> = acc.keys().copied().collect();
    let mut out = Vec::new();
    for (i, &a) in txs.iter().enumerate() {
        for &b in txs.iter().skip(i + 1) {
            // Disjoint t-variable sets?
            let (sa, sb) = match (views.get(&a), views.get(&b)) {
                (Some(va), Some(vb)) => (va.access_set(), vb.access_set()),
                _ => (BTreeSet::new(), BTreeSet::new()),
            };
            if sa.intersection(&sb).next().is_some() {
                continue; // they share a t-variable: conflicts are allowed
            }
            // Conflict on some base object?
            let ma = &acc[&a];
            let mb = &acc[&b];
            for (obj, su_a) in ma {
                if let Some(su_b) = mb.get(obj) {
                    let conflict = (su_a.modified && (su_b.modified || su_b.read))
                        || (su_b.modified && su_a.read);
                    if conflict {
                        out.push(DapViolation {
                            tx_a: a,
                            tx_b: b,
                            obj: *obj,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Counts, for reporting: how many transaction pairs conflicted on ≥1 base
/// object, split by whether they shared a t-variable. Used by
/// `exp_conflict_density` to quantify the "artificial hot spots" of
/// Section 5.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictDensity {
    /// Conflicting pairs that share at least one t-variable (legitimate).
    pub related_pairs: usize,
    /// Conflicting pairs with disjoint t-variable sets (strict-DAP
    /// violations — "artificial" conflicts).
    pub unrelated_pairs: usize,
}

pub fn conflict_density(h: &History) -> ConflictDensity {
    let views = h.tx_views();
    let mut acc: BTreeMap<TxId, BTreeMap<BaseObjId, AccessSummary>> = BTreeMap::new();
    for te in h.iter() {
        if let Event::Step {
            tx: Some(tx),
            obj,
            access,
            ..
        } = te.event
        {
            let s = acc.entry(tx).or_default().entry(obj).or_default();
            if access.modifies() {
                s.modified = true;
            } else {
                s.read = true;
            }
        }
    }
    let txs: Vec<TxId> = acc.keys().copied().collect();
    let mut d = ConflictDensity::default();
    for (i, &a) in txs.iter().enumerate() {
        for &b in txs.iter().skip(i + 1) {
            let ma = &acc[&a];
            let mb = &acc[&b];
            let conflict = ma.iter().any(|(obj, su_a)| {
                mb.get(obj).is_some_and(|su_b| {
                    (su_a.modified && (su_b.modified || su_b.read)) || (su_b.modified && su_a.read)
                })
            });
            if !conflict {
                continue;
            }
            let (sa, sb) = match (views.get(&a), views.get(&b)) {
                (Some(va), Some(vb)) => (va.access_set(), vb.access_set()),
                _ => (BTreeSet::new(), BTreeSet::new()),
            };
            if sa.intersection(&sb).next().is_some() {
                d.related_pairs += 1;
            } else {
                d.unrelated_pairs += 1;
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Access;
    use crate::history::HistoryBuilder;
    use crate::ids::{ProcId, TVarId};

    fn t(p: u32, k: u32) -> TxId {
        TxId::new(p, k)
    }
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);
    const DESC: BaseObjId = BaseObjId(100);

    #[test]
    fn no_steps_no_violations() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0).commit(t(1, 0));
        let h = b.build();
        assert!(check_strict_dap(&h).is_empty());
    }

    #[test]
    fn shared_tvar_conflict_allowed() {
        // Both transactions access t-variable X and CAS the same base
        // object: allowed by strict DAP.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), Some(t(1, 0)), DESC, Access::Modify);
        b.read(t(2, 0), X, 0);
        b.step(ProcId(2), Some(t(2, 0)), DESC, Access::Modify);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert!(check_strict_dap(&h).is_empty());
        let d = conflict_density(&h);
        assert_eq!(d.related_pairs, 1);
        assert_eq!(d.unrelated_pairs, 0);
    }

    #[test]
    fn disjoint_tvars_conflict_flagged() {
        // T1 on X, T2 on Y, both modify the same base object (e.g. a shared
        // transaction descriptor) — the Figure 2 situation.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), Some(t(1, 0)), DESC, Access::Modify);
        b.read(t(2, 0), Y, 0);
        b.step(ProcId(2), Some(t(2, 0)), DESC, Access::Modify);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        let v = check_strict_dap(&h);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].obj, DESC);
        let d = conflict_density(&h);
        assert_eq!(d.unrelated_pairs, 1);
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), Some(t(1, 0)), DESC, Access::Read);
        b.read(t(2, 0), Y, 0);
        b.step(ProcId(2), Some(t(2, 0)), DESC, Access::Read);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert!(check_strict_dap(&h).is_empty());
    }

    #[test]
    fn read_write_is_a_conflict() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), Some(t(1, 0)), DESC, Access::Read);
        b.read(t(2, 0), Y, 0);
        b.step(ProcId(2), Some(t(2, 0)), DESC, Access::Modify);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert_eq!(check_strict_dap(&h).len(), 1);
    }

    #[test]
    fn unattributed_steps_ignored() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), None, DESC, Access::Modify);
        b.read(t(2, 0), Y, 0);
        b.step(ProcId(2), None, DESC, Access::Modify);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert!(check_strict_dap(&h).is_empty());
    }

    #[test]
    fn different_base_objects_no_conflict() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0);
        b.step(ProcId(1), Some(t(1, 0)), BaseObjId(1), Access::Modify);
        b.read(t(2, 0), Y, 0);
        b.step(ProcId(2), Some(t(2, 0)), BaseObjId(2), Access::Modify);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert!(check_strict_dap(&h).is_empty());
    }
}
