//! Identifier newtypes for the formal model of Section 2 of the paper.
//!
//! The paper's model has *processes* `p_1 … p_n` executing *transactions*
//! `T_{i,k}` over *t-variables*, implemented on top of *base objects*.
//! Each of those four notions gets a small copyable id type so that
//! histories are cheap to store, hash and compare.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process (thread) identifier `p_i`.
///
/// The paper's system has `n` processes of which `n - 1` may crash
/// (Section 2.1). Process ids are dense small integers assigned by whoever
/// constructs the execution (test harness, recorder or simulator).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A transaction identifier `T_{i,k}`.
///
/// Following footnote 3 of the paper, identifiers are generated locally by
/// combining the id of the executing process (`proc`) with a process-local
/// counter (`seq`). Uniqueness therefore holds without coordination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxId {
    /// Id of the process that executes this transaction (`p_E(T_k)`).
    pub proc: u32,
    /// Process-local sequence number `k`.
    pub seq: u32,
}

impl TxId {
    /// Builds the transaction id `T_{proc,seq}`.
    pub const fn new(proc: u32, seq: u32) -> Self {
        TxId { proc, seq }
    }

    /// The process executing this transaction.
    pub const fn process(&self) -> ProcId {
        ProcId(self.proc)
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.proc, self.seq)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.proc, self.seq)
    }
}

/// A transactional variable (t-variable) identifier.
///
/// The paper restricts attention to read/write t-variables (transactional
/// registers, Section 2.2 footnote 2); values are modelled as `u64` words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TVarId(pub u64);

impl fmt::Debug for TVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for TVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A base-object identifier.
///
/// Base objects are the low-level shared objects (hardware memory words,
/// CAS cells, fo-consensus instances…) on which *steps* are executed.
/// Implementations map their internal memory (descriptor status words,
/// locator pointers, version clocks, lock words, foc cells) to stable
/// `BaseObjId`s so that the checkers in [`crate::dap`] can reason about
/// conflicts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BaseObjId(pub u64);

impl fmt::Debug for BaseObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BaseObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The value domain of t-variables and registers.
///
/// A single machine word; rich payloads in the threaded library are layered
/// on top (see `oftm-core`'s typed `TVar<T>`).
pub type Value = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txid_carries_process() {
        let t = TxId::new(3, 7);
        assert_eq!(t.process(), ProcId(3));
        assert_eq!(format!("{t}"), "T3.7");
    }

    #[test]
    fn ids_order_and_hash() {
        use std::collections::HashSet;
        let a = TxId::new(1, 1);
        let b = TxId::new(1, 2);
        let c = TxId::new(2, 1);
        assert!(a < b && b < c);
        let s: HashSet<_> = [a, b, c, a].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(0).to_string(), "p0");
        assert_eq!(TVarId(4).to_string(), "x4");
        assert_eq!(BaseObjId(9).to_string(), "b9");
    }
}
