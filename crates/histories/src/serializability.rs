//! Serializability checking (Definition 1 of the paper).
//!
//! A TM history `H` is serializable if there is a *commit-completion* `H'`
//! of `H` (some commit-pending transactions receive their `C_k`) such that
//! `committed(H')` is equivalent to a sequential *legal* history `S`:
//! every read returns the value written by the last preceding write in `S`,
//! or the initial value.
//!
//! Two checkers are provided:
//!
//! * [`serializable`] — exact, by searching over commit-completions and
//!   serialization orders with memoization. Exponential in the number of
//!   committed transactions, usable up to ~14 transactions; this is the
//!   ground-truth oracle used by the simulator and the small-history tests.
//! * [`conflict_serializable`] — the classical precedence-graph test.
//!   Conflict-serializability implies serializability, so an acyclic graph
//!   is a sound *positive* certificate usable on arbitrarily large stress
//!   histories (a cycle is inconclusive for plain serializability).

use crate::event::{CompletedOp, TmOp, TmResp};
use crate::history::{History, TxStatus, TxView};
use crate::ids::{TVarId, TxId, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Default initial value of every t-variable (the paper's examples
/// initialize t-variables to 0).
pub const INITIAL_VALUE: Value = 0;

/// Outcome of a serializability check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerCheck {
    /// Serializable; contains a witness: the commit-completion (transactions
    /// promoted from commit-pending) and the serialization order.
    Serializable {
        promoted: Vec<TxId>,
        order: Vec<TxId>,
    },
    /// Exhaustively shown not serializable.
    NotSerializable,
    /// The exact search was not attempted because the history exceeds
    /// `max_exact` transactions.
    TooLarge,
}

impl SerCheck {
    pub fn is_serializable(&self) -> bool {
        matches!(self, SerCheck::Serializable { .. })
    }
}

/// The read/write program of one transaction, extracted from its view.
#[derive(Clone, Debug)]
pub(crate) struct TxProgram {
    pub id: TxId,
    /// Reads and writes in program order. `tryC`/`tryA` are dropped; a read
    /// that was answered by `A_k` has no value and is dropped as well (the
    /// transaction is aborted and takes no part in `committed(H')`).
    pub ops: Vec<CompletedOp>,
}

impl TxProgram {
    pub(crate) fn from_view(v: &TxView) -> Self {
        TxProgram {
            id: v.id,
            ops: v
                .ops
                .iter()
                .filter(|c| {
                    matches!(
                        (c.op, c.resp),
                        (TmOp::Read(_), TmResp::Value(_)) | (TmOp::Write(..), TmResp::Ok)
                    )
                })
                .copied()
                .collect(),
        }
    }

    /// Replays this transaction against `state`. Returns `true` and applies
    /// its writes if every read matches, `false` (leaving `state` untouched)
    /// otherwise.
    pub(crate) fn replay(&self, state: &mut BTreeMap<TVarId, Value>) -> bool {
        let mut local: BTreeMap<TVarId, Value> = BTreeMap::new();
        for c in &self.ops {
            match (c.op, c.resp) {
                (TmOp::Read(x), TmResp::Value(v)) => {
                    let cur = local
                        .get(&x)
                        .or_else(|| state.get(&x))
                        .copied()
                        .unwrap_or(INITIAL_VALUE);
                    if cur != v {
                        return false;
                    }
                }
                (TmOp::Write(x, v), TmResp::Ok) => {
                    local.insert(x, v);
                }
                _ => {}
            }
        }
        for (x, v) in local {
            state.insert(x, v);
        }
        true
    }
}

fn state_fingerprint(state: &BTreeMap<TVarId, Value>) -> u64 {
    let mut h = DefaultHasher::new();
    for (k, v) in state {
        k.hash(&mut h);
        v.hash(&mut h);
    }
    h.finish()
}

/// Depth-first search for a legal serialization order of `programs`,
/// memoized on (placed-set, state fingerprint). Returns the order if found.
fn find_order(programs: &[TxProgram]) -> Option<Vec<TxId>> {
    let n = programs.len();
    if n == 0 {
        return Some(Vec::new());
    }
    debug_assert!(n <= 64, "exact search limited to 64 transactions");
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut visited: HashSet<(u64, u64)> = HashSet::new();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut state: BTreeMap<TVarId, Value> = BTreeMap::new();

    fn dfs(
        programs: &[TxProgram],
        mask: u64,
        full: u64,
        state: &mut BTreeMap<TVarId, Value>,
        order: &mut Vec<usize>,
        visited: &mut HashSet<(u64, u64)>,
    ) -> bool {
        if mask == full {
            return true;
        }
        let fp = state_fingerprint(state);
        if !visited.insert((mask, fp)) {
            return false;
        }
        for (i, p) in programs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                continue;
            }
            let snapshot = state.clone();
            if p.replay(state) {
                order.push(i);
                if dfs(programs, mask | (1 << i), full, state, order, visited) {
                    return true;
                }
                order.pop();
            }
            *state = snapshot;
        }
        false
    }

    if dfs(programs, 0, full, &mut state, &mut order, &mut visited) {
        Some(order.into_iter().map(|i| programs[i].id).collect())
    } else {
        None
    }
}

/// Exact serializability check per Definition 1.
///
/// `max_exact` bounds the number of transactions the exponential search will
/// consider; histories with more committed+pending transactions yield
/// [`SerCheck::TooLarge`] (use [`conflict_serializable`] then).
pub fn serializable(h: &History, max_exact: usize) -> SerCheck {
    let views = h.tx_views();
    let committed: Vec<&TxView> = views
        .values()
        .filter(|v| v.status == TxStatus::Committed)
        .collect();
    let pending: Vec<&TxView> = views
        .values()
        .filter(|v| v.status == TxStatus::CommitPending)
        .collect();

    if committed.len() + pending.len() > max_exact || committed.len() + pending.len() > 60 {
        return SerCheck::TooLarge;
    }

    // Enumerate commit-completions: any subset of commit-pending
    // transactions may be promoted to committed (H' = H · C).
    let p = pending.len();
    for subset in 0..(1u64 << p) {
        let mut programs: Vec<TxProgram> =
            committed.iter().map(|v| TxProgram::from_view(v)).collect();
        let mut promoted = Vec::new();
        for (i, v) in pending.iter().enumerate() {
            if subset & (1 << i) != 0 {
                programs.push(TxProgram::from_view(v));
                promoted.push(v.id);
            }
        }
        if let Some(order) = find_order(&programs) {
            return SerCheck::Serializable { promoted, order };
        }
    }
    SerCheck::NotSerializable
}

/// The classical conflict (precedence) graph over committed transactions:
/// an edge `T_i → T_k` whenever an operation of `T_i` conflicts with, and is
/// ordered in `H` before, an operation of `T_k` on the same t-variable
/// (read-write, write-read or write-write). Operation order is taken from
/// response positions in `H`.
pub fn conflict_graph(h: &History) -> BTreeMap<TxId, HashSet<TxId>> {
    let views = h.tx_views();
    let committed: HashSet<TxId> = views
        .values()
        .filter(|v| v.status == TxStatus::Committed)
        .map(|v| v.id)
        .collect();

    // Gather (time, tx, var, is_write) for committed transactions.
    let mut accesses: Vec<(u64, TxId, TVarId, bool)> = Vec::new();
    let mut pending: BTreeMap<TxId, TmOp> = BTreeMap::new();
    for te in h.iter() {
        match te.event {
            crate::event::Event::Invoke { tx, op, .. } => {
                pending.insert(tx, op);
            }
            crate::event::Event::Respond { tx, resp, .. } => {
                if let Some(op) = pending.remove(&tx) {
                    if committed.contains(&tx) {
                        match (op, resp) {
                            (TmOp::Read(x), TmResp::Value(_)) => {
                                accesses.push((te.time, tx, x, false))
                            }
                            (TmOp::Write(x, _), TmResp::Ok) => {
                                accesses.push((te.time, tx, x, true))
                            }
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let mut g: BTreeMap<TxId, HashSet<TxId>> = BTreeMap::new();
    for tx in &committed {
        g.entry(*tx).or_default();
    }
    for (i, &(_, ta, xa, wa)) in accesses.iter().enumerate() {
        for &(_, tb, xb, wb) in accesses.iter().skip(i + 1) {
            if ta != tb && xa == xb && (wa || wb) {
                g.entry(ta).or_default().insert(tb);
            }
        }
    }
    g
}

/// Returns `true` if the conflict graph of `h` is acyclic — a sound
/// certificate that `h` is serializable (ignoring commit-pending
/// transactions, which is safe: `H` is a commit-completion of itself).
pub fn conflict_serializable(h: &History) -> bool {
    let g = conflict_graph(h);
    // Kahn's algorithm.
    let mut indeg: HashMap<TxId, usize> = g.keys().map(|&k| (k, 0)).collect();
    for succs in g.values() {
        for s in succs {
            *indeg.entry(*s).or_insert(0) += 1;
        }
    }
    let mut queue: Vec<TxId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&k, _)| k)
        .collect();
    let mut seen = 0usize;
    while let Some(t) = queue.pop() {
        seen += 1;
        if let Some(succs) = g.get(&t) {
            for s in succs {
                let d = indeg.get_mut(s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(*s);
                }
            }
        }
    }
    seen == g.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryBuilder;

    fn t(p: u32, k: u32) -> TxId {
        TxId::new(p, k)
    }
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);
    const W: TVarId = TVarId(2);
    const Z: TVarId = TVarId(3);

    #[test]
    fn empty_history_serializable() {
        let h = History::new();
        assert!(serializable(&h, 16).is_serializable());
        assert!(conflict_serializable(&h));
    }

    #[test]
    fn single_committed_tx() {
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0).write(t(1, 0), X, 1).commit(t(1, 0));
        let h = b.build();
        assert!(serializable(&h, 16).is_serializable());
    }

    #[test]
    fn read_your_own_write() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 7).read(t(1, 0), X, 7).commit(t(1, 0));
        let h = b.build();
        assert!(serializable(&h, 16).is_serializable());
    }

    #[test]
    fn read_your_own_write_wrong_value_rejected() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 7).read(t(1, 0), X, 8).commit(t(1, 0));
        let h = b.build();
        assert_eq!(serializable(&h, 16), SerCheck::NotSerializable);
    }

    #[test]
    fn two_txs_need_reordering() {
        // T1 reads x=5; T2 writes x=5. Serial order must be T2, T1 even
        // though T1 completes first in H (basic serializability does not
        // preserve real-time order).
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 5).commit(t(1, 0));
        b.write(t(2, 0), X, 5).commit(t(2, 0));
        let h = b.build();
        match serializable(&h, 16) {
            SerCheck::Serializable { order, .. } => {
                assert_eq!(order, vec![t(2, 0), t(1, 0)]);
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn classic_lost_update_not_serializable() {
        // Both transactions read x=0 and write x=1, then both also read the
        // other's non-written variable to force a cycle:
        // T1: R(x)=0 W(y,1); T2: R(y)=0 W(x,1). Both commit.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0).write(t(1, 0), Y, 1);
        b.read(t(2, 0), Y, 0).write(t(2, 0), X, 1);
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        // Serial T1,T2: T2 reads y=1 ≠ 0. Serial T2,T1: T1 reads x=1 ≠ 0.
        assert_eq!(serializable(&h, 16), SerCheck::NotSerializable);
    }

    #[test]
    fn figure2_history_not_serializable() {
        // The paper's Figure 2 final history E_{p·2·s·3}:
        //   T1: R(w)=0, R(z)=0, W(x,1), W(y,1), tryC (commit-pending)
        //   T2: R(x)=0, W(w,1), committed
        //   T3: R(y)=1, W(z,1), committed
        // T3 reading y=1 forces T1 committed; then T1 must precede T3 and
        // T2; but T2 read x=0 so T2 must precede T1; and T1 read w=0 so T1
        // must precede T2 — contradiction.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), W, 0).read(t(1, 0), Z, 0);
        b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1);
        b.try_commit_pending(t(1, 0));
        b.read(t(2, 0), X, 0).write(t(2, 0), W, 1).commit(t(2, 0));
        b.read(t(3, 0), Y, 1).write(t(3, 0), Z, 1).commit(t(3, 0));
        let h = b.build();
        assert_eq!(serializable(&h, 16), SerCheck::NotSerializable);
    }

    #[test]
    fn figure2_history_with_t3_reading_zero_is_serializable() {
        // Same as above but T3 reads y=0 (T1 not yet visible): serializable
        // by NOT promoting commit-pending T1 — exactly the paper's point
        // that before the critical step s, T2/T3 must read 0.
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), W, 0).read(t(1, 0), Z, 0);
        b.write(t(1, 0), X, 1).write(t(1, 0), Y, 1);
        b.try_commit_pending(t(1, 0));
        b.read(t(2, 0), X, 0).write(t(2, 0), W, 1).commit(t(2, 0));
        b.read(t(3, 0), Y, 0).write(t(3, 0), Z, 1).commit(t(3, 0));
        let h = b.build();
        match serializable(&h, 16) {
            SerCheck::Serializable { promoted, .. } => assert!(promoted.is_empty()),
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn commit_pending_promotion_used_when_needed() {
        // T1 writes x=1 and is commit-pending; T2 reads x=1 and commits.
        // Only promoting T1 makes the history serializable.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).try_commit_pending(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        match serializable(&h, 16) {
            SerCheck::Serializable { promoted, order } => {
                assert_eq!(promoted, vec![t(1, 0)]);
                assert_eq!(order, vec![t(1, 0), t(2, 0)]);
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn aborted_tx_writes_invisible() {
        // T1 writes x=1 then deliberately aborts; T2 must read 0.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).abort(t(1, 0));
        b.read(t(2, 0), X, 0).commit(t(2, 0));
        let h = b.build();
        assert!(serializable(&h, 16).is_serializable());

        // If T2 had read 1, the history would NOT be serializable.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).abort(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        assert_eq!(serializable(&h, 16), SerCheck::NotSerializable);
    }

    #[test]
    fn conflict_serializable_agrees_on_simple_cases() {
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).commit(t(1, 0));
        b.read(t(2, 0), X, 1).commit(t(2, 0));
        let h = b.build();
        assert!(conflict_serializable(&h));
        assert!(serializable(&h, 16).is_serializable());
    }

    #[test]
    fn conflict_cycle_detected() {
        // Interleaved conflicting ops: T1 R(x) … T2 W(x) … T1 W(y) after
        // T2 R(y): cycle T1→T2 (x) and T2→T1 (y).
        let mut b = HistoryBuilder::new();
        b.read(t(1, 0), X, 0); // T1 R(x) at time 0..1
        b.read(t(2, 0), Y, 0); // T2 R(y)
        b.write(t(2, 0), X, 1); // T2 W(x): T1 →x T2
        b.write(t(1, 0), Y, 1); // T1 W(y): T2 →y T1
        b.commit(t(1, 0)).commit(t(2, 0));
        let h = b.build();
        assert!(!conflict_serializable(&h));
        // And indeed not serializable at all here:
        assert_eq!(serializable(&h, 16), SerCheck::NotSerializable);
    }

    #[test]
    fn too_large_falls_back() {
        let mut b = HistoryBuilder::new();
        for i in 0..20 {
            let tx = t(i, 0);
            b.write(tx, TVarId(u64::from(i)), 1).commit(tx);
        }
        let h = b.build();
        assert_eq!(serializable(&h, 10), SerCheck::TooLarge);
        assert!(conflict_serializable(&h));
    }

    #[test]
    fn blind_write_overwrite_order_found() {
        // T1 writes x=1, T2 writes x=2, T3 reads x=1: order must be
        // T2, T1, T3.
        let mut b = HistoryBuilder::new();
        b.write(t(1, 0), X, 1).commit(t(1, 0));
        b.write(t(2, 0), X, 2).commit(t(2, 0));
        b.read(t(3, 0), X, 1).commit(t(3, 0));
        let h = b.build();
        match serializable(&h, 16) {
            SerCheck::Serializable { order, .. } => {
                let pos = |id: TxId| order.iter().position(|&o| o == id).unwrap();
                // T3 must read T1's write: T1 before T3, and T2's overwrite
                // must not land between them.
                assert!(pos(t(1, 0)) < pos(t(3, 0)));
                assert!(pos(t(2, 0)) < pos(t(1, 0)) || pos(t(2, 0)) > pos(t(3, 0)));
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }
}
