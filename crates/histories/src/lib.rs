//! # oftm-histories — the formal model of *On Obstruction-Free Transactions*
//!
//! This crate implements, as executable Rust, the definitional machinery of
//! Guerraoui & Kapałka's SPAA 2008 paper:
//!
//! * the two-level event model of Section 2.1 (high-level TM operations vs
//!   low-level *steps* on base objects) — [`event`], [`history`];
//! * serializability, Definition 1 — [`serializability`];
//! * opacity and the opacity graph of Appendix B — [`opacity`];
//! * obstruction-freedom (Definition 2, step contention),
//!   ic-obstruction-freedom (Definition 3) and eventual
//!   ic-obstruction-freedom (Definition 4) — [`obstruction`];
//! * strict disjoint-access-parallelism, Definition 12 — [`dap`].
//!
//! Every STM implementation in the workspace (the DSTM-style OFTM in
//! `oftm-core`, Algorithm 2 in `oftm-algo2`, the lock-based baselines in
//! `oftm-baselines`, and the step-accurate models in `oftm-sim`) can emit
//! histories in this vocabulary, so a single set of checkers validates all
//! of them and regenerates the paper's claims.

pub mod dap;
pub mod event;
pub mod history;
pub mod ids;
pub mod obstruction;
pub mod opacity;
pub mod serializability;

pub use dap::{check_strict_dap, conflict_density, ConflictDensity, DapViolation};
pub use event::{Access, CompletedOp, Event, TmOp, TmResp};
pub use history::{well_formed, History, HistoryBuilder, TimedEvent, TxStatus, TxView};
pub use ids::{BaseObjId, ProcId, TVarId, TxId, Value};
pub use obstruction::{check_eventual_ic_of, check_ic_of, check_of, of_implies_ic_of, OfViolation};
pub use opacity::{final_state_opaque, opaque, OpacityCheck, OpacityGraph, OpgEdge};
pub use serializability::{
    conflict_graph, conflict_serializable, serializable, SerCheck, INITIAL_VALUE,
};
