//! The step-level machine abstraction and the exhaustive explorer.
//!
//! The paper's proofs (Theorem 9 in particular) reason about *complete
//! low-level histories*: totally ordered sequences of steps, extended one
//! step at a time by an adversarial scheduler, with crashes modelled as a
//! process never being scheduled again. A [`Machine`] is a protocol whose
//! per-process next step may be nondeterministic (base objects like
//! fo-consensus may *choose* to abort under contention); the explorer
//! enumerates every schedule × every nondeterministic choice, memoizing on
//! machine states, and computes for each reachable configuration the set of
//! decision values reachable from it — its *valency* in the sense of
//! \[14\] / Claim 10.

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// A protocol amenable to exhaustive step-level exploration.
///
/// States must be small, cloneable and hashable; one `step` = one shared
/// memory access (the paper's "step").
pub trait Machine: Clone + Eq + Hash {
    /// Number of processes.
    fn procs(&self) -> usize;

    /// Can process `p` take a step (not finished)?
    fn enabled(&self, p: usize) -> bool;

    /// Number of nondeterministic outcomes of `p`'s next step (≥ 1 when
    /// enabled). Outcome indices are passed back to [`Machine::step`].
    fn branching(&self, p: usize) -> usize;

    /// Executes one step of `p` with the chosen outcome.
    fn step(&mut self, p: usize, choice: usize);

    /// The value decided by `p`, if it has decided.
    fn decided(&self, p: usize) -> Option<u64>;
}

/// A (process, choice) edge label in the configuration graph.
pub type Move = (usize, usize);

/// Result of exhaustively exploring a machine's configuration graph.
pub struct Exploration<M: Machine> {
    /// Every reachable configuration, indexed.
    pub states: Vec<M>,
    /// Adjacency: for each state, the list of (move, successor index).
    pub edges: Vec<Vec<(Move, usize)>>,
    /// Index of the initial configuration.
    pub initial: usize,
    /// For each configuration: the set of values decided by *some* process
    /// in *some* configuration reachable from it (its valency set).
    pub valency: Vec<HashSet<u64>>,
}

/// Exhaustively explores `m`'s reachable configurations.
///
/// `max_states` bounds the search (panics when exceeded — raise it rather
/// than silently truncating, truncation would corrupt valency results).
pub fn explore<M: Machine>(m: M, max_states: usize) -> Exploration<M> {
    let mut index: HashMap<M, usize> = HashMap::new();
    let mut states: Vec<M> = Vec::new();
    let mut edges: Vec<Vec<(Move, usize)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    index.insert(m.clone(), 0);
    states.push(m);
    edges.push(Vec::new());
    queue.push_back(0);

    while let Some(i) = queue.pop_front() {
        let cur = states[i].clone();
        let mut out = Vec::new();
        for p in 0..cur.procs() {
            if !cur.enabled(p) {
                continue;
            }
            for choice in 0..cur.branching(p) {
                let mut next = cur.clone();
                next.step(p, choice);
                let j = match index.get(&next) {
                    Some(&j) => j,
                    None => {
                        let j = states.len();
                        assert!(
                            j < max_states,
                            "state space exceeds {max_states} configurations"
                        );
                        index.insert(next.clone(), j);
                        states.push(next);
                        edges.push(Vec::new());
                        queue.push_back(j);
                        j
                    }
                };
                out.push(((p, choice), j));
            }
        }
        edges[i] = out;
    }

    // Valency: propagate decided values backwards to fixpoint.
    let n = states.len();
    let mut valency: Vec<HashSet<u64>> = (0..n)
        .map(|i| {
            let s = &states[i];
            (0..s.procs()).filter_map(|p| s.decided(p)).collect()
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let mut add: Vec<u64> = Vec::new();
            for &(_, j) in &edges[i] {
                for &v in &valency[j] {
                    if !valency[i].contains(&v) {
                        add.push(v);
                    }
                }
            }
            if !add.is_empty() {
                valency[i].extend(add);
                changed = true;
            }
        }
    }

    Exploration {
        states,
        edges,
        initial: 0,
        valency,
    }
}

impl<M: Machine> Exploration<M> {
    /// Is configuration `i` bivalent (both 0-valent and 1-valent
    /// extensions exist)? Generalized: more than one distinct decision
    /// value reachable.
    pub fn bivalent(&self, i: usize) -> bool {
        self.valency[i].len() > 1
    }

    /// Count of bivalent configurations.
    pub fn bivalent_count(&self) -> usize {
        (0..self.states.len()).filter(|&i| self.bivalent(i)).count()
    }

    /// Claim 10 check: every bivalent configuration with at least one
    /// successor has a bivalent *proper extension*. Returns offending
    /// configurations (empty = the claim's inductive step holds on this
    /// machine).
    pub fn bivalent_extension_property(&self) -> Vec<usize> {
        (0..self.states.len())
            .filter(|&i| {
                self.bivalent(i)
                    && !self.edges[i].is_empty()
                    && !self.edges[i].iter().any(|&(_, j)| self.bivalent(j))
            })
            .collect()
    }

    /// Searches for a cycle within the bivalent subgraph — a witness of an
    /// infinite execution in which no process ever decides (the
    /// wait-freedom violation at the heart of Theorem 9's proof).
    ///
    /// Returns the cycle as a sequence of (state index, move) pairs, if one
    /// exists.
    pub fn bivalent_cycle(&self) -> Option<Vec<(usize, Move)>> {
        // Iterative DFS with colors over the bivalent subgraph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.states.len();
        let mut color = vec![Color::White; n];
        let mut parent: Vec<Option<(usize, Move)>> = vec![None; n];

        for start in 0..n {
            if !self.bivalent(start) || color[start] != Color::White {
                continue;
            }
            // Stack of (node, next-edge-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Grey;
            while let Some(&(u, ei)) = stack.last() {
                let mut pushed = false;
                let mut next_ei = ei;
                while next_ei < self.edges[u].len() {
                    let (mv, v) = self.edges[u][next_ei];
                    next_ei += 1;
                    if !self.bivalent(v) {
                        continue;
                    }
                    match color[v] {
                        Color::Grey => {
                            // Found a cycle: unwind from u back to v.
                            let mut cycle = vec![(u, mv)];
                            let mut cur = u;
                            while cur != v {
                                let (pu, pmv) = parent[cur].expect("grey chain");
                                cycle.push((pu, pmv));
                                cur = pu;
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::White => {
                            color[v] = Color::Grey;
                            parent[v] = Some((u, mv));
                            stack.last_mut().expect("non-empty").1 = next_ei;
                            stack.push((v, 0));
                            pushed = true;
                            break;
                        }
                        Color::Black => {}
                    }
                }
                if !pushed {
                    stack.last_mut().expect("non-empty").1 = next_ei;
                    if next_ei >= self.edges[u].len() {
                        color[u] = Color::Black;
                        stack.pop();
                    }
                }
            }
        }
        None
    }

    /// All terminal configurations (no enabled process) and their decision
    /// vectors. Used to verify agreement/validity over every schedule.
    pub fn terminals(&self) -> Vec<(usize, Vec<Option<u64>>)> {
        (0..self.states.len())
            .filter(|&i| self.edges[i].is_empty())
            .map(|i| {
                let s = &self.states[i];
                (i, (0..s.procs()).map(|p| s.decided(p)).collect())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy machine: each of 2 processes takes one step and decides its
    /// process id; used to validate the explorer plumbing.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Toy {
        done: [bool; 2],
    }

    impl Machine for Toy {
        fn procs(&self) -> usize {
            2
        }
        fn enabled(&self, p: usize) -> bool {
            !self.done[p]
        }
        fn branching(&self, _p: usize) -> usize {
            1
        }
        fn step(&mut self, p: usize, _c: usize) {
            self.done[p] = true;
        }
        fn decided(&self, p: usize) -> Option<u64> {
            self.done[p].then_some(p as u64)
        }
    }

    #[test]
    fn toy_explored_fully() {
        let e = explore(
            Toy {
                done: [false, false],
            },
            100,
        );
        assert_eq!(e.states.len(), 4);
        // Initial can reach both decisions → bivalent in the generalized
        // sense.
        assert!(e.bivalent(e.initial));
        // Terminal config decides both.
        let terms = e.terminals();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].1, vec![Some(0), Some(1)]);
        // No cycle: the toy always terminates.
        assert!(e.bivalent_cycle().is_none());
    }

    /// A machine with a genuine livelock: a process may loop forever
    /// between two states before deciding 0 or 1 (adversarial choice).
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Loopy {
        phase: u8, // 0 <-> 1 loop; 2/3 = decided 0/1
    }

    impl Machine for Loopy {
        fn procs(&self) -> usize {
            1
        }
        fn enabled(&self, _p: usize) -> bool {
            self.phase < 2
        }
        fn branching(&self, _p: usize) -> usize {
            if self.phase == 1 {
                3 // loop back, decide 0, decide 1
            } else {
                1
            }
        }
        fn step(&mut self, _p: usize, c: usize) {
            self.phase = match (self.phase, c) {
                (0, _) => 1,
                (1, 0) => 0,
                (1, 1) => 2,
                (1, _) => 3,
                _ => unreachable!(),
            };
        }
        fn decided(&self, _p: usize) -> Option<u64> {
            match self.phase {
                2 => Some(0),
                3 => Some(1),
                _ => None,
            }
        }
    }

    #[test]
    fn loopy_has_bivalent_cycle() {
        let e = explore(Loopy { phase: 0 }, 100);
        assert!(e.bivalent(e.initial));
        let cycle = e.bivalent_cycle().expect("must find the 0<->1 loop");
        assert!(cycle.len() >= 2);
        // Every state on the cycle is bivalent.
        for &(s, _) in &cycle {
            assert!(e.bivalent(s));
        }
        // And the bivalent-extension property holds (Claim 10 inductive
        // step): bivalent states always have a bivalent successor here.
        assert!(e.bivalent_extension_property().is_empty());
    }

    #[test]
    #[should_panic(expected = "state space exceeds")]
    fn state_cap_is_loud() {
        let _ = explore(
            Toy {
                done: [false, false],
            },
            2,
        );
    }
}
