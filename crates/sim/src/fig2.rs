//! The Figure 2 scenario: executable reconstruction of Theorem 13's proof
//! (no OFTM is strictly disjoint-access-parallel).
//!
//! The proof builds the low-level history `E_{p·2·s·3}`:
//!
//! 1. `E_1`: transaction `T1` (`R(w) R(z) W(x,1) W(y,1) tryC`) runs alone
//!    and would commit.
//! 2. `E_p`: the longest prefix of `E_1` after which neither `T2` reading
//!    `x = 1` nor `T3` reading `y = 1` can be extended-and-committed; the
//!    next step `s` of `T1` is the **critical step**.
//! 3. `E_{p·2}`: suspend `p1` at the end of `E_p`; run `T2`
//!    (`R(x) W(w,1) tryC`) to completion — it must commit on its own
//!    (obstruction-freedom) and reads `x = 0`.
//! 4. `E_{p·2·s}`: let `p1` execute the single critical step `s`.
//! 5. `E_{p·2·s·3}`: run `T3` (`R(y) W(z,1) tryC`) to completion.
//!
//! For a *strictly DAP* OFTM, `T3` could not observe anything `T2` did
//! (disjoint t-variables ⇒ disjoint base objects), so it would read `y = 1`
//! as it does in `E_{p·s·3}` — and the resulting history is not
//! serializable. A real OFTM escapes the contradiction precisely by
//! violating strict DAP: [`fig2_scan`] exhibits, for every suspension
//! point, either a serializable outcome (with T3 reading 0) **plus** a
//! strict-DAP violation (T2 and T3 both touching T1's descriptor), or — if
//! one filters those conflicts away — the non-serializable history the
//! theorem derives.

use crate::sim_dstm::{ScriptOp, SimDstm, SimStatus};
use oftm_histories::{
    check_strict_dap, serializable, DapViolation, History, SerCheck, TmOp, TmResp, TxId,
};

const W: usize = 0;
const X: usize = 1;
const Y: usize = 2;
const Z: usize = 3;

/// The three Figure 2 transactions.
pub fn fig2_scripts() -> Vec<Vec<ScriptOp>> {
    vec![
        vec![
            ScriptOp::Read(W),
            ScriptOp::Read(Z),
            ScriptOp::Write(X, 1),
            ScriptOp::Write(Y, 1),
            ScriptOp::TryCommit,
        ],
        vec![
            ScriptOp::Read(X),
            ScriptOp::Write(W, 1),
            ScriptOp::TryCommit,
        ],
        vec![
            ScriptOp::Read(Y),
            ScriptOp::Write(Z, 1),
            ScriptOp::TryCommit,
        ],
    ]
}

/// Outcome of one suspension-point run.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Number of solo steps `T1` executed before being suspended.
    pub prefix_len: usize,
    /// Value `T2` read from `x`.
    pub t2_read_x: Option<u64>,
    /// Value `T3` read from `y`.
    pub t3_read_y: Option<u64>,
    pub t1_committed: bool,
    pub t2_committed: bool,
    pub t3_committed: bool,
    /// Is the full history serializable (exact check)?
    pub serializable: bool,
    /// Strict-DAP violations between T2 and T3 (the unrelated pair).
    pub t2_t3_violations: Vec<DapViolation>,
    pub history: History,
}

fn read_value(h: &History, tx: TxId, var: u64) -> Option<u64> {
    h.tx_views().get(&tx).and_then(|v| {
        v.ops.iter().find_map(|c| match (c.op, c.resp) {
            (TmOp::Read(x), TmResp::Value(val)) if x.0 == var => Some(val),
            _ => None,
        })
    })
}

/// Runs the paper's construction for every suspension point `t` of `T1`
/// (0 ≤ t ≤ solo length): `T1` runs `t` steps, `T2` runs to completion,
/// `T1` takes one more step (the candidate critical step `s`, when it has
/// one left), then `T3` runs to completion.
pub fn fig2_scan() -> Vec<Fig2Row> {
    let solo = {
        let m = SimDstm::new(vec![0; 4], fig2_scripts());
        m.solo_steps_remaining(0)
    };
    let mut rows = Vec::new();
    for prefix in 0..=solo {
        let mut m = SimDstm::new(vec![0; 4], fig2_scripts());
        for _ in 0..prefix {
            if m.enabled(0) {
                m.step(0);
            }
        }
        // p1 suspended; T2 runs alone and must complete (obstruction-
        // freedom: p1 takes no steps).
        m.run_to_completion(1);
        // The candidate critical step s of p1.
        if m.enabled(0) {
            m.step(0);
        }
        // T3 runs alone to completion.
        m.run_to_completion(2);
        // p1 never runs again: record it as crashed (Section 2.1's model of
        // a suspended process).
        if m.enabled(0) {
            m.record_crash(0);
        }

        let h = m.history.clone();
        let ser = serializable(&h, 8);
        let dap = check_strict_dap(&h);
        let t2 = TxId::new(2, 0);
        let t3 = TxId::new(3, 0);
        rows.push(Fig2Row {
            prefix_len: prefix,
            t2_read_x: read_value(&h, t2, X as u64),
            t3_read_y: read_value(&h, t3, Y as u64),
            t1_committed: m.status_of(0) == SimStatus::Committed,
            t2_committed: m.status_of(1) == SimStatus::Committed,
            t3_committed: m.status_of(2) == SimStatus::Committed,
            serializable: !matches!(ser, SerCheck::NotSerializable),
            t2_t3_violations: dap
                .into_iter()
                .filter(|v| (v.tx_a == t2 && v.tx_b == t3) || (v.tx_a == t3 && v.tx_b == t2))
                .collect(),
            history: h,
        });
    }
    rows
}

/// Summary of the scan: the paper-level conclusions.
#[derive(Clone, Debug, Default)]
pub struct Fig2Summary {
    pub rows: usize,
    /// Runs where T2 and T3 (disjoint t-variables) conflicted on a common
    /// base object — strict-DAP violations (expected > 0: Theorem 13).
    pub runs_with_t2_t3_conflict: usize,
    /// Runs whose full history failed serializability (expected 0: the
    /// implementation is safe *because* it violates strict DAP).
    pub non_serializable_runs: usize,
    /// Runs where T3 read y = 1 (possible only after T1's critical commit
    /// step).
    pub t3_read_one_runs: usize,
}

pub fn summarize(rows: &[Fig2Row]) -> Fig2Summary {
    Fig2Summary {
        rows: rows.len(),
        runs_with_t2_t3_conflict: rows
            .iter()
            .filter(|r| !r.t2_t3_violations.is_empty())
            .count(),
        non_serializable_runs: rows.iter().filter(|r| !r.serializable).count(),
        t3_read_one_runs: rows.iter().filter(|r| r.t3_read_y == Some(1)).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_produces_rows_and_all_serializable() {
        let rows = fig2_scan();
        assert!(rows.len() > 5);
        for r in &rows {
            assert!(
                r.t2_committed,
                "T2 must commit solo (prefix {})",
                r.prefix_len
            );
            assert!(
                r.t3_committed,
                "T3 must commit solo (prefix {})",
                r.prefix_len
            );
            assert!(
                r.serializable,
                "non-serializable run at prefix {}:\n{}",
                r.prefix_len,
                r.history.render()
            );
        }
    }

    #[test]
    fn t2_reads_zero_until_t1_commits() {
        // The paper's case analysis: before T1's (critical) commit step,
        // T2 can only read x = 0; once T1 committed (the final prefix), it
        // must read 1 — otherwise serializability would break.
        for r in fig2_scan() {
            if r.t1_committed {
                assert_eq!(r.t2_read_x, Some(1), "prefix {}", r.prefix_len);
            } else {
                assert_eq!(r.t2_read_x, Some(0), "prefix {}", r.prefix_len);
            }
        }
    }

    #[test]
    fn dstm_violates_strict_dap_somewhere() {
        // Theorem 13, concretely: some suspension point makes the
        // t-variable-disjoint pair (T2, T3) conflict on a shared base
        // object — T1's transaction descriptor.
        let s = summarize(&fig2_scan());
        assert!(
            s.runs_with_t2_t3_conflict > 0,
            "expected descriptor hot-spot conflicts, got none"
        );
        assert_eq!(s.non_serializable_runs, 0);
    }

    #[test]
    fn conflict_object_is_t1s_descriptor() {
        // The shared object on which T2 and T3 collide is T1's status word
        // (base id 2000 + 0).
        let rows = fig2_scan();
        let witness = rows
            .iter()
            .flat_map(|r| r.t2_t3_violations.iter())
            .next()
            .expect("at least one violation");
        assert_eq!(
            witness.obj.0, 2000,
            "expected T1's descriptor, got {witness:?}"
        );
    }

    #[test]
    fn t1_commits_only_when_suspended_after_its_commit_step() {
        // T1 can appear committed only in the final row (it executed its
        // whole program, commit CAS included, before suspension). In every
        // earlier row T2 read x = 0 and committed, so T1 must never commit
        // afterwards — the implementation guarantees this by T2 having
        // aborted T1 when resolving x.
        let rows = fig2_scan();
        let last = rows.len() - 1;
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.t1_committed, i == last, "prefix {}", r.prefix_len);
        }
    }

    #[test]
    fn t3_reads_one_exactly_when_t1_committed() {
        // In the real (non-strictly-DAP) DSTM, T2's abort of T1 is visible
        // to T3 through T1's descriptor, so T3 reads y = 0 in every row
        // where T1 was killed — escaping the contradiction exactly as
        // Section 5 describes. Only the final row (T1 already committed)
        // lets T3 read 1.
        let rows = fig2_scan();
        for r in &rows {
            assert_eq!(
                r.t3_read_y == Some(1),
                r.t1_committed,
                "prefix {}",
                r.prefix_len
            );
        }
        let s = summarize(&rows);
        assert_eq!(s.t3_read_one_runs, 1);
    }
}
