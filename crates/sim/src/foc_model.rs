//! Step-accurate model of fo-consensus base objects and the retry-based
//! consensus protocol over them — the machinery behind Theorem 9's
//! exploration (experiment E3).
//!
//! A `propose` spans **two steps** (its invocation and its response), as in
//! the proof of Theorem 9 where overlapping proposes such as
//! `[c.propose(p1, ⊥), c.propose(p3, ⊥)]` appear and "one or both of them
//! may abort". The model's response step is nondeterministic exactly where
//! the spec permits:
//!
//! * decided already → must return the decision (1 outcome);
//! * no step contention during the operation → must decide (1 outcome,
//!   fo-obstruction-freedom);
//! * step contention → the adversary chooses: abort (`⊥`) or decide
//!   (2 outcomes).

use crate::machine::Machine;
use std::collections::BTreeMap;

/// State of one fo-consensus base object in the model.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FocCellModel {
    pub decided: Option<u64>,
    /// Pending proposes: proc → (value, saw-contention).
    pub pending: BTreeMap<usize, (u64, bool)>,
}

impl FocCellModel {
    /// A step by `p` (anywhere in the system) contends with every pending
    /// propose of other processes.
    pub fn mark_step_by(&mut self, p: usize) {
        for (q, (_, contended)) in self.pending.iter_mut() {
            if *q != p {
                *contended = true;
            }
        }
    }

    /// Invocation step of `propose(v)` by `p`.
    pub fn invoke(&mut self, p: usize, v: u64) {
        let prev = self.pending.insert(p, (v, false));
        debug_assert!(prev.is_none(), "propose already pending at p{p}");
    }

    /// Number of legal outcomes of `p`'s response step.
    pub fn response_branching(&self, p: usize) -> usize {
        let (_, contended) = self.pending[&p];
        if self.decided.is_some() || !contended {
            1
        } else {
            2
        }
    }

    /// Response step of `p` with the chosen outcome. Returns the decision
    /// (`Some`) or `None` for `⊥`.
    pub fn respond(&mut self, p: usize, choice: usize) -> Option<u64> {
        let (v, contended) = self.pending.remove(&p).expect("no pending propose");
        match self.decided {
            Some(d) => Some(d),
            None if !contended => {
                // fo-obstruction-freedom: must decide.
                self.decided = Some(v);
                Some(v)
            }
            None => {
                if choice == 0 {
                    None // ⊥, allowed under contention
                } else {
                    self.decided = Some(v);
                    Some(v)
                }
            }
        }
    }
}

/// Per-process protocol state for retry-based consensus over one foc.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RetryState {
    /// About to (re-)invoke propose.
    Ready,
    /// Propose invoked, awaiting response.
    Pending,
    /// Decided.
    Done(u64),
}

/// The natural protocol: `loop { if let Some(d) = foc.propose(v) { decide d } }`
/// for `n` processes over a single fo-consensus object.
///
/// Safety (agreement + fo-validity) holds for every schedule; wait-freedom
/// does **not** — the explorer exhibits a bivalent cycle (lockstep mutual
/// aborts), the concrete counterpart of Theorem 9's infinite bivalent
/// history.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FocRetryConsensus {
    pub cell: FocCellModel,
    pub procs: Vec<RetryState>,
    pub inputs: Vec<u64>,
}

impl FocRetryConsensus {
    pub fn new(inputs: Vec<u64>) -> Self {
        FocRetryConsensus {
            cell: FocCellModel::default(),
            procs: vec![RetryState::Ready; inputs.len()],
            inputs,
        }
    }
}

impl Machine for FocRetryConsensus {
    fn procs(&self) -> usize {
        self.procs.len()
    }

    fn enabled(&self, p: usize) -> bool {
        !matches!(self.procs[p], RetryState::Done(_))
    }

    fn branching(&self, p: usize) -> usize {
        match self.procs[p] {
            RetryState::Ready => 1,
            RetryState::Pending => self.cell.response_branching(p),
            RetryState::Done(_) => 0,
        }
    }

    fn step(&mut self, p: usize, choice: usize) {
        match self.procs[p] {
            RetryState::Ready => {
                self.cell.mark_step_by(p);
                self.cell.invoke(p, self.inputs[p]);
                self.procs[p] = RetryState::Pending;
            }
            RetryState::Pending => {
                self.cell.mark_step_by(p);
                self.procs[p] = match self.cell.respond(p, choice) {
                    Some(d) => RetryState::Done(d),
                    None => RetryState::Ready,
                };
            }
            RetryState::Done(_) => unreachable!("step on decided process"),
        }
    }

    fn decided(&self, p: usize) -> Option<u64> {
        match self.procs[p] {
            RetryState::Done(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::explore;

    #[test]
    fn solo_propose_must_decide() {
        // One process: no contention ever, so the propose must decide own
        // value in exactly two steps.
        let e = explore(FocRetryConsensus::new(vec![7]), 1000);
        for (_, decisions) in e.terminals() {
            assert_eq!(decisions, vec![Some(7)]);
        }
        assert!(e.bivalent_cycle().is_none());
    }

    #[test]
    fn two_procs_agreement_on_all_terminals() {
        let e = explore(FocRetryConsensus::new(vec![0, 1]), 100_000);
        for (i, decisions) in e.terminals() {
            let vals: Vec<u64> = decisions.iter().filter_map(|d| *d).collect();
            assert!(!vals.is_empty(), "terminal without decisions at {i}");
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "agreement violated in terminal {i}: {decisions:?}"
            );
        }
    }

    #[test]
    fn two_procs_already_livelock_under_adversarial_foc() {
        // The naive retry protocol livelocks even for n = 2 against an
        // adversarial foc (mutual aborts in lockstep): this is why [6]'s
        // 2-process consensus needs a cleverer algorithm, and our threaded
        // implementations rely on their foc's benign behaviour.
        let e = explore(FocRetryConsensus::new(vec![0, 1]), 100_000);
        assert!(e.bivalent(e.initial));
        assert!(e.bivalent_cycle().is_some());
    }

    #[test]
    fn three_procs_bivalent_cycle_exists() {
        // Theorem 9's executable counterpart: a bivalent infinite execution.
        let e = explore(FocRetryConsensus::new(vec![0, 1, 1]), 1_000_000);
        assert!(e.bivalent(e.initial), "initial configuration is bivalent");
        let cycle = e.bivalent_cycle().expect("bivalent cycle must exist");
        for &(s, _) in &cycle {
            assert!(e.bivalent(s));
        }
    }

    #[test]
    fn bivalent_extension_property_holds() {
        // Claim 10's inductive step, verified exhaustively on this model:
        // every bivalent configuration has a bivalent proper extension.
        let e = explore(FocRetryConsensus::new(vec![0, 1, 1]), 1_000_000);
        assert!(e.bivalent_extension_property().is_empty());
    }

    #[test]
    fn uncontended_response_is_deterministic() {
        let mut cell = FocCellModel::default();
        cell.invoke(0, 9);
        assert_eq!(cell.response_branching(0), 1);
        assert_eq!(cell.respond(0, 0), Some(9));
        assert_eq!(cell.decided, Some(9));
    }

    #[test]
    fn contended_response_may_abort() {
        let mut cell = FocCellModel::default();
        cell.invoke(0, 9);
        cell.mark_step_by(1); // someone else stepped
        assert_eq!(cell.response_branching(0), 2);
        let mut c2 = cell.clone();
        assert_eq!(cell.respond(0, 0), None); // abort branch
        assert_eq!(cell.decided, None);
        assert_eq!(c2.respond(0, 1), Some(9)); // decide branch
    }

    #[test]
    fn decided_cell_forces_adoption() {
        let mut cell = FocCellModel::default();
        cell.invoke(0, 9);
        assert_eq!(cell.respond(0, 0), Some(9));
        cell.invoke(1, 5);
        cell.mark_step_by(2);
        assert_eq!(cell.response_branching(1), 1);
        assert_eq!(cell.respond(1, 0), Some(9));
    }
}
