//! A step-accurate, deterministic model of the DSTM-style OFTM.
//!
//! Unlike the threaded implementation in `oftm-core`, every base-object
//! access here is one explicit simulator step under a schedule chosen by
//! the caller, and every step is recorded into an `oftm-histories`
//! [`History`]. This is the plane where the paper's step-indexed arguments
//! can be replayed *exactly*: Figure 2's `E_{p·2·s·3}` construction
//! (see [`crate::fig2`]), obstruction-freedom checks on adversarial
//! schedules, and serializability of every interleaving of small
//! workloads.
//!
//! The model is faithful to Section 1's DSTM description: t-variables hold
//! a (owner, last-committed, tentative) triple plus an acquisition counter
//! (standing in for locator identity), transactions have a status word that
//! anyone may CAS from Live to Aborted, reads are invisible and validated
//! against the acquisition counter + owner status on every access and at
//! commit.

use oftm_histories::{
    Access, BaseObjId, Event, History, ProcId, TVarId, TmOp, TmResp, TxId, Value,
};

/// One scripted operation of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptOp {
    Read(usize),
    Write(usize, Value),
    TryCommit,
}

/// Status of a simulated transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimStatus {
    Live,
    Committed,
    Aborted,
}

/// How a read resolved, for validation purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Old,
    New,
    Mine,
}

#[derive(Clone, Debug)]
struct SimVar {
    owner: Option<usize>,
    committed: Value,
    tentative: Value,
    /// Acquisition counter — the model's locator identity.
    acq: u64,
}

/// Micro-program-counter within the current operation.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Micro {
    /// About to issue the next operation's invocation (a local event,
    /// bundled with the first base access).
    StartOp,
    /// Read/write path: examining the variable (may loop via AbortOwner).
    Examine,
    /// Forcefully abort the variable's live owner (CAS on their status).
    AbortOwner(usize),
    /// Acquire the variable for writing (CAS on the var cell).
    AcquireWrite,
    /// Validate read-set entry `i`, then continue with `next`.
    Validate(usize, Box<Micro>),
    /// Read path: push entry + respond. Carries the value, class and
    /// acquisition count captured at examine time (a later interposition
    /// must be caught by validation, not masked by re-reading `acq`).
    FinishRead(Value, Class, u64),
    /// Write path: respond ok.
    FinishWrite,
    /// Commit path: the status CAS.
    CommitCas,
}

/// The simulated DSTM running a fixed set of scripted transactions.
#[derive(Clone, Debug)]
pub struct SimDstm {
    vars: Vec<SimVar>,
    status: Vec<SimStatus>,
    scripts: Vec<Vec<ScriptOp>>,
    /// Per transaction: index of the current op.
    op_idx: Vec<usize>,
    micro: Vec<Micro>,
    read_sets: Vec<Vec<(usize, u64, Class)>>,
    /// Completed (responded C/A) transactions.
    done: Vec<bool>,
    pub history: History,
}

impl SimDstm {
    /// `initials[v]` is the initial value of variable `v`; `scripts[t]` the
    /// program of transaction `t` (executed by process `t + 1`).
    pub fn new(initials: Vec<Value>, scripts: Vec<Vec<ScriptOp>>) -> Self {
        let n = scripts.len();
        SimDstm {
            vars: initials
                .into_iter()
                .map(|v| SimVar {
                    owner: None,
                    committed: v,
                    tentative: v,
                    acq: 0,
                })
                .collect(),
            status: vec![SimStatus::Live; n],
            scripts,
            op_idx: vec![0; n],
            micro: vec![Micro::StartOp; n],
            read_sets: vec![Vec::new(); n],
            done: vec![false; n],
            history: History::new(),
        }
    }

    fn tx_id(t: usize) -> TxId {
        TxId::new(t as u32 + 1, 0)
    }

    fn proc_id(t: usize) -> ProcId {
        ProcId(t as u32 + 1)
    }

    fn var_base(v: usize) -> BaseObjId {
        BaseObjId(1000 + v as u64)
    }

    fn status_base(t: usize) -> BaseObjId {
        BaseObjId(2000 + t as u64)
    }

    /// Is transaction `t` still able to take steps?
    pub fn enabled(&self, t: usize) -> bool {
        !self.done[t]
    }

    pub fn all_done(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    pub fn status_of(&self, t: usize) -> SimStatus {
        self.status[t]
    }

    /// Committed value of variable `v` (oracle).
    pub fn committed_value(&self, v: usize) -> Value {
        let var = &self.vars[v];
        match var.owner {
            Some(o) if self.status[o] == SimStatus::Committed => var.tentative,
            _ => var.committed,
        }
    }

    fn record_step(&mut self, t: usize, obj: BaseObjId, access: Access) {
        self.history.push(Event::Step {
            proc: Self::proc_id(t),
            tx: Some(Self::tx_id(t)),
            obj,
            access,
        });
    }

    fn record_invoke(&mut self, t: usize, op: TmOp) {
        self.history.push(Event::Invoke {
            proc: Self::proc_id(t),
            tx: Self::tx_id(t),
            op,
        });
    }

    fn record_respond(&mut self, t: usize, resp: TmResp) {
        self.history.push(Event::Respond {
            proc: Self::proc_id(t),
            tx: Self::tx_id(t),
            resp,
        });
        if matches!(resp, TmResp::Committed | TmResp::Aborted) {
            self.done[t] = true;
        }
    }

    /// Marks process `t + 1` as crashed in the history (scheduler-level
    /// bookkeeping; the paper models a suspended process as crashed when it
    /// never takes another step).
    pub fn record_crash(&mut self, t: usize) {
        self.history.push(Event::Crash {
            proc: Self::proc_id(t),
        });
    }

    fn resolve(&self, v: usize, me: usize) -> (Value, Class) {
        let var = &self.vars[v];
        match var.owner {
            Some(o) if o == me => (var.tentative, Class::Mine),
            Some(o) if self.status[o] == SimStatus::Committed => (var.tentative, Class::New),
            _ => (var.committed, Class::Old),
        }
    }

    fn current_class(&self, v: usize, me: usize) -> (u64, Class) {
        let var = &self.vars[v];
        let class = match var.owner {
            Some(o) if o == me => Class::Mine,
            Some(o) if self.status[o] == SimStatus::Committed => Class::New,
            _ => Class::Old,
        };
        (var.acq, class)
    }

    fn abort_self(&mut self, t: usize) {
        // One step: CAS own status Live → Aborted (can only fail if a peer
        // already aborted us; either way we are Aborted afterwards).
        if self.status[t] == SimStatus::Live {
            self.status[t] = SimStatus::Aborted;
            self.record_step(t, Self::status_base(t), Access::Modify);
        } else {
            self.record_step(t, Self::status_base(t), Access::Read);
        }
        self.record_respond(t, TmResp::Aborted);
    }

    /// Executes exactly one step (one base-object access) of transaction
    /// `t`. Panics if `t` is not enabled.
    pub fn step(&mut self, t: usize) {
        assert!(self.enabled(t), "step on completed transaction T{t}");
        let op = self.scripts[t][self.op_idx[t]];

        // A forcefully-aborted transaction observes its fate at its next
        // step (the own-status read is folded into that step).
        if self.status[t] == SimStatus::Aborted {
            if self.micro[t] == Micro::StartOp {
                self.record_invoke(
                    t,
                    match op {
                        ScriptOp::Read(v) => TmOp::Read(TVarId(v as u64)),
                        ScriptOp::Write(v, val) => TmOp::Write(TVarId(v as u64), val),
                        ScriptOp::TryCommit => TmOp::TryCommit,
                    },
                );
            }
            self.record_step(t, Self::status_base(t), Access::Read);
            self.record_respond(t, TmResp::Aborted);
            return;
        }

        match std::mem::replace(&mut self.micro[t], Micro::StartOp) {
            Micro::StartOp => match op {
                ScriptOp::Read(v) => {
                    self.record_invoke(t, TmOp::Read(TVarId(v as u64)));
                    self.micro[t] = Micro::Examine;
                    // The invocation itself is local; the first base access
                    // happens on the next step. To keep schedules short we
                    // bundle the first examine here:
                    self.examine_step(t, v, false);
                }
                ScriptOp::Write(v, val) => {
                    self.record_invoke(t, TmOp::Write(TVarId(v as u64), val));
                    self.micro[t] = Micro::Examine;
                    self.examine_step(t, v, true);
                }
                ScriptOp::TryCommit => {
                    self.record_invoke(t, TmOp::TryCommit);
                    self.micro[t] = self.first_validation(t, Micro::CommitCas);
                    // Validation/CAS happens on subsequent steps; but if
                    // there is nothing to validate we can CAS right away on
                    // the next step. (This step consumed the own-status
                    // read.)
                    self.record_step(t, Self::status_base(t), Access::Read);
                }
            },
            Micro::Examine => {
                let v = match op {
                    ScriptOp::Read(v) | ScriptOp::Write(v, _) => v,
                    ScriptOp::TryCommit => unreachable!(),
                };
                self.examine_step(t, v, matches!(op, ScriptOp::Write(..)));
            }
            Micro::AbortOwner(o) => {
                // CAS the owner's status Live → Aborted.
                if self.status[o] == SimStatus::Live {
                    self.status[o] = SimStatus::Aborted;
                    self.record_step(t, Self::status_base(o), Access::Modify);
                } else {
                    self.record_step(t, Self::status_base(o), Access::Read);
                }
                self.micro[t] = Micro::Examine;
            }
            Micro::AcquireWrite => {
                let (v, val) = match op {
                    ScriptOp::Write(v, val) => (v, val),
                    _ => unreachable!(),
                };
                // The CAS: still unowned-or-settled? (In a sequential
                // simulator the examine/acquire pair is atomic unless the
                // scheduler interposed another transaction, in which case
                // we re-examine.)
                let var = &self.vars[v];
                let contended =
                    matches!(var.owner, Some(o) if o != t && self.status[o] == SimStatus::Live);
                if contended {
                    self.record_step(t, Self::var_base(v), Access::Read);
                    self.micro[t] = Micro::Examine;
                    return;
                }
                let (cur, _) = self.resolve(v, t);
                let acq = {
                    let var = &mut self.vars[v];
                    var.committed = cur;
                    var.tentative = val;
                    var.owner = Some(t);
                    var.acq += 1;
                    var.acq
                };
                self.record_step(t, Self::var_base(v), Access::Modify);
                // Upgrade any read entry on v to ownership.
                for e in self.read_sets[t].iter_mut() {
                    if e.0 == v {
                        e.1 = acq;
                        e.2 = Class::Mine;
                    }
                }
                self.micro[t] = self.first_validation(t, Micro::FinishWrite);
                if matches!(self.micro[t], Micro::FinishWrite) {
                    // Nothing to validate: finish on this same step.
                    self.record_respond(t, TmResp::Ok);
                    self.micro[t] = Micro::StartOp;
                    self.op_idx[t] += 1;
                }
            }
            Micro::Validate(i, next) => {
                let (v, acq, class) = self.read_sets[t][i];
                self.record_step(t, Self::var_base(v), Access::Read);
                let (cur_acq, cur_class) = self.current_class(v, t);
                if cur_acq != acq || cur_class != class {
                    self.abort_self(t);
                    return;
                }
                let more = i + 1 < self.read_sets[t].len();
                self.micro[t] = if more {
                    Micro::Validate(i + 1, next)
                } else {
                    *next
                };
                // Terminal validations complete the op on the next step.
            }
            Micro::FinishRead(val, class, acq) => {
                let v = match op {
                    ScriptOp::Read(v) => v,
                    _ => unreachable!(),
                };
                if class != Class::Mine {
                    self.read_sets[t].push((v, acq, class));
                }
                self.record_step(t, Self::var_base(v), Access::Read);
                self.record_respond(t, TmResp::Value(val));
                self.micro[t] = Micro::StartOp;
                self.op_idx[t] += 1;
            }
            Micro::FinishWrite => {
                self.record_step(t, Self::status_base(t), Access::Read);
                self.record_respond(t, TmResp::Ok);
                self.micro[t] = Micro::StartOp;
                self.op_idx[t] += 1;
            }
            Micro::CommitCas => {
                if self.status[t] == SimStatus::Live {
                    self.status[t] = SimStatus::Committed;
                    self.record_step(t, Self::status_base(t), Access::Modify);
                    self.record_respond(t, TmResp::Committed);
                } else {
                    self.record_step(t, Self::status_base(t), Access::Read);
                    self.record_respond(t, TmResp::Aborted);
                }
            }
        }
    }

    /// Begins validation of the read-set, or falls through to `next` if the
    /// read-set is empty.
    fn first_validation(&self, t: usize, next: Micro) -> Micro {
        if self.read_sets[t].is_empty() {
            next
        } else {
            Micro::Validate(0, Box::new(next))
        }
    }

    /// One examination step of variable `v`: read the cell; dispatch on the
    /// owner's status.
    fn examine_step(&mut self, t: usize, v: usize, for_write: bool) {
        self.record_step(t, Self::var_base(v), Access::Read);
        let owner = self.vars[v].owner;
        // Resolving a foreign-owned variable always dereferences the
        // owner's descriptor — the indirection Section 5 identifies as the
        // hot spot.
        if let Some(o) = owner {
            if o != t {
                self.record_step(t, Self::status_base(o), Access::Read);
            }
        }
        match owner {
            Some(o) if o != t && self.status[o] == SimStatus::Live => {
                // Live foreign owner: (aggressive manager) abort it next.
                self.micro[t] = Micro::AbortOwner(o);
            }
            _ => {
                if for_write {
                    if owner == Some(t) {
                        // Already own it: in-place tentative update.
                        let val = match self.scripts[t][self.op_idx[t]] {
                            ScriptOp::Write(_, val) => val,
                            _ => unreachable!(),
                        };
                        self.vars[v].tentative = val;
                        self.record_step(t, Self::var_base(v), Access::Modify);
                        self.micro[t] = Micro::FinishWrite;
                    } else {
                        self.micro[t] = Micro::AcquireWrite;
                    }
                } else {
                    let (val, class) = self.resolve(v, t);
                    let acq = self.vars[v].acq;
                    self.micro[t] = self.first_validation(t, Micro::FinishRead(val, class, acq));
                }
            }
        }
    }

    /// Runs transaction `t` until it completes (commit or abort).
    pub fn run_to_completion(&mut self, t: usize) {
        while self.enabled(t) {
            self.step(t);
        }
    }

    /// Total number of steps a clone of this machine needs to finish
    /// transaction `t` running solo from the current state.
    pub fn solo_steps_remaining(&self, t: usize) -> usize {
        let mut m = self.clone();
        let mut n = 0;
        while m.enabled(t) {
            m.step(t);
            n += 1;
            assert!(n < 10_000, "runaway solo execution");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::{serializable, TxStatus};

    const W: usize = 0;
    const X: usize = 1;
    const Y: usize = 2;
    const Z: usize = 3;

    fn fig2_scripts() -> Vec<Vec<ScriptOp>> {
        vec![
            // T1: R(w) R(z) W(x,1) W(y,1) tryC
            vec![
                ScriptOp::Read(W),
                ScriptOp::Read(Z),
                ScriptOp::Write(X, 1),
                ScriptOp::Write(Y, 1),
                ScriptOp::TryCommit,
            ],
            // T2: R(x) W(w,1) tryC
            vec![
                ScriptOp::Read(X),
                ScriptOp::Write(W, 1),
                ScriptOp::TryCommit,
            ],
            // T3: R(y) W(z,1) tryC
            vec![
                ScriptOp::Read(Y),
                ScriptOp::Write(Z, 1),
                ScriptOp::TryCommit,
            ],
        ]
    }

    fn machine() -> SimDstm {
        SimDstm::new(vec![0, 0, 0, 0], fig2_scripts())
    }

    #[test]
    fn t1_solo_commits() {
        let mut m = machine();
        m.run_to_completion(0);
        assert_eq!(m.status_of(0), SimStatus::Committed);
        assert_eq!(m.committed_value(X), 1);
        assert_eq!(m.committed_value(Y), 1);
        let views = m.history.tx_views();
        assert_eq!(views[&TxId::new(1, 0)].status, TxStatus::Committed);
        assert!(serializable(&m.history, 8).is_serializable());
    }

    #[test]
    fn serial_t1_t2_t3_all_commit() {
        let mut m = machine();
        m.run_to_completion(0);
        m.run_to_completion(1);
        m.run_to_completion(2);
        assert_eq!(m.status_of(1), SimStatus::Committed);
        assert_eq!(m.status_of(2), SimStatus::Committed);
        // T2 read x after T1 committed: sees 1; same for T3 on y.
        assert!(serializable(&m.history, 8).is_serializable());
        let views = m.history.tx_views();
        let t2 = &views[&TxId::new(2, 0)];
        assert!(t2
            .ops
            .iter()
            .any(|c| matches!((c.op, c.resp), (TmOp::Read(TVarId(1)), TmResp::Value(1)))));
    }

    #[test]
    fn suspended_t1_is_aborted_by_t2() {
        let mut m = machine();
        // T1 runs until it owns x and y (but has not committed).
        // Step until both writes done: run solo, watching the op index.
        while m.op_idx[0] < 4 {
            m.step(0);
        }
        assert_eq!(m.status_of(0), SimStatus::Live);
        // T2 now runs to completion: it must abort T1 (revocable
        // ownership) and commit reading x = 0.
        m.run_to_completion(1);
        assert_eq!(m.status_of(1), SimStatus::Committed);
        assert_eq!(m.status_of(0), SimStatus::Aborted);
        assert_eq!(m.committed_value(W), 1);
        assert_eq!(m.committed_value(X), 0);
        assert!(serializable(&m.history, 8).is_serializable());
    }

    #[test]
    fn aborted_t1_notices_at_next_step() {
        let mut m = machine();
        while m.op_idx[0] < 4 {
            m.step(0);
        }
        m.run_to_completion(1); // aborts T1
        assert!(m.enabled(0));
        m.step(0); // T1's next step must observe the abort
        assert!(!m.enabled(0));
        let views = m.history.tx_views();
        let v1 = &views[&TxId::new(1, 0)];
        assert_eq!(v1.status, TxStatus::Aborted);
        assert!(v1.forcefully_aborted());
    }

    #[test]
    fn every_random_interleaving_is_serializable() {
        // Pseudo-random schedules over the three Figure 2 transactions:
        // every resulting history must be serializable (the threaded DSTM
        // enjoys the same property; here it is checked with the exact
        // oracle).
        let mut seed = 0x12345678u64;
        for _ in 0..200 {
            let mut m = machine();
            let mut guard = 0;
            while !m.all_done() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t = (seed >> 33) as usize % 3;
                if m.enabled(t) {
                    m.step(t);
                }
                guard += 1;
                assert!(guard < 100_000, "schedule did not terminate");
            }
            let check = serializable(&m.history, 8);
            assert!(
                check.is_serializable(),
                "non-serializable interleaving found:\n{}",
                m.history.render()
            );
        }
    }

    #[test]
    fn obstruction_freedom_holds_on_random_interleavings() {
        let mut seed = 0xabcdefu64;
        for _ in 0..100 {
            let mut m = machine();
            let mut guard = 0;
            while !m.all_done() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let t = (seed >> 33) as usize % 3;
                if m.enabled(t) {
                    m.step(t);
                }
                guard += 1;
                assert!(guard < 100_000);
            }
            let viol = oftm_histories::check_of(&m.history);
            assert!(
                viol.is_empty(),
                "OF violation: {viol:?}\n{}",
                m.history.render()
            );
        }
    }

    #[test]
    fn solo_steps_remaining_counts() {
        let m = machine();
        let n = m.solo_steps_remaining(0);
        assert!(n > 5, "T1 takes several steps, got {n}");
    }
}
