//! Step-accurate models of TAS-based consensus — the *lower* bound side of
//! Corollary 11 (consensus number ≥ 2) and the liveness failure that stops
//! the same idea at 3 processes.
//!
//! * [`TasTwoConsensus`]: announce → test-and-set → adopt. The explorer
//!   verifies that **every** schedule of 2 processes decides with
//!   agreement and validity — wait-free consensus from a
//!   consensus-number-2 object.
//! * [`TasThreeNaive`]: the natural extension to 3 processes (losers spin
//!   on a decision register the winner fills in). The explorer finds
//!   non-deciding executions when the winner is suspended between its TAS
//!   win and its decision write — the well-known reason TAS stops at 2 and
//!   OFTMs stop at 2 (Theorem 9).

use crate::machine::Machine;

/// One-shot TAS cell model.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct TasCell {
    taken: bool,
}

impl TasCell {
    /// Returns true iff this call wins.
    pub fn tas(&mut self) -> bool {
        !std::mem::replace(&mut self.taken, true)
    }
}

/// Protocol states for the 2-process TAS consensus.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum P2 {
    Announce,
    Compete,
    ReadOther,
    Done(u64),
}

/// Wait-free 2-process consensus: announce own value, TAS, winner decides
/// own, loser reads the winner's announcement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasTwoConsensus {
    announce: [Option<u64>; 2],
    tas: TasCell,
    procs: [P2; 2],
    won: [bool; 2],
    inputs: [u64; 2],
}

impl TasTwoConsensus {
    pub fn new(inputs: [u64; 2]) -> Self {
        TasTwoConsensus {
            announce: [None, None],
            tas: TasCell::default(),
            procs: [P2::Announce, P2::Announce],
            won: [false, false],
            inputs,
        }
    }
}

impl Machine for TasTwoConsensus {
    fn procs(&self) -> usize {
        2
    }

    fn enabled(&self, p: usize) -> bool {
        !matches!(self.procs[p], P2::Done(_))
    }

    fn branching(&self, _p: usize) -> usize {
        1 // fully deterministic protocol
    }

    fn step(&mut self, p: usize, _choice: usize) {
        match self.procs[p] {
            P2::Announce => {
                self.announce[p] = Some(self.inputs[p]);
                self.procs[p] = P2::Compete;
            }
            P2::Compete => {
                if self.tas.tas() {
                    self.won[p] = true;
                    self.procs[p] = P2::Done(self.inputs[p]);
                } else {
                    self.procs[p] = P2::ReadOther;
                }
            }
            P2::ReadOther => {
                let other =
                    self.announce[1 - p].expect("winner announced before TAS; loser must see it");
                self.procs[p] = P2::Done(other);
            }
            P2::Done(_) => unreachable!(),
        }
    }

    fn decided(&self, p: usize) -> Option<u64> {
        match self.procs[p] {
            P2::Done(d) => Some(d),
            _ => None,
        }
    }
}

/// Protocol states for the naive 3-process attempt.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum P3 {
    Announce,
    Compete,
    /// Winner: about to publish the decision register.
    Publish,
    /// Loser: polling the decision register.
    Poll,
    Done(u64),
}

/// The natural (broken) n = 3 extension: TAS winner publishes to a shared
/// decision register `d`; losers poll `d`. Safe, but **not wait-free**:
/// if the winner stalls between winning and publishing, losers poll
/// forever — the explorer exhibits the cycle.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TasThreeNaive {
    announce: [Option<u64>; 3],
    tas: TasCell,
    d: Option<u64>,
    procs: [P3; 3],
    inputs: [u64; 3],
}

impl TasThreeNaive {
    pub fn new(inputs: [u64; 3]) -> Self {
        TasThreeNaive {
            announce: [None, None, None],
            tas: TasCell::default(),
            d: None,
            procs: [P3::Announce, P3::Announce, P3::Announce],
            inputs,
        }
    }
}

impl Machine for TasThreeNaive {
    fn procs(&self) -> usize {
        3
    }

    fn enabled(&self, p: usize) -> bool {
        !matches!(self.procs[p], P3::Done(_))
    }

    fn branching(&self, _p: usize) -> usize {
        1
    }

    fn step(&mut self, p: usize, _choice: usize) {
        match self.procs[p] {
            P3::Announce => {
                self.announce[p] = Some(self.inputs[p]);
                self.procs[p] = P3::Compete;
            }
            P3::Compete => {
                self.procs[p] = if self.tas.tas() {
                    P3::Publish
                } else {
                    P3::Poll
                };
            }
            P3::Publish => {
                self.d = Some(self.inputs[p]);
                self.procs[p] = P3::Done(self.inputs[p]);
            }
            P3::Poll => {
                if let Some(d) = self.d {
                    self.procs[p] = P3::Done(d);
                }
                // else: stay in Poll — the step was a (fruitless) read.
            }
            P3::Done(_) => unreachable!(),
        }
    }

    fn decided(&self, p: usize) -> Option<u64> {
        match self.procs[p] {
            P3::Done(d) => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::explore;

    #[test]
    fn two_process_tas_consensus_always_decides() {
        // The lower bound of Corollary 11, exhaustively: every schedule of
        // the 2-process protocol terminates with agreement and validity.
        let e = explore(TasTwoConsensus::new([10, 20]), 100_000);
        let terms = e.terminals();
        assert!(!terms.is_empty());
        for (i, decisions) in terms {
            let d0 = decisions[0].unwrap_or_else(|| panic!("p0 undecided in terminal {i}"));
            let d1 = decisions[1].unwrap_or_else(|| panic!("p1 undecided in terminal {i}"));
            assert_eq!(d0, d1, "agreement");
            assert!(d0 == 10 || d0 == 20, "validity");
        }
        // Wait-freedom: no infinite execution avoids deciding.
        assert!(e.bivalent_cycle().is_none());
        // In fact every cycle at all is impossible (finite deterministic
        // progress): every non-terminal state has successors that strictly
        // advance some pc. Verified implicitly by cycle absence above.
    }

    #[test]
    fn two_process_tas_initial_bivalent() {
        // Before anyone competes, both outcomes are reachable.
        let e = explore(TasTwoConsensus::new([10, 20]), 100_000);
        assert!(e.bivalent(e.initial));
    }

    #[test]
    fn three_process_naive_has_non_deciding_poll_loop() {
        let e = explore(TasThreeNaive::new([1, 2, 3]), 1_000_000);
        // Losers polling while the winner is suspended: an infinite
        // execution where correct processes never decide. The poll loop is
        // a self-cycle in the configuration graph; it lives in the
        // *univalent* region (the winner fixed the value), so the right
        // check is for a cycle among undecided-but-stuck processes:
        let mut found_stuck_cycle = false;
        for (i, st) in e.states.iter().enumerate() {
            // A state where some process polls and stepping it loops back
            // to the same state (d unset).
            if e.edges[i].iter().any(|&(_, j)| j == i) && st.d.is_none() {
                found_stuck_cycle = true;
                break;
            }
        }
        assert!(
            found_stuck_cycle,
            "naive 3-process protocol must exhibit a polling livelock"
        );
    }

    #[test]
    fn three_process_naive_is_still_safe() {
        // Agreement/validity hold in every terminal (it's liveness that
        // breaks, matching the consensus-number story).
        let e = explore(TasThreeNaive::new([1, 2, 3]), 1_000_000);
        for (_i, decisions) in e.terminals() {
            let vals: Vec<u64> = decisions.iter().filter_map(|d| *d).collect();
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
            for v in vals {
                assert!((1..=3).contains(&v));
            }
        }
    }

    #[test]
    fn tas_cell_single_winner() {
        let mut t = TasCell::default();
        assert!(t.tas());
        assert!(!t.tas());
    }
}
