//! # oftm-sim — deterministic step-level simulation and model checking
//!
//! The theory half of the reproduction: the paper's impossibility results
//! argue about *steps* — single shared-memory accesses under an adversarial
//! scheduler — which threads cannot replay deterministically. This crate
//! re-implements the relevant protocols as explicit step machines and
//! explores their configuration graphs exhaustively:
//!
//! * [`machine`] — the [`machine::Machine`] trait, the exhaustive explorer
//!   with valency computation (0/1-valence, bivalence), the Claim 10
//!   bivalent-extension check, and bivalent-cycle certificates;
//! * [`foc_model`] — step-accurate fo-consensus base objects (propose =
//!   invocation step + response step; abort allowed exactly under step
//!   contention) and retry-consensus over them: Theorem 9's bivalent
//!   infinite execution, found mechanically;
//! * [`tas_model`] — TAS-based 2-process consensus (all schedules decide:
//!   the consensus-number ≥ 2 half of Corollary 11) and the naive
//!   3-process extension whose livelock the explorer exhibits;
//! * [`sim_dstm`] — a step-accurate DSTM model with full history recording;
//! * [`fig2`] — the `E_{p·2·s·3}` construction of Theorem 13's proof,
//!   scanned over every suspension point of `T1`.

pub mod fig2;
pub mod foc_model;
pub mod machine;
pub mod sim_dstm;
pub mod tas_model;

pub use fig2::{fig2_scan, fig2_scripts, summarize, Fig2Row, Fig2Summary};
pub use foc_model::{FocCellModel, FocRetryConsensus, RetryState};
pub use machine::{explore, Exploration, Machine, Move};
pub use sim_dstm::{ScriptOp, SimDstm, SimStatus};
pub use tas_model::{TasCell, TasThreeNaive, TasTwoConsensus};
