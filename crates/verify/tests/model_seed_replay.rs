//! Deterministic counterexample replay: a failing schedule's printed
//! `OFTM_MODEL_SEED` must reproduce exactly that interleaving (the model
//! checker's mirror of the differential harness's `HARNESS_SEED`).
//!
//! Kept in its own integration-test binary: the seed travels through a
//! process-global environment variable, which must not race the other
//! model suites running in parallel threads.

use oftm_core::kernel::AtomicU64Like;
use oftm_verify::model::sync::MAtomicU64;
use oftm_verify::model::{check, Builder, Config};
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

/// A deliberately racy scenario: two threads do a non-atomic
/// read-modify-write on a shared counter. Some interleaving loses an
/// increment and trips the post-condition.
fn racy_increments(b: &mut Builder) {
    let counter = Arc::new(MAtomicU64::new(0));
    for name in ["inc-a", "inc-b"] {
        let counter = Arc::clone(&counter);
        b.thread(name, move || {
            let v = counter.load(SeqCst);
            counter.store(v + 1, SeqCst);
        });
    }
    b.after(move || {
        assert_eq!(counter.load(SeqCst), 2, "lost increment");
    });
}

#[test]
fn seed_replays_the_exact_counterexample() {
    let ce = check(
        Config::new("racy-increments").preemptions(2),
        racy_increments,
    )
    .expect_err("the lost-increment schedule must be found");
    assert!(ce.message.contains("lost increment"), "{ce}");

    std::env::set_var("OFTM_MODEL_SEED", &ce.seed);
    let replay = check(
        Config::new("racy-increments-replay").preemptions(2),
        racy_increments,
    )
    .expect_err("replaying the seed must reproduce the failure");
    std::env::remove_var("OFTM_MODEL_SEED");

    assert_eq!(
        replay.schedule, ce.schedule,
        "replay diverged from the recorded schedule"
    );
    assert_eq!(
        replay.trace, ce.trace,
        "replayed interleaving differs step-for-step"
    );

    // And a seed that names a conflict-free schedule passes: the explorer
    // found the bug only on *some* interleaving, not all of them.
    std::env::set_var("OFTM_MODEL_SEED", "");
    let serial = check(Config::new("racy-increments-serial"), racy_increments);
    std::env::remove_var("OFTM_MODEL_SEED");
    assert!(
        serial.is_ok(),
        "the all-defaults (serial) schedule must not lose an increment"
    );
}
