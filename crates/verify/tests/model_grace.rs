//! Exhaustive bounded-preemption checks of the grace-period kernel
//! ([`oftm_core::kernel::GraceCore`]) — the *production* code behind
//! `oftm_core::reclaim::GraceTracker` — plus negative oracles.
//!
//! The property is **no premature flush**: a retired batch must never be
//! handed back for reclamation while a transaction that began before the
//! retirement (and might therefore still reach the retired blocks) is
//! still active. The scenario models the classic unlink race: a reader
//! loads a "pointer" to a block while a retirer unlinks and retires it;
//! if the reader observed the pre-unlink pointer, the block must not
//! have been freed by the time the reader dereferences it.

use oftm_core::kernel::{AtomicU64Like, GraceCore, MutexLike, RetiredBlock, SlotSet};
use oftm_verify::model::sync::{FixedSlots, MAtomicU64, MMutex, ModelSync};
use oftm_verify::model::{check, Builder, Config};
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;

/// Epoch-tagged retire bins of the hand-rolled broken variant.
type EpochBins = Vec<(u64, Vec<RetiredBlock>)>;

type Core = GraceCore<ModelSync, FixedSlots>;

const BLOCK: RetiredBlock = RetiredBlock {
    base: oftm_histories::TVarId(7),
    len: 1,
};

#[test]
fn grace_no_premature_flush() {
    let report = check(
        Config::new("grace-unlink-race").preemptions(2),
        |b: &mut Builder| {
            let core: Arc<Core> = Arc::new(GraceCore::new(FixedSlots::new(2)));
            // link = 1: the block is reachable; the retirer stores 0 to
            // unlink it before retiring. freed = 1 once the retirer got
            // the block back from a flush.
            let link = Arc::new(MAtomicU64::new(1));
            let freed = Arc::new(MAtomicU64::new(0));
            {
                let (core, link, freed) =
                    (Arc::clone(&core), Arc::clone(&link), Arc::clone(&freed));
                b.thread("reader", move || {
                    let g = core.begin();
                    if link.load(SeqCst) != 0 {
                        // We hold the pre-unlink pointer: dereferencing it
                        // is only sound if the block has not been freed.
                        assert_eq!(
                            freed.load(SeqCst),
                            0,
                            "block freed while a predating reader could still reach it"
                        );
                    }
                    drop(g);
                });
            }
            {
                let (core, link, freed) =
                    (Arc::clone(&core), Arc::clone(&link), Arc::clone(&freed));
                b.thread("retirer", move || {
                    let g = core.begin();
                    link.store(0, SeqCst);
                    let out = core.retire_and_flush(g, vec![BLOCK]);
                    if !out.is_empty() {
                        assert_eq!(out, vec![BLOCK]);
                        freed.store(1, SeqCst);
                    }
                });
            }
            // Exactly-once accounting: the block is either freed or still
            // parked in a bin, never both, never neither.
            b.after(move || {
                let pending = core.pending_blocks();
                let freed = freed.load(SeqCst) as usize;
                assert_eq!(pending + freed, 1, "pending={pending} freed={freed}");
            });
        },
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    assert!(
        report.executions > 20,
        "only {} schedules",
        report.executions
    );
    eprintln!(
        "grace-unlink-race: {} schedules, no counterexample",
        report.executions
    );
}

#[test]
fn grace_flush_after_reader_exit_frees() {
    // Liveness-ish companion: once every predating reader is gone, a
    // later flush must hand the block back (no leak).
    let report = check(
        Config::new("grace-eventual-free").preemptions(2),
        |b: &mut Builder| {
            let core: Arc<Core> = Arc::new(GraceCore::new(FixedSlots::new(2)));
            {
                let core = Arc::clone(&core);
                b.thread("reader", move || {
                    let g = core.begin();
                    drop(g);
                });
            }
            {
                let core = Arc::clone(&core);
                b.thread("retirer", move || {
                    let g = core.begin();
                    let _ = core.retire_and_flush(g, vec![BLOCK]);
                });
            }
            b.after(move || {
                // All transactions done: a final flush must drain the bin
                // (freed_total counts in-run frees and this one alike).
                let _ = core.flush();
                assert_eq!(
                    core.freed_total(),
                    1,
                    "retired block neither freed during the run nor drainable after it"
                );
                assert_eq!(core.pending_blocks(), 0);
            });
        },
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    assert!(
        report.executions > 20,
        "only {} schedules",
        report.executions
    );
}

// ---------------------------------------------------------------------------
// Negative oracles.
// ---------------------------------------------------------------------------

#[test]
fn broken_inclusive_flush_epoch_is_caught() {
    // A hand-rolled grace protocol whose flush uses `bin.epoch <=
    // min_active` instead of `<`: a reader that began in the same epoch
    // the batch was tagged with no longer protects it. The model must
    // find the schedule where the reader holds the pre-unlink pointer and
    // the block is freed under it.
    let err = check(
        Config::new("broken-inclusive-flush").preemptions(2),
        |b: &mut Builder| {
            let epoch = Arc::new(MAtomicU64::new(1));
            let slots = Arc::new(FixedSlots::new(2));
            let bins: Arc<MMutex<EpochBins>> = Arc::new(MMutex::new(Vec::new()));
            let link = Arc::new(MAtomicU64::new(1));
            let freed = Arc::new(MAtomicU64::new(0));
            {
                let (epoch, slots, link, freed) = (
                    Arc::clone(&epoch),
                    Arc::clone(&slots),
                    Arc::clone(&link),
                    Arc::clone(&freed),
                );
                b.thread("reader", move || {
                    let e = epoch.load(SeqCst);
                    let slot = slots.claim(e);
                    if link.load(SeqCst) != 0 {
                        assert_eq!(freed.load(SeqCst), 0, "freed under a predating reader");
                    }
                    slot.store(oftm_core::kernel::IDLE_SLOT, SeqCst);
                });
            }
            {
                b.thread("retirer", move || {
                    link.store(0, SeqCst);
                    let tag = epoch.fetch_add(1, SeqCst);
                    bins.with(|bs| bs.push((tag, vec![BLOCK])));
                    let out = bins.with(|bs| {
                        let min_active = slots.min_active();
                        let mut out = Vec::new();
                        // BUG: inclusive comparison — a reader whose slot
                        // equals the batch tag no longer protects it.
                        bs.retain_mut(|(e, blocks)| {
                            if *e <= min_active {
                                out.append(blocks);
                                false
                            } else {
                                true
                            }
                        });
                        out
                    });
                    if !out.is_empty() {
                        freed.store(1, SeqCst);
                    }
                });
            }
        },
    )
    .expect_err("inclusive flush epoch must free under a live reader");
    assert!(
        err.message.contains("freed under a predating reader"),
        "{err}"
    );
    assert!(!err.seed.is_empty());
}

#[test]
fn broken_read_before_register_is_caught() {
    // Client misuse of the REAL kernel: the reader dereferences the link
    // before `begin()`. The kernel's contract ("must be called before the
    // transaction performs its first read") exists precisely because this
    // interleaving frees the block out from under the unregistered read.
    let err = check(
        Config::new("broken-read-before-register").preemptions(2),
        |b: &mut Builder| {
            let core: Arc<Core> = Arc::new(GraceCore::new(FixedSlots::new(2)));
            let link = Arc::new(MAtomicU64::new(1));
            let freed = Arc::new(MAtomicU64::new(0));
            {
                let (core, link, freed) =
                    (Arc::clone(&core), Arc::clone(&link), Arc::clone(&freed));
                b.thread("reader", move || {
                    // BUG: the read happens before the registration.
                    let l = link.load(SeqCst);
                    let g = core.begin();
                    if l != 0 {
                        assert_eq!(freed.load(SeqCst), 0, "freed under an unregistered read");
                    }
                    drop(g);
                });
            }
            {
                let (core, link, freed) = (Arc::clone(&core), link, Arc::clone(&freed));
                b.thread("retirer", move || {
                    let g = core.begin();
                    link.store(0, SeqCst);
                    let out = core.retire_and_flush(g, vec![BLOCK]);
                    if !out.is_empty() {
                        freed.store(1, SeqCst);
                    }
                });
            }
        },
    )
    .expect_err("reading before begin() must be refuted by the model");
    assert!(err.message.contains("unregistered read"), "{err}");
}
