//! Exhaustive bounded-preemption checks of the commit-notification
//! kernel ([`oftm_core::kernel::NotifyProto`]) — the *production* code
//! behind `oftm_core::notify::CommitNotifier` — plus negative oracles:
//! deliberately broken protocol variants the model must refute.
//!
//! The property is **no lost wakeup**: a waiter that observed a stale
//! value and parked must eventually be woken by the publish that changed
//! it. Under the model, a lost wakeup is a deadlock — the waiter sits in
//! `wait_woken` forever while the publisher has finished.

use oftm_core::kernel::{AtomicU64Like, MutexLike, NotifyProto};
use oftm_verify::model::sync::{MAtomicU64, MMutex, MWaker, ModelSync};
use oftm_verify::model::{check, Builder, Config};
use std::sync::Arc;

type Proto = NotifyProto<ModelSync, MWaker>;

/// A wait loop exercising exactly the kernel's contract: *no publish
/// after the snapshot is lost*. The snapshot is taken first, then the
/// condition is sampled, then the waiter parks — so every publish is
/// either (a) fully before the snapshot, in which case the sample sees
/// the new value; or (b) after it, in which case `park` must fail
/// validation or the registered waker must be woken. (The production
/// async runtime samples *before* snapshotting — its attempt runs first —
/// and covers that pre-snapshot window with the park-timeout watchdog in
/// `oftm-asyncrt`; the Dekker argument, and this model, own the
/// snapshot-to-park window.)
fn waiter_loop(proto: &Proto, value: &MAtomicU64, shards: &[usize], waker: &MWaker) {
    use std::sync::atomic::Ordering::SeqCst;
    let mut snap = Vec::new();
    loop {
        proto.snapshot(shards.iter().copied(), &mut snap);
        if value.load(SeqCst) == 1 {
            return;
        }
        if proto.park(&snap, waker) {
            waker.wait_woken();
            waker.reset();
        }
    }
}

#[test]
fn notify_no_lost_wakeup_single_shard() {
    let report = check(
        Config::new("notify-single-shard").preemptions(2),
        |b: &mut Builder| {
            let proto: Arc<Proto> = Arc::new(NotifyProto::new(1));
            let value = Arc::new(MAtomicU64::new(0));
            let waker = MWaker::new();
            {
                let (proto, value, waker) = (Arc::clone(&proto), Arc::clone(&value), waker.clone());
                b.thread("waiter", move || waiter_loop(&proto, &value, &[0], &waker));
            }
            {
                let (proto, value) = (proto, Arc::clone(&value));
                b.thread("publisher", move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    value.store(1, SeqCst);
                    proto.publish([0]);
                });
            }
            b.after(move || {
                assert_eq!(value.load(std::sync::atomic::Ordering::SeqCst), 1);
            });
        },
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    // Exhaustiveness sanity: the schedule space at bound 2 is not trivial.
    assert!(
        report.executions > 20,
        "only {} schedules",
        report.executions
    );
    eprintln!(
        "notify-single-shard: {} schedules, no counterexample",
        report.executions
    );
}

#[test]
fn notify_no_lost_wakeup_multi_shard_footprint() {
    // The waiter's footprint spans two shards; the publisher writes only
    // the second. The park registers on both, and the wake must still
    // arrive through the written one.
    let report = check(
        Config::new("notify-multi-shard").preemptions(2),
        |b: &mut Builder| {
            let proto: Arc<Proto> = Arc::new(NotifyProto::new(2));
            let value = Arc::new(MAtomicU64::new(0));
            let waker = MWaker::new();
            {
                let (proto, value, waker) = (Arc::clone(&proto), Arc::clone(&value), waker.clone());
                b.thread("waiter", move || {
                    waiter_loop(&proto, &value, &[0, 1], &waker)
                });
            }
            {
                let (proto, value) = (proto, value);
                b.thread("publisher", move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    value.store(1, SeqCst);
                    proto.publish([1]);
                });
            }
        },
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    assert!(
        report.executions > 20,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn notify_failed_park_leaves_no_stale_waker() {
    // After the race (publish between snapshot and park), the waiter's
    // registration must be fully withdrawn: parked counts return to zero.
    let report = check(
        Config::new("notify-unregister").preemptions(2),
        |b: &mut Builder| {
            let proto: Arc<Proto> = Arc::new(NotifyProto::new(1));
            let value = Arc::new(MAtomicU64::new(0));
            let waker = MWaker::new();
            {
                let (proto, value, waker) = (Arc::clone(&proto), Arc::clone(&value), waker.clone());
                b.thread("waiter", move || waiter_loop(&proto, &value, &[0], &waker));
            }
            {
                let (proto, value) = (Arc::clone(&proto), value);
                b.thread("publisher", move || {
                    use std::sync::atomic::Ordering::SeqCst;
                    value.store(1, SeqCst);
                    proto.publish([0]);
                });
            }
            b.after(move || {
                assert_eq!(
                    proto.parked_wakers(),
                    0,
                    "stale waker registration survived"
                );
            });
        },
    )
    .unwrap_or_else(|ce| panic!("{ce}"));
    assert!(report.executions > 20);
}

// ---------------------------------------------------------------------------
// Negative oracles: broken variants the model must refute.
// ---------------------------------------------------------------------------

/// One notification shard built from raw model primitives, so the tests
/// can wire up *wrong* protocols (the real kernel does not expose its
/// internals, deliberately).
struct RawShard {
    seq: MAtomicU64,
    parked: MAtomicU64,
    waiters: MMutex<Vec<MWaker>>,
}

impl RawShard {
    fn new() -> Self {
        RawShard {
            seq: MAtomicU64::new(0),
            parked: MAtomicU64::new(0),
            waiters: MMutex::new(Vec::new()),
        }
    }
}

#[test]
fn broken_park_without_validation_is_caught() {
    use std::sync::atomic::Ordering::SeqCst;
    // The waiter registers but never re-reads `seq` (protocol step (4)
    // removed). A publish that lands between its value check and its
    // registration is lost, and the model must find that schedule.
    let err = check(
        Config::new("broken-no-validation").preemptions(2),
        |b: &mut Builder| {
            let shard = Arc::new(RawShard::new());
            let value = Arc::new(MAtomicU64::new(0));
            let waker = MWaker::new();
            {
                let (shard, value, waker) = (Arc::clone(&shard), Arc::clone(&value), waker);
                b.thread("waiter", move || loop {
                    let _seen = shard.seq.load(SeqCst);
                    if value.load(SeqCst) == 1 {
                        return;
                    }
                    shard.waiters.with(|ws| {
                        ws.push(waker.clone());
                        shard.parked.fetch_add(1, SeqCst);
                    });
                    // BUG: `_seen` is never re-read — parks unconditionally.
                    waker.wait_woken();
                    waker.reset();
                });
            }
            {
                b.thread("publisher", move || {
                    value.store(1, SeqCst);
                    shard.seq.fetch_add(1, SeqCst);
                    if shard.parked.load(SeqCst) != 0 {
                        let woken = shard.waiters.with(|ws| {
                            shard.parked.fetch_sub(ws.len() as u64, SeqCst);
                            std::mem::take(ws)
                        });
                        for w in woken {
                            use oftm_core::kernel::WakeRef;
                            w.wake_ref();
                        }
                    }
                });
            }
        },
    )
    .expect_err("validation-free park must lose a wakeup");
    assert!(err.message.contains("deadlock"), "{err}");
    assert!(!err.seed.is_empty());
}

#[test]
fn broken_probe_before_bump_is_caught() {
    use std::sync::atomic::Ordering::SeqCst;
    // The publisher probes `parked` BEFORE bumping `seq` (committer steps
    // (1)/(2) swapped): the waiter can register and validate against the
    // un-bumped seq after the probe already missed it.
    let err = check(
        Config::new("broken-probe-first").preemptions(2),
        |b: &mut Builder| {
            let shard = Arc::new(RawShard::new());
            let value = Arc::new(MAtomicU64::new(0));
            let waker = MWaker::new();
            {
                let (shard, value, waker) = (Arc::clone(&shard), Arc::clone(&value), waker);
                b.thread("waiter", move || loop {
                    let seen = shard.seq.load(SeqCst);
                    if value.load(SeqCst) == 1 {
                        return;
                    }
                    shard.waiters.with(|ws| {
                        ws.push(waker.clone());
                        shard.parked.fetch_add(1, SeqCst);
                    });
                    if shard.seq.load(SeqCst) != seen {
                        // Correct waiter-side unregister on a raced park.
                        shard.waiters.with(|ws| {
                            use oftm_core::kernel::WakeRef;
                            let before = ws.len();
                            ws.retain(|w| !w.will_wake(&waker));
                            shard.parked.fetch_sub((before - ws.len()) as u64, SeqCst);
                        });
                        continue;
                    }
                    waker.wait_woken();
                    waker.reset();
                });
            }
            {
                b.thread("publisher", move || {
                    value.store(1, SeqCst);
                    // BUG: probe first, bump second.
                    let anyone = shard.parked.load(SeqCst) != 0;
                    shard.seq.fetch_add(1, SeqCst);
                    if anyone {
                        let woken = shard.waiters.with(|ws| {
                            shard.parked.fetch_sub(ws.len() as u64, SeqCst);
                            std::mem::take(ws)
                        });
                        for w in woken {
                            use oftm_core::kernel::WakeRef;
                            w.wake_ref();
                        }
                    }
                });
            }
        },
    )
    .expect_err("probe-before-bump publisher must lose a wakeup");
    assert!(err.message.contains("deadlock"), "{err}");
}
