//! Lint oracle: `.await` in a function that starts a word-STM attempt
//! must trip `await-in-attempt` (a live `WordTx` must never cross a
//! suspension point — the PR 5 poll-runs-whole-attempts invariant).

pub async fn bad_attempt_crosses_await(core: &mut ParkCore<'_>) {
    let tx = core.begin_attempt();
    yield_to_executor().await;
    drop(tx);
}

pub fn good_poll_runs_attempt_synchronously(core: &mut ParkCore<'_>) {
    let tx = core.begin_attempt();
    drop(tx);
}

pub async fn good_wrapper_only_awaits_the_future(f: TxFuture<'_, u64>) -> u64 {
    f.await
}
