//! Lint oracle: tagging an abort cause in a function that never touches
//! the per-transaction tag-once flags (`dead`/`finished`) must trip
//! `abort-tag-once` — nothing stops a second tag for the same attempt.

impl BadTx {
    fn abort_on_conflict(&mut self) {
        self.stats.abort(AbortCause::ReadConflict);
    }
}

impl GoodTx {
    fn abort_on_conflict(&mut self) {
        if !self.dead {
            self.dead = true;
            self.stats.abort(AbortCause::ReadConflict);
        }
    }

    fn spend_budget(&self) {
        // BudgetExhausted is exempt: retry loops tag it after the attempt
        // (and its flags) are gone.
        self.stats.abort(AbortCause::BudgetExhausted);
    }
}
