//! Lint oracle for the unsafe-justification rule: a block lacking the
//! required comment must trip it; a justified twin must not. (This doc
//! deliberately avoids the magic words — they would satisfy the
//! lookback window for the first block below.)

pub fn read_word(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn read_word_justified(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid, aligned, and not
    // concurrently written (checked by the pool's slot discipline).
    unsafe { *p }
}

/// An `unsafe fn` is also fine when its doc carries a `# Safety` section.
///
/// # Safety
///
/// `p` must point into a live allocation.
pub unsafe fn read_word_documented(p: *const u64) -> u64 {
    *p
}
