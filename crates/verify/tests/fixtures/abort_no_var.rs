//! Lint oracle: a tagging call that names a literal abort cause but
//! passes no `VarAttr` attribution must trip `abort-var-attribution` —
//! every abort names the t-variable it fought over, or declines
//! explicitly with `VarAttr::NoVar` (budget causes included).

impl BadTx {
    fn abort_on_conflict(&mut self) {
        if !self.dead {
            self.dead = true;
            self.stats.abort_at(AbortCause::LockBusy, self.packed_id(), holder);
        }
    }
}

impl GoodTx {
    fn abort_on_conflict(&mut self) {
        if !self.dead {
            self.dead = true;
            // rustfmt-wrapped: the attribution sits on a later line of
            // the same call — the window scan must still see it.
            self.stats.abort_at(
                AbortCause::LockBusy,
                VarAttr::Var(x.0),
                self.packed_id(),
                holder,
            );
        }
    }

    fn spend_budget(&self) {
        // BudgetExhausted is NOT exempt here: it must decline explicitly.
        self.stats
            .abort_at(AbortCause::BudgetExhausted, VarAttr::NoVar, me, TX_UNKNOWN);
    }
}
