//! Lint oracle: `std::sync::Mutex`/`RwLock` outside the allowlist must
//! trip `std-sync-lock`.

use std::sync::Mutex;

pub struct Cache {
    map: std::sync::RwLock<Vec<u64>>,
    count: Mutex<u64>,
}
