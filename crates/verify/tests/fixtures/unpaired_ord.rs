//! Lint oracle for the ordering-pairing rule: an atomic ordering in a
//! protocol-critical module without the required pairing comment must
//! trip it. (This doc deliberately avoids the magic marker — it would
//! satisfy the lookback window for the first site below.)

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(x: &AtomicU64) -> u64 {
    x.fetch_add(1, Ordering::SeqCst)
}

pub fn bump_justified(x: &AtomicU64) -> u64 {
    // ord: SeqCst bump Dekker-pairs with the waiter's validation re-read.
    x.fetch_add(1, Ordering::SeqCst)
}

pub fn not_an_atomic_ordering(a: u64, b: u64) -> std::cmp::Ordering {
    // `cmp::Ordering` variants must not be confused with atomic orderings.
    a.cmp(&b)
}
