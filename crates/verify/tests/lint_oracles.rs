//! Negative oracles for `oftm-lint`: each fixture contains a known
//! violation of one rule (and a corrected twin that must pass), so a
//! regression that silently stops detecting a class of bug fails here —
//! the lint is itself linted.

use oftm_verify::lint::{
    lint_source, lint_workspace, Violation, RULE_ABORT, RULE_ABORT_VAR, RULE_AWAIT, RULE_ORD,
    RULE_SAFETY, RULE_STD_LOCK,
};

fn rule_lines(violations: &[Violation], rule: &str) -> Vec<usize> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn missing_safety_comment_fails() {
    let src = include_str!("fixtures/missing_safety.rs");
    let v = lint_source("crates/core/src/pool.rs", src);
    let lines = rule_lines(&v, RULE_SAFETY);
    assert_eq!(lines.len(), 1, "exactly the unjustified block: {v:?}");
    assert!(src
        .lines()
        .nth(lines[0] - 1)
        .unwrap()
        .contains("unsafe { *p }"));
}

#[test]
fn unpaired_ordering_fails_in_critical_module() {
    let src = include_str!("fixtures/unpaired_ord.rs");
    let v = lint_source("crates/core/src/notify.rs", src);
    let lines = rule_lines(&v, RULE_ORD);
    assert_eq!(lines.len(), 1, "exactly the unpaired site: {v:?}");
    assert!(src
        .lines()
        .nth(lines[0] - 1)
        .unwrap()
        .contains("Ordering::SeqCst"));
    // The same source outside the protocol-critical set is not checked.
    assert!(rule_lines(&lint_source("crates/obs/src/stats.rs", src), RULE_ORD).is_empty());
}

#[test]
fn await_across_live_attempt_fails() {
    let src = include_str!("fixtures/await_in_attempt.rs");
    let v = lint_source("crates/asyncrt/src/future.rs", src);
    let lines = rule_lines(&v, RULE_AWAIT);
    assert_eq!(lines.len(), 1, "exactly the live-tx await: {v:?}");
    assert!(src
        .lines()
        .nth(lines[0] - 1)
        .unwrap()
        .contains("yield_to_executor().await"));
    // The async layers are the rule's scope; elsewhere it does not apply.
    assert!(rule_lines(&lint_source("crates/core/src/api.rs", src), RULE_AWAIT).is_empty());
}

#[test]
fn unguarded_abort_tag_fails() {
    let src = include_str!("fixtures/double_abort_tag.rs");
    let v = lint_source("crates/baselines/src/tl2.rs", src);
    let lines = rule_lines(&v, RULE_ABORT);
    assert_eq!(lines.len(), 1, "exactly the unguarded tag: {v:?}");
    assert_eq!(lines[0], 7, "{v:?}");
}

#[test]
fn missing_var_attribution_fails() {
    let src = include_str!("fixtures/abort_no_var.rs");
    let v = lint_source("crates/baselines/src/tl2.rs", src);
    let lines = rule_lines(&v, RULE_ABORT_VAR);
    assert_eq!(lines.len(), 1, "exactly the unattributed tag: {v:?}");
    assert_eq!(lines[0], 10, "{v:?}");
    assert!(src
        .lines()
        .nth(lines[0] - 1)
        .unwrap()
        .contains("self.packed_id(), holder"));
    // The wrapped GoodTx call and the explicit NoVar decline both pass,
    // and every site sits behind a tag-once flag.
    assert!(rule_lines(&v, RULE_ABORT).is_empty(), "{v:?}");
}

#[test]
fn std_lock_outside_allowlist_fails() {
    let src = include_str!("fixtures/std_lock.rs");
    let v = lint_source("crates/core/src/table.rs", src);
    // The rule flags introduction points (imports and fully qualified
    // paths); the bare `Mutex<u64>` use rides on the flagged import.
    let lines = rule_lines(&v, RULE_STD_LOCK);
    assert_eq!(lines.len(), 2, "import + qualified use: {v:?}");
    // Allowlisted files may keep their blocking sites.
    assert!(rule_lines(
        &lint_source("crates/asyncrt/src/timer.rs", src),
        RULE_STD_LOCK
    )
    .is_empty());
}

/// The workspace itself must be clean — this is the same gate CI's
/// `verify` job runs via the `oftm-lint` binary, wired into `cargo test`
/// so a violation fails the tier-1 suite too.
#[test]
fn workspace_sources_pass_the_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = lint_workspace(&root).expect("walk workspace");
    assert!(
        report.files_scanned > 40,
        "suspiciously few files: {}",
        report.files_scanned
    );
    let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace lint violations:\n{}",
        msgs.join("\n")
    );
}
