//! **`oftm-lint`** — STM-invariant static analysis over the workspace
//! sources.
//!
//! A deliberately lightweight lexical pass (no external parser — the
//! build environment is offline): each file is split line-by-line into
//! *code* and *comment* halves by a small state machine that understands
//! line/block comments, string/raw-string literals, and char literals
//! vs. lifetimes; `#[cfg(test)]` regions are skipped; function bodies
//! are tracked by brace depth. On top of that, five rules encode hygiene
//! invariants the compiler cannot check:
//!
//! * **unsafe-safety** — every `unsafe` keyword must be justified by a
//!   `// SAFETY:` comment (or `# Safety` doc section) on the same line
//!   or within the 10 lines above.
//! * **ordering-comment** — every atomic `Ordering::{Relaxed, Acquire,
//!   Release, AcqRel, SeqCst}` use in a protocol-critical module must
//!   carry a `// ord:` comment naming the pairing it participates in,
//!   on the same line or within the 6 lines above.
//! * **await-in-attempt** — in the async layers (`oftm-asyncrt`,
//!   `oftm-structs`), a function that starts a word-STM attempt
//!   (`begin_attempt(` / `.begin(` / `.begin_ro(`) must not contain
//!   `.await`: a live `WordTx` crossing a suspension point would pin an
//!   ownership record across arbitrary executor delays (the PR 5
//!   invariant).
//! * **abort-tag-once** — an `.abort(AbortCause::…)` call site must sit
//!   in a function that manipulates a per-transaction tag-once flag
//!   (`dead` / `finished` / `cause_tagged` / `guard`), so one attempt
//!   can never tag two causes.
//!   `BudgetExhausted` is exempt: it is tagged by the retry loops, after
//!   the attempt has fully finished.
//! * **std-sync-lock** — `std::sync::Mutex` / `RwLock` are forbidden
//!   outside an explicit allowlist: the STM hot paths must stay
//!   lock-free, and the blessed blocking sites are enumerated.
//!
//! The library half ([`lint_source`]) is pure (path + source text in,
//! violations out) so the negative-oracle fixtures in
//! `tests/lint_oracles.rs` can drive it directly; the `oftm-lint` binary
//! walks the workspace `src/` trees and exits non-zero on any violation.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

pub const RULE_SAFETY: &str = "unsafe-safety";
pub const RULE_ORD: &str = "ordering-comment";
pub const RULE_AWAIT: &str = "await-in-attempt";
pub const RULE_ABORT: &str = "abort-tag-once";
pub const RULE_ABORT_VAR: &str = "abort-var-attribution";
pub const RULE_STD_LOCK: &str = "std-sync-lock";

// ---------------------------------------------------------------------------
// Lexical pass: split lines into code / comment, skip cfg(test), find fns.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Mode {
    Code,
    /// Nested block comments, with depth.
    Block(usize),
    Str,
    /// Raw string, with hash count.
    RawStr(usize),
}

struct Line {
    /// Source with comments, string contents, and char literals removed.
    code: String,
    /// Concatenated comment text of the line.
    comment: String,
    /// Inside a `#[cfg(test)]` region.
    skipped: bool,
}

/// A function body: `start..=end` line indices (0-based), `code` is the
/// concatenated code text of the body (for containment queries).
struct FnSpan {
    start: usize,
    end: usize,
    code: String,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Word-boundary token search in comment-stripped code.
fn has_token(code: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(tok) {
        let at = from + off;
        let before_ok = !code[..at].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !code[at + tok.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = at + tok.len();
    }
    false
}

/// Byte offsets of `(` in `code` whose immediately preceding identifier
/// contains `needle` — the call sites of abort-flavoured functions
/// (`.abort(`, `.abort_at(`, `tag_abort(`, `abort_self(`, …).
fn call_opens_with(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, c) in code.char_indices() {
        if c != '(' {
            continue;
        }
        let ident: String = code[..i]
            .chars()
            .rev()
            .take_while(|&ch| is_ident_char(ch))
            .collect();
        if ident.chars().rev().collect::<String>().contains(needle) {
            out.push(i);
        }
    }
    out
}

/// Lines a call-argument window may span before the scan gives up —
/// rustfmt wraps the widest attributed tagging call onto far fewer.
const CALL_WINDOW_CAP: usize = 12;

/// The code of the call expression whose `(` sits at byte `open` of line
/// `idx`: subsequent lines' code is appended until the parentheses
/// balance (or [`CALL_WINDOW_CAP`] lines, for malformed input).
fn call_window(lines: &[Line], idx: usize, open: usize) -> String {
    let mut w = String::new();
    let mut depth = 0usize;
    for (n, line) in lines.iter().enumerate().skip(idx).take(CALL_WINDOW_CAP) {
        let code: &str = if n == idx {
            &line.code[open..]
        } else {
            &line.code
        };
        for c in code.chars() {
            w.push(c);
            match c {
                '(' => depth += 1,
                ')' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return w;
                    }
                }
                _ => {}
            }
        }
        w.push(' ');
    }
    w
}

/// Splits one line into (code, comment) given the carried-over mode.
fn split_line(mode: &mut Mode, line: &str) -> (String, String) {
    let chars: Vec<char> = line.chars().collect();
    let n = chars.len();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    while i < n {
        match *mode {
            Mode::Block(d) => {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    *mode = Mode::Block(d + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    *mode = if d == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(d - 1)
                    };
                    i += 2;
                } else {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            Mode::Str => {
                if chars[i] == '\\' {
                    i += 2;
                } else if chars[i] == '"' {
                    *mode = Mode::Code;
                    code.push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(h) => {
                if chars[i] == '"' && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= h
                {
                    *mode = Mode::Code;
                    code.push('"');
                    i += 1 + h;
                } else {
                    i += 1;
                }
            }
            Mode::Code => {
                let c = chars[i];
                if c == '/' && i + 1 < n && chars[i + 1] == '/' {
                    comment.push_str(&chars[i..].iter().collect::<String>());
                    i = n;
                } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
                    *mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    *mode = Mode::Str;
                    code.push('"');
                    i += 1;
                } else if c == 'r'
                    && !code.chars().next_back().is_some_and(is_ident_char)
                    && i + 1 < n
                    && (chars[i + 1] == '"' || chars[i + 1] == '#')
                {
                    let hashes = chars[i + 1..].iter().take_while(|&&c| c == '#').count();
                    if i + 1 + hashes < n && chars[i + 1 + hashes] == '"' {
                        *mode = Mode::RawStr(hashes);
                        code.push('"');
                        i += 2 + hashes;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal is '\…' or 'x'
                    // followed by a closing quote; anything else ('a in
                    // generics, '_, 'static) is a lifetime.
                    let is_literal =
                        (i + 1 < n && chars[i + 1] == '\\') || (i + 2 < n && chars[i + 2] == '\'');
                    if is_literal {
                        let mut j = i + 1;
                        while j < n {
                            if chars[j] == '\\' {
                                j += 2;
                            } else if chars[j] == '\'' {
                                j += 1;
                                break;
                            } else {
                                j += 1;
                            }
                        }
                        i = j;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

/// Full structural pass: comment-stripped lines, `#[cfg(test)]` region
/// marks, and function-body spans.
fn analyze(src: &str) -> (Vec<Line>, Vec<FnSpan>) {
    let mut mode = Mode::Code;
    let mut lines: Vec<Line> = Vec::new();
    let mut spans: Vec<FnSpan> = Vec::new();

    let mut depth: isize = 0;
    let mut skipping: Option<isize> = None; // resume when depth back at value
    let mut pending_cfg = false;
    let mut pending_fn: Option<usize> = None;
    let mut fn_stack: Vec<(usize, isize)> = Vec::new(); // (start line, open depth)
    let mut open_spans: Vec<usize> = Vec::new(); // indices into `spans`

    for (idx, raw) in src.lines().enumerate() {
        let (code, comment) = split_line(&mut mode, raw);
        let mut line_skipped = skipping.is_some();

        if code.contains("cfg(test") {
            pending_cfg = true;
            line_skipped = true;
        } else if pending_cfg && skipping.is_none() {
            let t = code.trim();
            if !t.is_empty() && !t.starts_with("#[") {
                // First real item line after the attribute stack.
                line_skipped = true;
                if !code.contains('{') {
                    // Braceless item (`use …;`): only this line is skipped.
                    pending_cfg = false;
                }
            }
        }

        if has_token(&code, "fn") && skipping.is_none() {
            pending_fn = Some(idx);
        }

        for c in code.chars() {
            match c {
                '{' => {
                    if pending_cfg && skipping.is_none() {
                        skipping = Some(depth);
                        pending_cfg = false;
                        line_skipped = true;
                    }
                    if let Some(start) = pending_fn.take() {
                        spans.push(FnSpan {
                            start,
                            end: start,
                            code: String::new(),
                        });
                        open_spans.push(spans.len() - 1);
                        fn_stack.push((start, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(&(_, open)) = fn_stack.last() {
                        if open == depth {
                            fn_stack.pop();
                            let si = open_spans.pop().expect("span stack in sync");
                            spans[si].end = idx;
                        }
                    }
                    if skipping == Some(depth) {
                        skipping = None;
                    }
                }
                ';' => {
                    pending_fn = None; // bodyless declaration
                }
                _ => {}
            }
        }
        for &si in &open_spans {
            spans[si].code.push_str(&code);
            spans[si].code.push('\n');
        }

        lines.push(Line {
            code,
            comment,
            skipped: line_skipped,
        });
    }
    (lines, spans)
}

/// Innermost function span containing `line` (0-based index).
fn innermost_span(spans: &[FnSpan], line: usize) -> Option<&FnSpan> {
    spans
        .iter()
        .filter(|s| s.start <= line && line <= s.end)
        .min_by_key(|s| s.end - s.start)
}

// ---------------------------------------------------------------------------
// Rule scopes.
// ---------------------------------------------------------------------------

/// Files whose atomic orderings are protocol-critical: every
/// `Ordering::…` use there needs an `// ord:` pairing comment.
fn is_ordering_critical(rel: &str) -> bool {
    const EXACT: &[&str] = &[
        "crates/core/src/notify.rs",
        "crates/core/src/table.rs",
        "crates/core/src/pool.rs",
        "crates/core/src/reclaim.rs",
        "crates/core/src/contention.rs",
        "crates/core/src/kernel.rs",
        "crates/baselines/src/tl.rs",
        "crates/baselines/src/tl2.rs",
    ];
    const PREFIX: &[&str] = &[
        "crates/core/src/dstm/",
        "crates/algo2/src/",
        "crates/hybrid/src/",
        "crates/shims/crossbeam-epoch/src/",
    ];
    EXACT.contains(&rel) || PREFIX.iter().any(|p| rel.starts_with(p))
}

/// Blessed `std::sync` lock sites: shims (vendored code), the timer wheel
/// (a Condvar sleeper thread by design), trait-object plumbing and
/// diagnostics off the transactional hot path, experiment-driver bins
/// (result aggregation, not measured code), and this crate's own model
/// scheduler.
fn is_std_lock_allowed(rel: &str) -> bool {
    const PREFIX: &[&str] = &[
        "crates/shims/",
        "crates/verify/src/",
        "crates/bench/src/bin/",
    ];
    const EXACT: &[&str] = &[
        "crates/asyncrt/src/timer.rs",
        "crates/foc/src/traits.rs",
        "crates/obs/src/ring.rs",
        "crates/core/src/record.rs",
    ];
    EXACT.contains(&rel) || PREFIX.iter().any(|p| rel.starts_with(p))
}

/// Crates whose abort-tagging mentions are not backend tag sites (the
/// stats sink defining `abort`/`abort_at`, and this crate's own scanner).
fn is_abort_rule_exempt(rel: &str) -> bool {
    rel.starts_with("crates/obs/") || rel.starts_with("crates/verify/")
}

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

/// True if `code` uses `unsafe` somewhere that creates a justification
/// obligation — i.e. anywhere except the bare fn-pointer *type*
/// `unsafe fn(…)`, which imposes its obligation on callers, not here.
fn has_unsafe_obligation(code: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find("unsafe") {
        let at = from + off;
        from = at + "unsafe".len();
        let before_ok = !code[..at].chars().next_back().is_some_and(is_ident_char);
        let after = &code[at + "unsafe".len()..];
        let after_ok = !after.chars().next().is_some_and(is_ident_char);
        if !(before_ok && after_ok) {
            continue;
        }
        let rest = after.trim_start();
        let is_fn_pointer_type = rest
            .strip_prefix("fn")
            .is_some_and(|r| r.trim_start().starts_with('('));
        if !is_fn_pointer_type {
            return true;
        }
    }
    false
}

/// True if any comment within `lookback` lines at or above `idx` contains
/// `needle`.
fn comment_nearby(lines: &[Line], idx: usize, lookback: usize, needles: &[&str]) -> bool {
    let lo = idx.saturating_sub(lookback);
    lines[lo..=idx]
        .iter()
        .any(|l| needles.iter().any(|n| l.comment.contains(n)))
}

/// Runs every applicable rule over one source file. `rel` is the
/// workspace-relative path (forward slashes) — it selects which rules and
/// allowlists apply.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let (lines, spans) = analyze(src);
    let mut out: Vec<Violation> = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: rel.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    let in_async_layer =
        rel.starts_with("crates/asyncrt/src/") || rel.starts_with("crates/structs/src/");

    for (idx, line) in lines.iter().enumerate() {
        if line.skipped {
            continue;
        }
        let code = &line.code;

        // unsafe-safety -----------------------------------------------------
        if has_unsafe_obligation(code) && !comment_nearby(&lines, idx, 10, &["SAFETY", "# Safety"])
        {
            push(
                idx,
                RULE_SAFETY,
                "`unsafe` without a `// SAFETY:` justification on the line or within 10 lines above"
                    .to_string(),
            );
        }

        // ordering-comment --------------------------------------------------
        if is_ordering_critical(rel) {
            let used: Vec<&str> = ORDERING_VARIANTS
                .iter()
                .filter(|v| code.contains(&format!("Ordering::{v}")))
                .copied()
                .collect();
            if !used.is_empty() && !comment_nearby(&lines, idx, 6, &["ord:"]) {
                push(
                    idx,
                    RULE_ORD,
                    format!(
                        "atomic Ordering::{} in a protocol-critical module without an `// ord:` \
                         pairing comment on the line or within 6 lines above",
                        used.join("/")
                    ),
                );
            }
        }

        // await-in-attempt --------------------------------------------------
        if in_async_layer && code.contains(".await") {
            if let Some(span) = innermost_span(&spans, idx) {
                if span.code.contains("begin_attempt(")
                    || span.code.contains(".begin(")
                    || span.code.contains(".begin_ro(")
                {
                    push(
                        idx,
                        RULE_AWAIT,
                        "`.await` inside a function that starts a word-STM attempt: a live \
                         transaction must never cross a suspension point"
                            .to_string(),
                    );
                }
            }
        }

        // abort-tag-once / abort-var-attribution ----------------------------
        // Both rules scan the full (possibly rustfmt-wrapped) argument
        // window of every abort-flavoured call that names a literal
        // `AbortCause::` — relay calls passing a computed cause are the
        // callee's problem, enforced at ITS literal-cause call sites.
        if !is_abort_rule_exempt(rel) {
            for open in call_opens_with(code, "abort") {
                let window = call_window(&lines, idx, open);
                let Some(cpos) = window.find("AbortCause::") else {
                    continue;
                };
                let cause: String = window[cpos + "AbortCause::".len()..]
                    .chars()
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                // abort-var-attribution: every tagging call must attribute
                // the conflicting t-variable, or decline explicitly with
                // `VarAttr::NoVar` — budget/retry causes included (their
                // declining is what keeps the heatmap honest).
                if !window.contains("VarAttr::") {
                    push(
                        idx,
                        RULE_ABORT_VAR,
                        format!(
                            "abort cause {cause} tagged without a `VarAttr` attribution — name \
                             the t-variable fought over or decline with `VarAttr::NoVar`"
                        ),
                    );
                }
                // abort-tag-once: only direct stats-sink calls — helpers
                // like `tag_abort` guard internally.
                let direct =
                    code[..open].ends_with(".abort") || code[..open].ends_with(".abort_at");
                if direct && cause != "BudgetExhausted" {
                    // The tag-once flag vocabulary across the backends:
                    // `dead`/`finished` (tl, tl2, dstm), `cause_tagged`
                    // (algo2), `guard` (coarse — the gate handle doubles
                    // as the "attempt still undecided" flag).
                    let guarded = innermost_span(&spans, idx).is_some_and(|s| {
                        ["dead", "finished", "cause_tagged", "guard"]
                            .iter()
                            .any(|flag| has_token(&s.code, flag))
                    });
                    if !guarded {
                        push(
                            idx,
                            RULE_ABORT,
                            format!(
                                "abort cause {cause} tagged in a function that does not touch a \
                                 per-transaction tag-once flag \
                                 (`dead`/`finished`/`cause_tagged`/`guard`)"
                            ),
                        );
                    }
                }
            }
        }

        // std-sync-lock -----------------------------------------------------
        if !is_std_lock_allowed(rel) {
            let qualified = code.contains("std::sync::Mutex") || code.contains("std::sync::RwLock");
            let imported = code.trim_start().starts_with("use ")
                && code.contains("std::sync")
                && (has_token(code, "Mutex") || has_token(code, "RwLock"));
            if qualified || imported {
                push(
                    idx,
                    RULE_STD_LOCK,
                    "std::sync::Mutex/RwLock outside the blocking-site allowlist — use atomics, \
                     parking_lot, or add the file to the allowlist with a rationale"
                        .to_string(),
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Workspace walk.
// ---------------------------------------------------------------------------

/// Result of linting a workspace tree.
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

/// Directory components never linted: build output, test/bench/example
/// code (different hygiene regime), and the lint's own negative fixtures.
const SKIP_DIRS: &[&str] = &["target", "tests", "benches", "examples", "fixtures", ".git"];

fn collect_rs(dir: &Path, under_src: bool, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, under_src || name == "src", out)?;
        } else if under_src && path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under the `src/` trees of `root` (the workspace
/// root: `root/src` plus `root/crates/*/…/src`), honouring [`SKIP_DIRS`].
pub fn lint_workspace(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, top == "src", &mut files)?;
        }
    }
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        violations.extend(lint_source(&rel, &src));
    }
    Ok(WorkspaceReport {
        files_scanned: files.len(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(src: &str) -> Vec<(String, String)> {
        let mut mode = Mode::Code;
        src.lines().map(|l| split_line(&mut mode, l)).collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let c = classify("let x = 1; // SAFETY: fine\nlet y = /* ord: no */ 2;");
        assert_eq!(c[0].0.trim(), "let x = 1;");
        assert!(c[0].1.contains("SAFETY"));
        assert_eq!(c[1].0.replace(' ', ""), "lety=2;");
        assert!(c[1].1.contains("ord: no"));
    }

    #[test]
    fn strips_string_contents_and_char_literals() {
        let c =
            classify(r#"let s = "unsafe Ordering::SeqCst"; let c = '{'; let l: &'static str = s;"#);
        assert!(!c[0].0.contains("unsafe"));
        assert!(!c[0].0.contains('{'));
        assert!(c[0].0.contains("'static"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let c = classify("/* outer /* inner */ still comment */ code_here();");
        assert_eq!(c[0].0.trim(), "code_here();");
    }

    #[test]
    fn raw_strings_are_opaque() {
        let c = classify(r##"let s = r#"unsafe // not a comment"#; tail();"##);
        assert!(!c[0].0.contains("unsafe"));
        assert!(c[0].0.contains("tail();"));
        assert!(c[0].1.is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "fn a() { unsafe { x() } }\n#[cfg(test)]\nmod tests {\n    fn b() { unsafe { y() } }\n}\n";
        let v = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn fn_spans_nest() {
        let (_, spans) = analyze("fn outer() {\n    fn inner() {\n        body();\n    }\n}\n");
        assert_eq!(spans.len(), 2);
        let inner = innermost_span(&spans, 2).unwrap();
        assert_eq!(inner.start, 1);
        assert!(inner.code.contains("body"));
    }

    #[test]
    fn abort_call_opens_are_found_by_ident() {
        let code = "self.tag_abort(a); tx.try_abort(); plain(); x.abort_at(b)";
        let opens = call_opens_with(code, "abort");
        assert_eq!(opens.len(), 3, "{opens:?}"); // tag_abort, try_abort, abort_at
        assert!(opens.iter().all(|&i| code.as_bytes()[i] == b'('));
    }

    #[test]
    fn call_window_joins_wrapped_arguments() {
        let (lines, _) = analyze(
            "fn f() {\n    s.abort_at(\n        AbortCause::LockBusy, // cause\n        \
             VarAttr::Var(x.0),\n    );\n    next();\n}\n",
        );
        let open = lines[1].code.find('(').unwrap();
        let w = call_window(&lines, 1, open);
        assert!(w.contains("AbortCause::LockBusy"), "{w}");
        assert!(w.contains("VarAttr::Var"), "{w}");
        assert!(
            !w.contains("next"),
            "window must stop at the balanced close: {w}"
        );
    }

    #[test]
    fn ordering_rule_only_in_critical_files() {
        let src = "fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }\n";
        assert!(lint_source("crates/core/src/notify.rs", src)
            .iter()
            .any(|v| v.rule == RULE_ORD));
        assert!(lint_source("crates/obs/src/stats.rs", src).is_empty());
    }
}
