//! Workspace STM-invariant lint driver. Usage:
//!
//! ```text
//! oftm-lint [--root <workspace-root>]
//! ```
//!
//! Walks every `src/` tree under the root (default: the current
//! directory, falling back to the nearest ancestor containing
//! `Cargo.toml` + `crates/`), applies the rules in [`oftm_verify::lint`],
//! prints each violation as `path:line: [rule] message`, and exits with
//! status 1 if any were found.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(r) = explicit {
        return r;
    }
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: oftm-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("oftm-lint: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = find_root(root);
    let report = match oftm_verify::lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oftm-lint: walking {} failed: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        println!(
            "oftm-lint: {} files clean (root {})",
            report.files_scanned,
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "oftm-lint: {} violation(s) across {} files",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
