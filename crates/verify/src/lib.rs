//! # oftm-verify — correctness tooling for the OFTM workspace
//!
//! Two halves, both aimed at the lock-free kernels whose correctness the
//! rest of the reproduction leans on:
//!
//! * [`lint`] — `oftm-lint`, a workspace-source static-analysis pass
//!   (a lightweight token scanner; no external parser). It enforces the
//!   STM-specific hygiene invariants that `rustc`/`clippy` cannot see:
//!   every `unsafe` block justified by a `// SAFETY:` comment, every
//!   atomic `Ordering` in a protocol-critical module justified by a
//!   `// ord:` comment naming its pairing, no `.await` while a word-STM
//!   attempt is live, abort causes tagged exactly once per attempt, and
//!   no `std::sync` locks outside an explicit allowlist.
//! * [`model`] — a deterministic bounded-preemption interleaving
//!   explorer (a miniature loom/CHESS) plus [`model::sync`], an
//!   instrumented implementation of [`oftm_core::kernel::SyncFacade`].
//!   The `model_notify`/`model_grace` test suites run the *production*
//!   notify and grace-period kernels under it and exhaustively check, at
//!   preemption bound ≥ 2, that no interleaving loses a wakeup or
//!   flushes a retire-set a live reader predates.
//!
//! Run the lint with `cargo run -p oftm-verify --bin oftm-lint`; run the
//! model suites with `cargo test -p oftm-verify`. Both are CI gates (the
//! `verify` job). Counterexamples print an `OFTM_MODEL_SEED` that
//! replays the failing interleaving deterministically.

pub mod lint;
pub mod model;
