//! **Bounded-preemption interleaving explorer** — a miniature loom/CHESS.
//!
//! [`check`] runs a scenario (a handful of threads over instrumented
//! synchronization primitives, [`sync`]) under a cooperative scheduler
//! that serializes every visible operation: exactly one thread runs at a
//! time, and before each atomic/lock operation the scheduler picks who
//! goes next. A DFS over those decisions enumerates **every**
//! sequentially consistent interleaving whose number of *preemptions*
//! (switching away from a thread that could have continued) is within the
//! configured bound — the CHESS result is that almost all concurrency
//! bugs surface within two. Weak-memory reorderings are out of scope: the
//! explorer checks the interleaving/ordering structure of a protocol, not
//! its fence placement (those arguments stay in the module docs and are
//! kept honest by `oftm-lint`'s `// ord:` rule).
//!
//! A scenario fails by panicking in a thread body (`assert!`), by
//! deadlocking (no thread runnable — which is also how a *lost wakeup*
//! manifests: the waiter blocks forever on a wake that never comes), or
//! by a failed [`Builder::after`] post-condition. The failing schedule is
//! reported as a [`Counterexample`] carrying a step-by-step trace and a
//! replay seed: set `OFTM_MODEL_SEED=<seed>` (mirroring the differential
//! harness's `HARNESS_SEED`) to re-run exactly that interleaving.
//!
//! The protocol code under test is **production code**: the kernels in
//! [`oftm_core::kernel`] are generic over a synchronization facade, and
//! [`sync::ModelSync`] instruments every operation as a decision point.

pub mod sync;

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// A scheduling predicate for a blocked thread: the thread is runnable
/// again once it returns `true` (lock released, wake flag set, ...).
pub type Pred = Box<dyn Fn() -> bool + Send>;

/// Exploration parameters.
#[derive(Clone)]
pub struct Config {
    /// Scenario name (reported in counterexamples).
    pub name: &'static str,
    /// Maximum preemptions per schedule (CHESS context bound). Schedules
    /// that only switch at blocking points are always explored.
    pub preemption_bound: usize,
    /// Hard ceiling on explored schedules: exceeding it fails loudly
    /// (the exhaustiveness claim would otherwise silently be false).
    pub max_executions: usize,
}

impl Config {
    pub fn new(name: &'static str) -> Self {
        Config {
            name,
            preemption_bound: 2,
            max_executions: 500_000,
        }
    }

    pub fn preemptions(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }
}

/// Per-execution scenario assembly: register thread bodies (and an
/// optional post-condition) for one run. The scenario closure is invoked
/// fresh for every explored schedule.
type ThreadBody = Box<dyn FnOnce() + Send>;

#[derive(Default)]
pub struct Builder {
    threads: Vec<(&'static str, ThreadBody)>,
    after: Option<Box<dyn FnOnce()>>,
}

impl Builder {
    /// Registers a model thread. Bodies communicate through the
    /// instrumented primitives in [`sync`]; a panic (failed `assert!`)
    /// becomes a counterexample.
    pub fn thread(&mut self, name: &'static str, body: impl FnOnce() + Send + 'static) {
        self.threads.push((name, Box::new(body)));
    }

    /// Registers a post-condition, run single-threaded after every thread
    /// finished. Model primitives may be used freely here (they no longer
    /// yield). A panic becomes a counterexample.
    pub fn after(&mut self, f: impl FnOnce() + 'static) {
        self.after = Some(Box::new(f));
    }
}

/// Successful exhaustive exploration.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: usize,
}

/// A failing schedule: what went wrong, the step-by-step interleaving,
/// and the seed that replays it.
#[derive(Debug)]
pub struct Counterexample {
    pub name: &'static str,
    pub message: String,
    /// Decision positions, the raw schedule encoding.
    pub schedule: Vec<usize>,
    /// `OFTM_MODEL_SEED` value replaying exactly this schedule.
    pub seed: String,
    /// Human-readable interleaving: one line per granted step.
    pub trace: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model '{}' counterexample: {}", self.name, self.message)?;
        writeln!(f, "replay with OFTM_MODEL_SEED={}", self.seed)?;
        write!(f, "{}", self.trace)
    }
}

pub type Outcome = Result<Report, Box<Counterexample>>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Spawned, not yet at its first decision point.
    Born,
    /// At a decision point, unconditionally runnable.
    Ready,
    /// At a decision point, runnable only when its predicate holds.
    Blocked,
    /// Holds the token (or is between decision points).
    Running,
    Finished,
}

struct ExecState {
    phase: Vec<Phase>,
    labels: Vec<&'static str>,
    preds: Vec<Option<Pred>>,
    granted: Option<usize>,
    /// Set on failure: every thread unwinds at its next decision point.
    abandoned: bool,
    failure: Option<String>,
    trace: Vec<(usize, &'static str)>,
}

pub(crate) struct Execution {
    st: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind worker threads of an abandoned execution.
struct AbandonMarker;

/// One scheduling decision point: blocks until the scheduler grants this
/// thread the token. Called by every instrumented operation *before* it
/// executes. Outside a model execution (setup, `after`, plain tests) it
/// is a no-op, so kernels behave normally when used un-scheduled.
pub(crate) fn step(label: &'static str) {
    step_inner(label, None)
}

/// As [`step`], but the thread is only runnable once `pred` holds (lock
/// acquisition, waiting for a wake). The scheduler evaluates `pred` at
/// every decision; if every unfinished thread's predicate is false the
/// execution is reported as a deadlock.
pub(crate) fn step_blocked(label: &'static str, pred: Pred) {
    step_inner(label, Some(pred))
}

fn step_inner(label: &'static str, pred: Option<Pred>) {
    let ctx = CTX.with(|c| c.borrow().clone());
    let Some((exec, me)) = ctx else { return };
    let mut st = exec.st.lock().unwrap();
    st.labels[me] = label;
    st.phase[me] = if pred.is_some() {
        Phase::Blocked
    } else {
        Phase::Ready
    };
    st.preds[me] = pred;
    exec.cv.notify_all();
    loop {
        if st.abandoned {
            drop(st);
            std::panic::panic_any(AbandonMarker);
        }
        if st.granted == Some(me) {
            st.granted = None;
            st.phase[me] = Phase::Running;
            st.preds[me] = None;
            st.trace.push((me, label));
            break;
        }
        st = exec.cv.wait(st).unwrap();
    }
}

/// One decision of a finished run, with enough structure to enumerate its
/// untried alternatives under the preemption bound.
struct Decision {
    /// Preemption cost (0 or 1) of each candidate, in exploration order
    /// (candidate 0 is "continue the current thread" when possible).
    cand_costs: Vec<usize>,
    /// Position chosen this run.
    pos: usize,
    /// Preemptions spent strictly before this decision.
    preempt_before: usize,
}

struct RunResult {
    decisions: Vec<Decision>,
    positions: Vec<usize>,
    failure: Option<String>,
    trace: String,
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn format_trace(names: &[&'static str], trace: &[(usize, &'static str)]) -> String {
    let mut out = String::new();
    for (k, (t, label)) in trace.iter().enumerate() {
        out.push_str(&format!("  step {k:3}: [{}] {}\n", names[*t], label));
    }
    out
}

fn run_once(scenario: &dyn Fn(&mut Builder), plan: &[usize]) -> RunResult {
    let mut b = Builder::default();
    scenario(&mut b);
    let n = b.threads.len();
    assert!(n > 0, "model scenario registered no threads");
    let names: Vec<&'static str> = b.threads.iter().map(|(nm, _)| *nm).collect();
    let exec = Arc::new(Execution {
        st: Mutex::new(ExecState {
            phase: vec![Phase::Born; n],
            labels: vec![""; n],
            preds: (0..n).map(|_| None).collect(),
            granted: None,
            abandoned: false,
            failure: None,
            trace: Vec::new(),
        }),
        cv: Condvar::new(),
    });

    let handles: Vec<_> = b
        .threads
        .into_iter()
        .enumerate()
        .map(|(i, (name, body))| {
            let exec = Arc::clone(&exec);
            std::thread::Builder::new()
                .name(format!("model-{name}"))
                .spawn(move || {
                    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), i)));
                    let r = catch_unwind(AssertUnwindSafe(body));
                    CTX.with(|c| *c.borrow_mut() = None);
                    let mut st = exec.st.lock().unwrap();
                    st.phase[i] = Phase::Finished;
                    if let Err(p) = r {
                        if p.downcast_ref::<AbandonMarker>().is_none() {
                            if st.failure.is_none() {
                                st.failure =
                                    Some(format!("thread '{name}' panicked: {}", payload_msg(&*p)));
                            }
                            st.abandoned = true;
                        }
                    }
                    exec.cv.notify_all();
                })
                .expect("spawn model thread")
        })
        .collect();

    let mut decisions: Vec<Decision> = Vec::new();
    let mut positions: Vec<usize> = Vec::new();
    let mut preemptions = 0usize;
    let mut prev: Option<usize> = None;
    {
        let mut st = exec.st.lock().unwrap();
        loop {
            while !st.abandoned
                && st
                    .phase
                    .iter()
                    .any(|p| matches!(p, Phase::Born | Phase::Running))
            {
                st = exec.cv.wait(st).unwrap();
            }
            if st.abandoned {
                // Unwind everyone still parked at a decision point.
                while !st.phase.iter().all(|p| *p == Phase::Finished) {
                    exec.cv.notify_all();
                    st = exec.cv.wait(st).unwrap();
                }
                break;
            }
            if st.phase.iter().all(|p| *p == Phase::Finished) {
                break;
            }
            let enabled: Vec<usize> = (0..n)
                .filter(|&t| match st.phase[t] {
                    Phase::Ready => true,
                    Phase::Blocked => st.preds[t].as_ref().is_some_and(|p| p()),
                    _ => false,
                })
                .collect();
            if enabled.is_empty() {
                let waiting: Vec<String> = (0..n)
                    .filter(|&t| st.phase[t] != Phase::Finished)
                    .map(|t| format!("[{}] blocked at {}", names[t], st.labels[t]))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: no runnable thread ({})",
                    waiting.join(", ")
                ));
                st.abandoned = true;
                exec.cv.notify_all();
                continue;
            }
            let mut cands: Vec<usize> = Vec::new();
            if let Some(p) = prev {
                if enabled.contains(&p) {
                    cands.push(p);
                }
            }
            for &t in &enabled {
                if Some(t) != prev {
                    cands.push(t);
                }
            }
            let depth = decisions.len();
            let pos = plan.get(depth).copied().unwrap_or(0);
            if pos >= cands.len() {
                st.failure = Some(format!(
                    "schedule replay mismatch at decision {depth}: position {pos} of {} candidates",
                    cands.len()
                ));
                st.abandoned = true;
                exec.cv.notify_all();
                continue;
            }
            let cand_costs: Vec<usize> = cands
                .iter()
                .map(|&c| match prev {
                    Some(p) if enabled.contains(&p) && c != p => 1,
                    _ => 0,
                })
                .collect();
            preemptions += cand_costs[pos];
            decisions.push(Decision {
                preempt_before: preemptions - cand_costs[pos],
                cand_costs,
                pos,
            });
            positions.push(pos);
            let chosen = cands[pos];
            st.granted = Some(chosen);
            st.phase[chosen] = Phase::Running;
            prev = Some(chosen);
            exec.cv.notify_all();
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let mut st = exec.st.lock().unwrap();
    let mut failure = st.failure.take();
    let trace_events = std::mem::take(&mut st.trace);
    drop(st);
    if failure.is_none() {
        if let Some(after) = b.after {
            if let Err(p) = catch_unwind(AssertUnwindSafe(after)) {
                failure = Some(format!("post-condition failed: {}", payload_msg(&*p)));
            }
        }
    }
    RunResult {
        decisions,
        positions,
        failure,
        trace: format_trace(&names, &trace_events),
    }
}

fn counterexample(cfg: &Config, r: RunResult) -> Box<Counterexample> {
    let seed = r
        .positions
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    Box::new(Counterexample {
        name: cfg.name,
        message: r.failure.unwrap_or_default(),
        schedule: r.positions,
        seed,
        trace: r.trace,
    })
}

/// Explores every schedule of `scenario` within `cfg.preemption_bound`
/// preemptions. Returns the number of schedules on success, or the first
/// failing schedule as a [`Counterexample`].
///
/// If `OFTM_MODEL_SEED` is set (a comma-separated decision list printed
/// with every counterexample), only that single schedule is replayed.
pub fn check(cfg: Config, scenario: impl Fn(&mut Builder)) -> Outcome {
    if let Ok(seed) = std::env::var("OFTM_MODEL_SEED") {
        let plan: Vec<usize> = seed
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad OFTM_MODEL_SEED component {s:?}"))
            })
            .collect();
        eprintln!(
            "model '{}': replaying OFTM_MODEL_SEED with {} decisions",
            cfg.name,
            plan.len()
        );
        let r = run_once(&scenario, &plan);
        return match r.failure {
            Some(_) => Err(counterexample(&cfg, r)),
            None => Ok(Report { executions: 1 }),
        };
    }

    let mut plan: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    loop {
        let r = run_once(&scenario, &plan);
        executions += 1;
        if r.failure.is_some() {
            let ce = counterexample(&cfg, r);
            eprintln!("{ce}");
            return Err(ce);
        }
        assert!(
            executions < cfg.max_executions,
            "model '{}' exceeded max_executions={} before exhausting the schedule space",
            cfg.name,
            cfg.max_executions
        );
        // Backtrack: deepest decision with an untried alternative whose
        // preemption cost still fits the bound.
        let mut ds = r.decisions;
        let mut next: Option<Vec<usize>> = None;
        while let Some(d) = ds.pop() {
            for p in d.pos + 1..d.cand_costs.len() {
                if d.preempt_before + d.cand_costs[p] <= cfg.preemption_bound {
                    let mut v: Vec<usize> = ds.iter().map(|x| x.pos).collect();
                    v.push(p);
                    next = Some(v);
                    break;
                }
            }
            if next.is_some() {
                break;
            }
        }
        match next {
            Some(v) => plan = v,
            None => return Ok(Report { executions }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::sync::MAtomicU64;
    use oftm_core::kernel::AtomicU64Like;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    /// Two independent threads of 3 ops each. The schedules within
    /// preemption bound 2 are hand-countable: 2 serial, 4 with one
    /// preemption (A^i B^3 A^(3-i) and mirrored), 8 with two
    /// (A^i B^j A^(3-i) B^(3-j), i,j ∈ {1,2}, and mirrored) — 14 total.
    /// Locks down the explorer's enumeration (no missed or duplicated
    /// schedules).
    #[test]
    fn explorer_enumerates_exactly_the_bounded_schedules() {
        let count = |bound: usize| {
            check(
                Config::new("three-by-three").preemptions(bound),
                |b: &mut Builder| {
                    for name in ["a", "b"] {
                        let x = Arc::new(MAtomicU64::new(0));
                        b.thread(name, move || {
                            for _ in 0..3 {
                                x.load(SeqCst);
                            }
                        });
                    }
                },
            )
            .expect("no assertions to fail")
            .executions
        };
        assert_eq!(count(0), 2);
        assert_eq!(count(1), 6);
        assert_eq!(count(2), 14);
        // Unbounded (6 preemptions cover every interleaving of 3+3 ops):
        // C(6,3) = 20 interleavings.
        assert_eq!(count(6), 20);
    }

    #[test]
    fn deadlock_is_reported_with_trace_and_seed() {
        let err = check(Config::new("stuck"), |b: &mut Builder| {
            b.thread("waits-forever", || {
                step_blocked("never", Box::new(|| false));
            });
        })
        .expect_err("must deadlock");
        assert!(err.message.contains("deadlock"), "{err}");
        assert!(err.message.contains("blocked at never"), "{err}");
    }

    #[test]
    fn max_executions_overflow_is_loud() {
        let r = std::panic::catch_unwind(|| {
            let _ = check(
                Config::new("too-big").preemptions(2).max_executions(3),
                |b: &mut Builder| {
                    for name in ["a", "b"] {
                        let x = Arc::new(MAtomicU64::new(0));
                        b.thread(name, move || {
                            for _ in 0..3 {
                                x.load(SeqCst);
                            }
                        });
                    }
                },
            );
        });
        assert!(
            r.is_err(),
            "exceeding max_executions must panic, not truncate"
        );
    }
}
