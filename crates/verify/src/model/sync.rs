//! **Instrumented synchronization facade** — implements
//! [`oftm_core::kernel::SyncFacade`] so the production protocol kernels
//! ([`oftm_core::kernel::NotifyProto`], [`oftm_core::kernel::GraceCore`])
//! run under the model scheduler. Every operation calls
//! [`super::step`]/[`super::step_blocked`] *before* executing, making it a
//! scheduling decision point; the operation itself then runs atomically
//! while the thread holds the token. All orderings collapse to `SeqCst`:
//! the model explores sequentially consistent interleavings only.
//!
//! Outside a model execution the `step` calls are no-ops, so these types
//! also behave as ordinary (slow) primitives in plain unit tests.

use oftm_core::kernel::{AtomicU64Like, MutexLike, SlotSet, SyncFacade, WakeRef, IDLE_SLOT};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use super::{step, step_blocked};

/// Model atomic `u64`: each operation is a decision point.
pub struct MAtomicU64 {
    v: AtomicU64,
}

impl AtomicU64Like for MAtomicU64 {
    fn new(v: u64) -> Self {
        MAtomicU64 {
            v: AtomicU64::new(v),
        }
    }

    fn load(&self, _ord: Ordering) -> u64 {
        step("atomic.load");
        self.v.load(Ordering::SeqCst)
    }

    fn store(&self, v: u64, _ord: Ordering) {
        step("atomic.store");
        self.v.store(v, Ordering::SeqCst)
    }

    fn fetch_add(&self, v: u64, _ord: Ordering) -> u64 {
        step("atomic.fetch_add");
        self.v.fetch_add(v, Ordering::SeqCst)
    }

    fn fetch_sub(&self, v: u64, _ord: Ordering) -> u64 {
        step("atomic.fetch_sub");
        self.v.fetch_sub(v, Ordering::SeqCst)
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        step("atomic.compare_exchange");
        self.v
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Model mutex: acquisition is a *blocking* decision point (the thread is
/// not runnable while another holds the lock), so lock-ordering deadlocks
/// surface as model deadlocks. The critical section itself runs without
/// further decision points of its own — but any instrumented atomic used
/// inside it still yields, which is exactly how the kernels interleave.
pub struct MMutex<T> {
    held: Arc<AtomicBool>,
    value: UnsafeCell<T>,
}

// SAFETY: `MMutex` hands out `&mut T` only inside `with`, which excludes
// other threads via the `held` flag under the model scheduler's
// one-thread-at-a-time token (acquisition only proceeds when `held` is
// false, and no other thread runs between the grant and the flag store).
unsafe impl<T: Send> Send for MMutex<T> {}
// SAFETY: as above — shared access never yields `&T` at all, only the
// exclusive, flag-guarded `&mut T` inside `with`.
unsafe impl<T: Send> Sync for MMutex<T> {}

/// Clears `held` even if the closure panics (a failed `assert!` inside a
/// lock scope must not deadlock the remaining model threads).
struct Unlock(Arc<AtomicBool>);

impl Drop for Unlock {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

impl<T: Send> MutexLike<T> for MMutex<T> {
    fn new(value: T) -> Self {
        MMutex {
            held: Arc::new(AtomicBool::new(false)),
            value: UnsafeCell::new(value),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let held = Arc::clone(&self.held);
        step_blocked("mutex.lock", Box::new(move || !held.load(Ordering::SeqCst)));
        // The scheduler granted us the token with `held` false and no
        // other thread can run until our next decision point, so this
        // store cannot race another acquisition.
        self.held.store(true, Ordering::SeqCst);
        let _unlock = Unlock(Arc::clone(&self.held));
        // SAFETY: `held` was false and is now true; every other locker is
        // blocked in `step_blocked` until `_unlock` drops, so this is the
        // only live reference to the value.
        f(unsafe { &mut *self.value.get() })
    }
}

/// The model facade: plug into [`NotifyProto`]/[`GraceCore`] type
/// parameters in place of [`oftm_core::kernel::StdSync`].
///
/// [`NotifyProto`]: oftm_core::kernel::NotifyProto
/// [`GraceCore`]: oftm_core::kernel::GraceCore
pub struct ModelSync;

impl SyncFacade for ModelSync {
    type Au64 = MAtomicU64;
    type Mutex<T: Send> = MMutex<T>;
}

/// Model waker: the kernel-facing half is [`WakeRef`] (what
/// `NotifyProto::publish` calls); the scenario-facing half is
/// [`MWaker::wait_woken`], which blocks the model thread until some other
/// thread has woken it — the analogue of the async runtime parking a task
/// until its waker fires. A lost wakeup therefore shows up as a model
/// deadlock: the waiter blocked in `wait_woken` forever.
#[derive(Clone)]
pub struct MWaker {
    woken: Arc<AtomicBool>,
}

impl Default for MWaker {
    fn default() -> Self {
        Self::new()
    }
}

impl MWaker {
    pub fn new() -> Self {
        MWaker {
            woken: Arc::new(AtomicBool::new(false)),
        }
    }

    /// True once `wake_ref` has fired since the last `reset`.
    pub fn woken(&self) -> bool {
        self.woken.load(Ordering::SeqCst)
    }

    /// Re-arms the waker for another park round.
    pub fn reset(&self) {
        step("waker.reset");
        self.woken.store(false, Ordering::SeqCst);
    }

    /// Blocks this model thread until the waker fires.
    pub fn wait_woken(&self) {
        let woken = Arc::clone(&self.woken);
        step_blocked(
            "waker.wait_woken",
            Box::new(move || woken.load(Ordering::SeqCst)),
        );
    }
}

impl WakeRef for MWaker {
    fn wake_ref(&self) {
        step("waker.wake");
        self.woken.store(true, Ordering::SeqCst);
    }

    fn will_wake(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.woken, &other.woken)
    }
}

/// Fixed-capacity slot store for [`oftm_core::kernel::GraceCore`]: the
/// model-checkable counterpart of `oftm-core`'s chunked `SlotArray`. Both
/// claim with the same CAS-from-idle protocol; this one never grows
/// (scenarios size it to their thread count), so the chunk-installation
/// argument the production array adds stays out of the model's scope.
pub struct FixedSlots {
    slots: Vec<Arc<MAtomicU64>>,
}

impl FixedSlots {
    pub fn new(capacity: usize) -> Self {
        FixedSlots {
            slots: (0..capacity)
                .map(|_| Arc::new(MAtomicU64::new(IDLE_SLOT)))
                .collect(),
        }
    }
}

impl SlotSet<MAtomicU64> for FixedSlots {
    type Handle = Arc<MAtomicU64>;

    fn claim(&self, e: u64) -> Self::Handle {
        for slot in &self.slots {
            if slot.load(Ordering::SeqCst) == IDLE_SLOT
                && slot
                    .compare_exchange(IDLE_SLOT, e, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return Arc::clone(slot);
            }
        }
        panic!("FixedSlots exhausted: size the model slot store to the scenario's thread count");
    }

    fn min_active(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .min()
            .unwrap_or(IDLE_SLOT)
    }
}
