//! Transactional variables: a CAS-able pointer to the current locator.
//!
//! A `TVar<T>` is the paper's t-variable. Its entire shared state is one
//! atomic pointer to the currently installed [`Locator`]; acquiring the
//! variable (for reading or writing) is a CAS on this pointer, exactly the
//! "exclusive but revocable ownership" scheme of Section 1. Replaced
//! locators are reclaimed through `crossbeam_epoch`: a transaction pins the
//! epoch for its whole lifetime, so every locator address it recorded in
//! its read-set stays valid (no ABA) until the transaction ends.

use super::descriptor::Descriptor;
use super::locator::{classify, Locator, ValueClass};
use crossbeam_epoch::{Atomic, Guard, Owned, Shared};
use oftm_histories::{BaseObjId, TVarId, TxId};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A shared transactional variable holding values of type `T`.
///
/// Cloning a `TVar` clones a handle to the same variable (like `Arc`).
pub struct TVar<T: Clone + Send + Sync + 'static> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T: Clone + Send + Sync + 'static> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

pub(crate) struct TVarInner<T: Clone + Send + Sync + 'static> {
    pub id: TVarId,
    /// Base-object identity of the locator-pointer cell.
    pub base: BaseObjId,
    pub ptr: Atomic<Locator<T>>,
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// Creates a t-variable with an initial value, installed by the
    /// conceptual initializing transaction `T_0` (a pre-committed
    /// descriptor), so the resolution rules need no special "no locator"
    /// case.
    pub fn new(id: TVarId, initial: T) -> Self {
        let init_desc = Arc::new(Descriptor::committed(TxId::new(u32::MAX, id.0 as u32)));
        let locator = Locator::new(init_desc, initial.clone(), initial);
        TVar {
            inner: Arc::new(TVarInner {
                id,
                base: crate::record::fresh_base_id(),
                ptr: Atomic::new(locator),
            }),
        }
    }

    /// The t-variable's identifier.
    pub fn id(&self) -> TVarId {
        self.inner.id
    }

    /// Reads the current committed value outside any transaction.
    ///
    /// This is *not* a TM operation (the paper's model has no
    /// non-transactional accesses, footnote 4); it exists for test oracles
    /// and post-run inspection. Linearizes at the locator load + status
    /// read.
    pub fn read_atomic(&self) -> T {
        let guard = crossbeam_epoch::pin();
        // ord: Acquire pairs with the Release half of the locator-install
        // CAS so the locator's fields are visible.
        let shared = self.inner.ptr.load(Ordering::Acquire, &guard);
        // SAFETY: `shared` was loaded under `guard`; locators are only
        // retired via `defer_destroy` after being unlinked, so the
        // reference is valid for the guard's lifetime.
        let loc = unsafe { shared.deref() };
        match loc.owner.status() {
            super::descriptor::TxState::Committed => {
                // SAFETY: status observed Committed with Acquire.
                unsafe { loc.committed_value().clone() }
            }
            _ => loc.old.clone(),
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for TVarInner<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` in drop means no other thread holds a handle;
        // the current locator can be reclaimed immediately.
        unsafe {
            let guard = crossbeam_epoch::unprotected();
            // ord: Relaxed — exclusive access in Drop (&mut self).
            let shared = self.ptr.load(Ordering::Relaxed, guard);
            if !shared.is_null() {
                drop(shared.into_owned());
            }
        }
    }
}

/// Result of probing a t-variable: the identity of the current locator and
/// how it resolves for the probing transaction. Read-set validation
/// compares stored probes against fresh ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Probe {
    pub addr: usize,
    pub class: ValueClass,
}

/// Object-safe view of a t-variable used by the type-erased read-set.
pub(crate) trait TVarDyn: Send + Sync {
    fn base(&self) -> BaseObjId;
    /// Loads the current locator (under the transaction's guard) and
    /// classifies it for `me`.
    fn probe(&self, guard: &Guard, me: &Descriptor) -> Probe;
}

impl<T: Clone + Send + Sync + 'static> TVarDyn for TVarInner<T> {
    fn base(&self) -> BaseObjId {
        self.base
    }

    fn probe(&self, guard: &Guard, me: &Descriptor) -> Probe {
        // ord: Acquire pairs with the locator-install CAS's Release half.
        let shared = self.ptr.load(Ordering::Acquire, guard);
        // SAFETY: loaded under `guard`; see `read_atomic`.
        let loc = unsafe { shared.deref() };
        Probe {
            addr: shared.as_raw() as usize,
            class: classify(loc, me),
        }
    }
}

/// Internal helpers for the transaction engine.
impl<T: Clone + Send + Sync + 'static> TVarInner<T> {
    /// Loads the current locator under `guard`.
    pub(crate) fn load<'g>(&self, guard: &'g Guard) -> Shared<'g, Locator<T>> {
        // ord: Acquire pairs with the locator-install CAS's Release half.
        self.ptr.load(Ordering::Acquire, guard)
    }

    /// Attempts to swing the locator pointer from `current` to `new`,
    /// retiring the old locator on success. Returns the address of the new
    /// locator, or the rejected `new` on failure.
    pub(crate) fn cas<'g>(
        &self,
        current: Shared<'g, Locator<T>>,
        new: Owned<Locator<T>>,
        guard: &'g Guard,
    ) -> Result<usize, Owned<Locator<T>>> {
        match self
            .ptr
            // ord: AcqRel — Release publishes the new locator's fields to
            // Acquire loaders; Acquire orders the unlinked `current` before
            // defer_destroy. Failure Acquire pairs with the winner's install.
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire, guard)
        {
            Ok(installed) => {
                // SAFETY: `current` has just been unlinked by this CAS and
                // can no longer be reached from the t-variable; readers that
                // loaded it earlier are protected by their own pins.
                unsafe { guard.defer_destroy(current) };
                Ok(installed.as_raw() as usize)
            }
            Err(e) => Err(e.new),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_readable() {
        let v = TVar::new(TVarId(0), 42u64);
        assert_eq!(v.read_atomic(), 42);
    }

    #[test]
    fn clone_shares_state() {
        let v = TVar::new(TVarId(1), 7u64);
        let w = v.clone();
        assert_eq!(w.read_atomic(), 7);
        assert!(Arc::ptr_eq(&v.inner, &w.inner));
    }

    #[test]
    fn probe_reports_new_for_initial() {
        let v = TVar::new(TVarId(2), 1u64);
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let guard = crossbeam_epoch::pin();
        let p = v.inner.probe(&guard, &me);
        assert_eq!(p.class, ValueClass::New); // initial locator is committed
    }

    #[test]
    fn cas_swings_and_retires() {
        let v = TVar::new(TVarId(3), 1u64);
        let me = Arc::new(Descriptor::new(TxId::new(1, 0), 0));
        let guard = crossbeam_epoch::pin();
        let cur = v.inner.load(&guard);
        let newloc = Owned::new(Locator::new(Arc::clone(&me), 1u64, 9u64));
        let addr = v.inner.cas(cur, newloc, &guard).expect("uncontended CAS");
        let re = v.inner.load(&guard);
        assert_eq!(re.as_raw() as usize, addr);
        // Owner still live: logical value is old = 1.
        assert_eq!(v.read_atomic(), 1);
        me.try_commit();
        assert_eq!(v.read_atomic(), 9);
    }

    #[test]
    fn cas_failure_returns_locator() {
        let v = TVar::new(TVarId(4), 1u64);
        let me = Arc::new(Descriptor::new(TxId::new(1, 0), 0));
        let guard = crossbeam_epoch::pin();
        let cur = v.inner.load(&guard);
        // First CAS wins.
        let l1 = Owned::new(Locator::new(Arc::clone(&me), 1u64, 2u64));
        v.inner.cas(cur, l1, &guard).unwrap();
        // Second CAS with the stale `cur` must fail and hand the locator back.
        let l2 = Owned::new(Locator::new(Arc::clone(&me), 1u64, 3u64));
        assert!(v.inner.cas(cur, l2, &guard).is_err());
    }

    #[test]
    fn non_u64_payloads_work() {
        let v = TVar::new(TVarId(5), String::from("hello"));
        assert_eq!(v.read_atomic(), "hello");
    }
}
