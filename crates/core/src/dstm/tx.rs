//! The transaction engine: acquisition, invisible reads, incremental
//! validation, commit and abort.
//!
//! This follows the DSTM recipe the paper describes in Section 1:
//!
//! * **writes** acquire exclusive-but-revocable ownership by CAS-ing a new
//!   locator into the t-variable;
//! * **reads** are invisible: they resolve the current committed value and
//!   remember `(locator, resolution)` in a private read-set;
//! * on *every* subsequent access and at commit, the whole read-set is
//!   re-validated ("the state of `y` is re-read to ensure that `T_i` still
//!   observes a consistent state"), which yields opacity, not just
//!   serializability;
//! * encountering a **live owner** invokes the contention manager, which
//!   may back off but must eventually abort the owner (obstruction-
//!   freedom);
//! * **commit** is a single CAS on the own descriptor's status word.

use super::descriptor::{Descriptor, TxState};
use super::locator::{Locator, ValueClass};
use super::stm::{Dstm, Progress};
use super::tvar::{Probe, TVar, TVarDyn};
use crate::api::{TxError, TxResult};
use crate::cm::Resolution;
use crossbeam_epoch::{Guard, Owned};
use oftm_histories::{Access, ProcId, TxId};
use oftm_obs::{pack_tx, AbortCause, Counter, VarAttr, TX_UNKNOWN};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One entry of the invisible read-set. The id is denormalized out of the
/// trait object: dedup and upgrade scans compare it on every read, and a
/// virtual `tvar_id()` per comparison is measurable on the hot path.
pub(crate) struct ReadEntry {
    id: oftm_histories::TVarId,
    tvar: Arc<dyn TVarDyn>,
    probe: Probe,
}

/// A live transaction on a [`Dstm`] instance.
///
/// Not `Send`: a transaction is executed by a single process (thread), as
/// in the paper's model. Holds an epoch pin for its whole lifetime so that
/// read-set locator addresses cannot be reclaimed-and-reused (no ABA).
pub struct Tx<'s> {
    stm: &'s Dstm,
    desc: Arc<Descriptor>,
    guard: Guard,
    read_set: Vec<ReadEntry>,
    /// Number of successful acquisitions (for statistics).
    writes: usize,
    finished: bool,
    /// Whether an abort cause has been recorded for this attempt. Each
    /// aborted attempt contributes exactly one cause to the telemetry; the
    /// first site that discovers the attempt dead tags it.
    cause_tagged: bool,
}

impl<'s> Tx<'s> {
    pub(crate) fn new(stm: &'s Dstm, desc: Arc<Descriptor>) -> Self {
        // Reuse a pooled read-set buffer: steady-state transactions
        // validate tens of entries and must not re-grow a fresh `Vec`
        // every attempt.
        let read_set = stm.take_read_scratch(desc.id().proc);
        Tx {
            stm,
            desc,
            guard: crossbeam_epoch::pin(),
            read_set,
            writes: 0,
            finished: false,
            cause_tagged: false,
        }
    }

    /// This transaction's packed forensic identity ([`pack_tx`]).
    fn packed_id(&self) -> u64 {
        let id = self.desc.id();
        pack_tx(id.proc, id.seq)
    }

    /// Records the abort cause of this attempt, first tag wins. `var`
    /// attributes the t-variable the conflict was over and `aggressor`
    /// names the peer that won it ([`TX_UNKNOWN`] when no peer is
    /// identifiable), feeding the contention heatmap and the
    /// who-aborted-whom edge table.
    fn tag_abort(&mut self, cause: AbortCause, var: VarAttr, aggressor: u64) {
        if !self.cause_tagged {
            self.cause_tagged = true;
            self.stm
                .stats()
                .abort_at(cause, var, self.packed_id(), aggressor);
        }
    }

    /// This transaction's identifier.
    pub fn id(&self) -> TxId {
        self.desc.id()
    }

    fn proc(&self) -> ProcId {
        self.desc.id().process()
    }

    /// Records a low-level step if a recorder is attached.
    fn rstep(&self, obj: oftm_histories::BaseObjId, access: Access) {
        if let Some(rec) = self.stm.recorder() {
            rec.step(self.proc(), Some(self.desc.id()), obj, access);
        }
    }

    /// Checks our own fate: a forcefully aborted transaction must stop.
    /// Discovering the abort here means a peer killed us through the
    /// contention manager — the only writer of a foreign status word.
    fn check_self(&mut self) -> TxResult<()> {
        if self.desc.status() == TxState::Live {
            Ok(())
        } else {
            let (killer, kvar) = self.desc.killer();
            self.tag_abort(AbortCause::CmArbitrated, VarAttr::opt(kvar), killer);
            Err(TxError::Aborted)
        }
    }

    /// Re-validates the entire read-set (incremental validation). Returns
    /// the first invalidated entry's t-variable (the conflict attribution
    /// of a `ReadValidation` abort), or `None` when consistent.
    fn first_invalid(&self) -> Option<oftm_histories::TVarId> {
        self.read_set
            .iter()
            .find(|e| {
                self.rstep(e.tvar.base(), Access::Read);
                e.tvar.probe(&self.guard, &self.desc) != e.probe
            })
            .map(|e| e.id)
    }

    fn validate_or_abort(&mut self) -> TxResult<()> {
        match self.first_invalid() {
            None => Ok(()),
            Some(x) => {
                self.abort_self(AbortCause::ReadValidation, VarAttr::Var(x.0), TX_UNKNOWN);
                Err(TxError::Aborted)
            }
        }
    }

    /// Marks ourselves aborted. `cause`, `var` and `aggressor` attribute
    /// the abort when the status CAS is ours to win; losing it means a
    /// peer got there first, which re-attributes the attempt to
    /// contention-manager arbitration by whoever the killer stamp names.
    fn abort_self(&mut self, cause: AbortCause, var: VarAttr, aggressor: u64) {
        let won = self.desc.try_abort();
        if won {
            self.rstep(self.desc.base(), Access::Modify);
            self.tag_abort(cause, var, aggressor);
        } else {
            let (killer, kvar) = self.desc.killer();
            self.tag_abort(AbortCause::CmArbitrated, VarAttr::opt(kvar), killer);
        }
        self.stm.cm().on_abort(&self.desc);
        self.finished = true;
    }

    /// Resolves a conflict over t-variable `var` with the live foreign
    /// `owner` per the contention manager and the progress policy. Returns
    /// when the owner is no longer live (aborted by us or completed by
    /// itself) or asks the caller to re-examine the variable.
    fn resolve_conflict(
        &self,
        owner: &Arc<Descriptor>,
        var: oftm_histories::TVarId,
        attempt: &mut u32,
    ) {
        match self.stm.cm().resolve(&self.desc, owner, *attempt) {
            Resolution::AbortOther => {
                // The eventual-ic variant (Definition 4) refuses to kill an
                // owner before its grace period elapsed, obstructing the
                // caller for a bounded time instead.
                if let Progress::EventualGrace(grace) = self.stm.progress() {
                    let now = self.stm.now_nanos();
                    let first = owner.note_conflict(now);
                    if now.saturating_sub(first) < grace.as_nanos() as u64 {
                        backoff(Duration::from_micros(5));
                        *attempt = attempt.saturating_add(1);
                        return;
                    }
                }
                // Leave the forensic who-aborted-whom stamp before the
                // abort CAS: a victim that sees itself Aborted can then
                // name us and the variable we fought over exactly.
                owner.stamp_killer(self.packed_id(), var.0);
                let killed = owner.try_abort();
                self.rstep(
                    owner.base(),
                    if killed { Access::Modify } else { Access::Read },
                );
            }
            Resolution::Backoff(d) => {
                backoff(d);
                *attempt = attempt.saturating_add(1);
            }
        }
    }

    /// Reads t-variable `v` within the transaction.
    pub fn read<T: Clone + Send + Sync + 'static>(&mut self, v: &TVar<T>) -> TxResult<T> {
        self.check_self()?;
        let mut attempt = 0u32;
        loop {
            let shared = v.inner.load(&self.guard);
            self.rstep(v.inner.base, Access::Read);
            // SAFETY: loaded under our guard, locators are retired via
            // defer_destroy only after unlinking.
            let loc = unsafe { shared.deref() };

            if Arc::ptr_eq(&loc.owner, &self.desc) {
                // Our own tentative value.
                self.rstep(loc.base, Access::Read);
                // SAFETY: we are the owner and live (checked above).
                let val = unsafe { loc.tentative_value().clone() };
                return Ok(val);
            }

            let status = loc.owner.status();
            self.rstep(loc.owner.base(), Access::Read);
            let (val, class) = match status {
                TxState::Committed => {
                    self.rstep(loc.base, Access::Read);
                    // SAFETY: observed Committed with Acquire.
                    (unsafe { loc.committed_value().clone() }, ValueClass::New)
                }
                TxState::Aborted => {
                    self.rstep(loc.base, Access::Read);
                    (loc.old.clone(), ValueClass::Old)
                }
                TxState::Live => {
                    // Paper: "T_i just needs to make sure that no other
                    // transaction T_k is currently updating y; if not, then
                    // T_i may have to eventually abort T_k."
                    self.resolve_conflict(&loc.owner, v.inner.id, &mut attempt);
                    self.check_self()?;
                    continue;
                }
            };

            let addr = shared.as_raw() as usize;
            let probe = Probe { addr, class };
            // Re-reading a variable must not duplicate its entry: `write`
            // upgrades read entries to ownership, and a stale duplicate
            // left behind would fail every later validation (a permanent
            // self-abort loop for read-read-write patterns, e.g. list
            // traversals that re-read the link they then update).
            if !self
                .read_set
                .iter()
                .any(|e| e.id == v.inner.id && e.probe == probe)
            {
                self.read_set.push(ReadEntry {
                    id: v.inner.id,
                    tvar: v.inner.clone() as Arc<dyn TVarDyn>,
                    probe,
                });
            }
            self.stm.cm().on_open(&self.desc);
            self.validate_or_abort()?;
            return Ok(val);
        }
    }

    /// Writes `value` to t-variable `v` within the transaction, acquiring
    /// ownership if not already held.
    pub fn write<T: Clone + Send + Sync + 'static>(
        &mut self,
        v: &TVar<T>,
        value: T,
    ) -> TxResult<()> {
        self.check_self()?;
        let mut attempt = 0u32;
        loop {
            let shared = v.inner.load(&self.guard);
            self.rstep(v.inner.base, Access::Read);
            // SAFETY: as in `read`.
            let loc = unsafe { shared.deref() };

            if Arc::ptr_eq(&loc.owner, &self.desc) {
                // Already own it: update the tentative value in place.
                // SAFETY: we are the live owner; no outstanding references
                // to the tentative value exist (reads clone it out).
                unsafe { loc.set_tentative(value) };
                self.rstep(loc.base, Access::Modify);
                return Ok(());
            }

            let status = loc.owner.status();
            self.rstep(loc.owner.base(), Access::Read);
            let old_val = match status {
                TxState::Committed => {
                    self.rstep(loc.base, Access::Read);
                    // SAFETY: observed Committed with Acquire.
                    unsafe { loc.committed_value().clone() }
                }
                TxState::Aborted => {
                    self.rstep(loc.base, Access::Read);
                    loc.old.clone()
                }
                TxState::Live => {
                    self.resolve_conflict(&loc.owner, v.inner.id, &mut attempt);
                    self.check_self()?;
                    continue;
                }
            };

            // If we read this variable earlier, the value we saw must still
            // be the one we are about to supersede — otherwise our snapshot
            // is stale. Every entry for the variable must agree (probes are
            // deduplicated, but distinct stale probes can coexist).
            let addr = shared.as_raw() as usize;
            if self
                .read_set
                .iter()
                .any(|e| e.id == v.inner.id && e.probe.addr != addr)
            {
                self.abort_self(
                    AbortCause::ReadValidation,
                    VarAttr::Var(v.inner.id.0),
                    TX_UNKNOWN,
                );
                return Err(TxError::Aborted);
            }

            let new_loc = Owned::new(Locator::new(Arc::clone(&self.desc), old_val, value.clone()));
            match v.inner.cas(shared, new_loc, &self.guard) {
                Ok(new_addr) => {
                    self.rstep(v.inner.base, Access::Modify);
                    // Upgrade every read entry of this variable: ownership
                    // now protects it.
                    for entry in self.read_set.iter_mut().filter(|e| e.id == v.inner.id) {
                        entry.probe = Probe {
                            addr: new_addr,
                            class: ValueClass::Mine,
                        };
                    }
                    self.writes += 1;
                    self.stm.cm().on_open(&self.desc);
                    self.validate_or_abort()?;
                    return Ok(());
                }
                Err(_rejected) => {
                    // Someone interposed; re-examine. (The rejected locator
                    // is dropped here, unpublished.)
                    continue;
                }
            }
        }
    }

    /// `tryC`: validates and attempts the commit CAS. Consumes the
    /// transaction.
    pub fn commit(mut self) -> TxResult<()> {
        if self.desc.status() != TxState::Live {
            let (killer, kvar) = self.desc.killer();
            self.tag_abort(AbortCause::CmArbitrated, VarAttr::opt(kvar), killer);
            self.finished = true;
            return Err(TxError::Aborted);
        }
        // DSTM has no commit lock; the "critical section" is the terminal
        // validate + status CAS, after which the new values are visible.
        let cs_started = Instant::now();
        if let Some(x) = self.first_invalid() {
            self.abort_self(AbortCause::ReadValidation, VarAttr::Var(x.0), TX_UNKNOWN);
            return Err(TxError::Aborted);
        }
        let won = self.desc.try_commit();
        self.rstep(
            self.desc.base(),
            if won { Access::Modify } else { Access::Read },
        );
        self.finished = true;
        self.stm
            .stats()
            .record_commit_cs_ns(cs_started.elapsed().as_nanos() as u64);
        if won {
            self.stm.stats().incr(Counter::Commits);
            self.stm.cm().on_commit(&self.desc);
            Ok(())
        } else {
            // Lost the commit-point CAS on our own status word: a peer's
            // `try_abort` raced us between validation and the CAS; its
            // killer stamp names it and the fought-over variable.
            let (killer, kvar) = self.desc.killer();
            self.tag_abort(AbortCause::CasLost, VarAttr::opt(kvar), killer);
            self.stm.cm().on_abort(&self.desc);
            Err(TxError::Aborted)
        }
    }

    /// Read-only `tryC`: validates the read-set and completes without the
    /// commit CAS.
    ///
    /// Sound only for a transaction that acquired nothing: reads are
    /// invisible and install no locators, so no peer ever holds a
    /// reference to this descriptor, never consults its status word, and
    /// never races `try_abort` against us — the status CAS would publish
    /// nothing and can be elided. The final validation is still the
    /// linearization point (everything read was simultaneously current at
    /// that instant).
    pub fn commit_read_only(mut self) -> TxResult<()> {
        self.commit_read_only_inner(Counter::CommitsRo)
    }

    /// Read-only commit for a transaction that *declared* update intent but
    /// acquired nothing; the word-level adapter routes such transactions
    /// here and the promotion is counted separately.
    pub(crate) fn commit_read_only_promoted(mut self) -> TxResult<()> {
        self.commit_read_only_inner(Counter::CommitsPromoted)
    }

    fn commit_read_only_inner(&mut self, commit_counter: Counter) -> TxResult<()> {
        assert_eq!(
            self.writes, 0,
            "commit_read_only on a transaction that acquired variables"
        );
        if self.desc.status() != TxState::Live {
            let (killer, kvar) = self.desc.killer();
            self.tag_abort(AbortCause::CmArbitrated, VarAttr::opt(kvar), killer);
            self.finished = true;
            return Err(TxError::Aborted);
        }
        let cs_started = Instant::now();
        if let Some(x) = self.first_invalid() {
            self.abort_self(AbortCause::ReadValidation, VarAttr::Var(x.0), TX_UNKNOWN);
            return Err(TxError::Aborted);
        }
        self.finished = true;
        self.stm
            .stats()
            .record_commit_cs_ns(cs_started.elapsed().as_nanos() as u64);
        self.stm.stats().incr(commit_counter);
        self.stm.cm().on_commit(&self.desc);
        Ok(())
    }

    /// `tryA`: voluntarily aborts. Consumes the transaction. Abandoning a
    /// still-viable attempt is an explicit retry in the abort taxonomy.
    pub fn rollback(mut self) {
        self.abort_self(AbortCause::ExplicitRetry, VarAttr::NoVar, TX_UNKNOWN);
    }

    /// Number of t-variables this transaction has acquired for writing.
    pub fn write_count(&self) -> usize {
        self.writes
    }

    /// Number of read-set entries.
    pub fn read_count(&self) -> usize {
        self.read_set.len()
    }
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        // A transaction dropped without commit/rollback (e.g. on panic or
        // early return) must not stay live: its ownerships would make peers
        // abort it anyway, but marking it aborted immediately is cleaner.
        if !self.finished {
            self.abort_self(AbortCause::ExplicitRetry, VarAttr::NoVar, TX_UNKNOWN);
        }
        // Return the read-set buffer (cleared, capacity kept) to the pool.
        let mut buf = std::mem::take(&mut self.read_set);
        buf.clear();
        self.stm.return_read_scratch(self.desc.id().proc, buf);
    }
}

/// Sleeps/spins for roughly `d`. Sub-100µs waits spin (sleep granularity is
/// far coarser); longer waits sleep.
fn backoff(d: Duration) {
    if d < Duration::from_micros(100) {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::Aggressive;
    use oftm_histories::TVarId;

    fn stm() -> Dstm {
        Dstm::new(Arc::new(Aggressive))
    }

    #[test]
    fn read_initial_value() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        let mut tx = s.begin(1);
        assert_eq!(tx.read(&x).unwrap(), 5);
        tx.commit().unwrap();
    }

    #[test]
    fn write_then_read_own() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        let mut tx = s.begin(1);
        tx.write(&x, 9).unwrap();
        assert_eq!(tx.read(&x).unwrap(), 9);
        tx.commit().unwrap();
        assert_eq!(x.read_atomic(), 9);
    }

    #[test]
    fn rollback_discards_writes() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        let tx = {
            let mut tx = s.begin(1);
            tx.write(&x, 9).unwrap();
            tx
        };
        tx.rollback();
        assert_eq!(x.read_atomic(), 5);
    }

    #[test]
    fn drop_without_commit_aborts() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        {
            let mut tx = s.begin(1);
            tx.write(&x, 9).unwrap();
            // dropped here
        }
        assert_eq!(x.read_atomic(), 5);
    }

    #[test]
    fn forceful_abort_stops_victim() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        let mut t1 = s.begin(1);
        t1.write(&x, 6).unwrap();
        // T2 (aggressive CM) steals the variable, aborting T1.
        let mut t2 = s.begin(2);
        t2.write(&x, 7).unwrap();
        t2.commit().unwrap();
        // T1 is dead: all further operations observe the abort.
        assert_eq!(t1.read(&x), Err(TxError::Aborted));
        assert_eq!(t1.commit(), Err(TxError::Aborted));
        assert_eq!(x.read_atomic(), 7);
    }

    #[test]
    fn stale_read_detected_at_commit() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 0);
        let mut t1 = s.begin(1);
        assert_eq!(t1.read(&x).unwrap(), 0);
        // T2 commits a change to x behind T1's back.
        let mut t2 = s.begin(2);
        t2.write(&x, 1).unwrap();
        t2.commit().unwrap();
        // T1's commit must fail validation.
        assert_eq!(t1.commit(), Err(TxError::Aborted));
    }

    #[test]
    fn stale_read_detected_on_next_access() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 0);
        let y: TVar<u64> = TVar::new(TVarId(1), 0);
        let mut t1 = s.begin(1);
        assert_eq!(t1.read(&x).unwrap(), 0);
        let mut t2 = s.begin(2);
        t2.write(&x, 1).unwrap();
        t2.commit().unwrap();
        // Opacity: the very next operation of T1 must abort, it may not see
        // y in a state inconsistent with its earlier read of x.
        assert_eq!(t1.read(&y), Err(TxError::Aborted));
    }

    #[test]
    fn double_read_then_write_commits() {
        // Regression: reading a variable twice used to leave a duplicate
        // read-set entry behind; a subsequent write upgraded only one,
        // and the stale duplicate failed every later validation — an
        // unconditional self-abort loop even single-threaded.
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 3);
        let mut tx = s.begin(1);
        assert_eq!(tx.read(&x).unwrap(), 3);
        assert_eq!(tx.read(&x).unwrap(), 3);
        tx.write(&x, 4).unwrap();
        assert_eq!(tx.read(&x).unwrap(), 4);
        tx.commit().unwrap();
        assert_eq!(x.read_atomic(), 4);
    }

    #[test]
    fn read_write_upgrade_same_tx() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 3);
        let mut tx = s.begin(1);
        let v = tx.read(&x).unwrap();
        tx.write(&x, v + 1).unwrap();
        assert_eq!(tx.read(&x).unwrap(), 4);
        tx.commit().unwrap();
        assert_eq!(x.read_atomic(), 4);
    }

    #[test]
    fn upgrade_fails_if_var_changed_since_read() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 0);
        let mut t1 = s.begin(1);
        let _ = t1.read(&x).unwrap();
        let mut t2 = s.begin(2);
        t2.write(&x, 5).unwrap();
        t2.commit().unwrap();
        // T1 now upgrades its read to a write: must abort (snapshot stale).
        assert_eq!(t1.write(&x, 1), Err(TxError::Aborted));
    }

    #[test]
    fn aborted_owner_value_resolves_to_old() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 5);
        let mut t1 = s.begin(1);
        t1.write(&x, 100).unwrap();
        t1.rollback();
        let mut t2 = s.begin(2);
        assert_eq!(t2.read(&x).unwrap(), 5);
        t2.commit().unwrap();
    }

    #[test]
    fn read_only_commit_detects_stale_read() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 0);
        let mut t1 = s.begin(1);
        assert_eq!(t1.read(&x).unwrap(), 0);
        let mut t2 = s.begin(2);
        t2.write(&x, 1).unwrap();
        t2.commit().unwrap();
        assert_eq!(t1.commit_read_only(), Err(TxError::Aborted));
    }

    #[test]
    fn read_only_commit_succeeds_without_interference() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 7);
        let mut t1 = s.begin(1);
        assert_eq!(t1.read(&x).unwrap(), 7);
        t1.commit_read_only().unwrap();
    }

    #[test]
    fn write_counts_tracked() {
        let s = stm();
        let x: TVar<u64> = TVar::new(TVarId(0), 0);
        let y: TVar<u64> = TVar::new(TVarId(1), 0);
        let mut tx = s.begin(1);
        tx.write(&x, 1).unwrap();
        tx.write(&y, 1).unwrap();
        tx.write(&x, 2).unwrap(); // same var: still one acquisition
        let _ = tx.read(&y).unwrap(); // own var: not a read-set entry
        assert_eq!(tx.write_count(), 2);
        assert_eq!(tx.read_count(), 0);
        tx.commit().unwrap();
    }
}
