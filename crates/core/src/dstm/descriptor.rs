//! Transaction descriptors and their status word.
//!
//! The descriptor is the heart of a DSTM-style OFTM (Section 1 of the
//! paper): every object owned by a live transaction `T_i` points to `T_i`'s
//! descriptor, and the transaction's fate is decided by a single CAS on the
//! descriptor's status word — `Live → Committed` by `T_i` itself, or
//! `Live → Aborted` by any transaction that needs to revoke `T_i`'s
//! ownership. This one shared word is also exactly the "artificial hot
//! spot" of Section 5: unrelated transactions touching different
//! t-variables owned by the same `T_m` contend on `T_m`'s descriptor, which
//! is what Theorem 13 proves unavoidable.

use oftm_histories::{BaseObjId, TxId};
use oftm_obs::TX_UNKNOWN;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// The three states of a transaction (paper, Section 1: "indicates whether
/// `T_i` is still live, already committed or aborted").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TxState {
    Live = 0,
    Committed = 1,
    Aborted = 2,
}

impl TxState {
    fn from_u8(v: u8) -> TxState {
        match v {
            0 => TxState::Live,
            1 => TxState::Committed,
            _ => TxState::Aborted,
        }
    }
}

/// A transaction descriptor.
///
/// Shared via `Arc` between the owning transaction and every locator it
/// installs. All fields are either immutable after construction or atomic.
pub struct Descriptor {
    id: TxId,
    status: AtomicU8,
    /// Base-object identity of the status word, for the low-level recorder.
    base: BaseObjId,
    /// Birth timestamp (nanoseconds since the STM epoch) — Greedy manager.
    birth: u64,
    /// Work-based priority — Karma manager.
    karma: AtomicU64,
    /// First time (nanos since STM epoch) some other transaction wanted to
    /// abort this one; 0 = never. Used by the eventual-ic variant's grace
    /// period (Definition 4).
    first_conflict: AtomicU64,
    /// Forensic killer stamp: packed id ([`oftm_obs::pack_tx`]) of the
    /// transaction that aborted this one, [`TX_UNKNOWN`] while alive.
    /// Write-once, claimed by the aggressor immediately before its
    /// `try_abort` CAS so the victim can attribute its abort exactly.
    killer_tx: AtomicU64,
    /// The t-variable the killer was fighting over (valid once `killer_tx`
    /// is claimed and the claimant's abort CAS has been observed).
    killer_var: AtomicU64,
}

impl Descriptor {
    /// Creates a live descriptor.
    pub fn new(id: TxId, birth: u64) -> Self {
        Descriptor {
            id,
            status: AtomicU8::new(TxState::Live as u8),
            base: crate::record::fresh_base_id(),
            birth,
            karma: AtomicU64::new(0),
            first_conflict: AtomicU64::new(0),
            killer_tx: AtomicU64::new(TX_UNKNOWN),
            // u64::MAX = unset (t-variable id 0 is legal, MAX is not).
            killer_var: AtomicU64::new(u64::MAX),
        }
    }

    /// Creates an already-committed descriptor (used for the initial
    /// locator of every t-variable: the "initializing transaction T_0").
    pub fn committed(id: TxId) -> Self {
        let d = Descriptor::new(id, 0);
        // ord: Release publishes the descriptor's construction to readers
        // that Acquire-load the status via `status()`.
        d.status.store(TxState::Committed as u8, Ordering::Release);
        d
    }

    pub fn id(&self) -> TxId {
        self.id
    }

    pub fn base(&self) -> BaseObjId {
        self.base
    }

    pub fn birth(&self) -> u64 {
        self.birth
    }

    /// Current status.
    ///
    /// `Acquire`: observing `Committed` must synchronize with the owner's
    /// releasing commit CAS so that the tentative value it published (the
    /// locator's `new` field) is visible to us.
    pub fn status(&self) -> TxState {
        // ord: Acquire pairs with the commit/abort CAS's Release (doc above).
        TxState::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Attempts the commit CAS `Live → Committed`.
    ///
    /// `AcqRel` on success: `Release` publishes every pre-commit write
    /// (tentative values) to readers that subsequently `Acquire` the
    /// status; `Acquire` orders the preceding read-set validation before
    /// the state change. Returns `true` iff this call committed the
    /// transaction.
    pub fn try_commit(&self) -> bool {
        self.status
            // ord: AcqRel per the doc above; failure Acquire pairs with the
            // racing settling CAS so the loser sees why it lost.
            .compare_exchange(
                TxState::Live as u8,
                TxState::Committed as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Attempts the abort CAS `Live → Aborted`. Any transaction may call
    /// this on any descriptor — that revocability is what makes the
    /// ownership scheme obstruction-free. Returns `true` iff this call
    /// aborted the transaction (false: it was already committed/aborted).
    pub fn try_abort(&self) -> bool {
        self.status
            // ord: AcqRel — Release makes the Aborted verdict the settled
            // state readers Acquire; failure Acquire pairs with the racing
            // settling CAS.
            .compare_exchange(
                TxState::Live as u8,
                TxState::Aborted as u8,
                Ordering::AcqRel,
                Ordering::Acquire, // ord: pairs with the settling CAS
            )
            .is_ok()
    }

    pub fn karma(&self) -> u64 {
        // ord: Relaxed — monotonic priority counter; contention-manager
        // heuristics tolerate stale reads.
        self.karma.load(Ordering::Relaxed)
    }

    pub fn add_karma(&self, n: u64) {
        // ord: Relaxed — heuristic counter, no payload to order.
        self.karma.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the first moment a peer wanted this transaction gone;
    /// returns that (stable) first moment. Used by the grace-period policy.
    /// Claims the forensic killer stamp of this (victim) descriptor:
    /// `killer` is the aggressor's packed transaction id
    /// ([`oftm_obs::pack_tx`]), `var` the t-variable fought over. First
    /// aggressor wins; later claimants are no-ops. Called immediately
    /// *before* the aggressor's `try_abort`, so a victim that observes
    /// itself `Aborted` (an Acquire on the status word) also observes the
    /// winning claimant's stamp when that claimant is the one whose abort
    /// CAS succeeded — the overwhelmingly common case. A claimant that
    /// stalls between stamp and abort CAS while a second aggressor kills
    /// the victim can leave `killer_var` momentarily unset; the victim
    /// then attributes the abort to the stamped killer with no variable,
    /// which is imprecise but never fabricated.
    pub fn stamp_killer(&self, killer: u64, var: u64) {
        if self
            .killer_tx
            // ord: AcqRel keeps the stamp write-once (mirrors
            // `note_conflict`); failure Acquire pairs with the first
            // claimant's Release.
            .compare_exchange(TX_UNKNOWN, killer, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // ord: Release so a reader that Acquires `killer_var` (or the
            // claimant's subsequent abort CAS on the status word) sees it.
            self.killer_var.store(var, Ordering::Release);
        }
    }

    /// The killer stamp: packed aggressor id (or [`TX_UNKNOWN`] if nobody
    /// stamped us) and the t-variable fought over (`None` until the
    /// claimant's var store is visible).
    pub fn killer(&self) -> (u64, Option<u64>) {
        // ord: Acquire pairs with the stamping claimant's Release stores.
        let tx = self.killer_tx.load(Ordering::Acquire);
        if tx == TX_UNKNOWN {
            return (TX_UNKNOWN, None);
        }
        // ord: Acquire pairs with `stamp_killer`'s Release store; MAX with
        // a claimed killer_tx means the claimant's store is not yet
        // visible.
        match self.killer_var.load(Ordering::Acquire) {
            u64::MAX => (tx, None),
            v => (tx, Some(v)),
        }
    }

    pub fn note_conflict(&self, now: u64) -> u64 {
        let now = now.max(1); // 0 is the "unset" sentinel
        match self
            .first_conflict
            // ord: AcqRel keeps the first-conflict timestamp write-once;
            // failure Acquire pairs with the first writer's Release so
            // `prev` is the stable value every caller agrees on.
            .compare_exchange(0, now, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => now,
            Err(prev) => prev,
        }
    }
}

impl std::fmt::Debug for Descriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Descriptor")
            .field("id", &self.id)
            .field("status", &self.status())
            .field("karma", &self.karma())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_commit() {
        let d = Descriptor::new(TxId::new(1, 0), 5);
        assert_eq!(d.status(), TxState::Live);
        assert!(d.try_commit());
        assert_eq!(d.status(), TxState::Committed);
        // Terminal: neither abort nor a second commit may succeed.
        assert!(!d.try_abort());
        assert!(!d.try_commit());
        assert_eq!(d.status(), TxState::Committed);
    }

    #[test]
    fn lifecycle_abort() {
        let d = Descriptor::new(TxId::new(1, 1), 5);
        assert!(d.try_abort());
        assert_eq!(d.status(), TxState::Aborted);
        assert!(!d.try_commit());
    }

    #[test]
    fn commit_abort_race_has_single_winner() {
        use std::sync::Arc;
        for _ in 0..64 {
            let d = Arc::new(Descriptor::new(TxId::new(1, 2), 0));
            let d2 = Arc::clone(&d);
            let committer = std::thread::spawn(move || d2.try_commit());
            let aborted = d.try_abort();
            let committed = committer.join().unwrap();
            assert!(
                committed ^ aborted,
                "exactly one of commit/abort must win (committed={committed}, aborted={aborted})"
            );
        }
    }

    #[test]
    fn precommitted_descriptor() {
        let d = Descriptor::committed(TxId::new(0, 0));
        assert_eq!(d.status(), TxState::Committed);
        assert!(!d.try_abort());
    }

    #[test]
    fn karma_accumulates() {
        let d = Descriptor::new(TxId::new(1, 3), 0);
        d.add_karma(2);
        d.add_karma(3);
        assert_eq!(d.karma(), 5);
    }

    #[test]
    fn first_conflict_is_sticky() {
        let d = Descriptor::new(TxId::new(1, 4), 0);
        assert_eq!(d.note_conflict(100), 100);
        assert_eq!(d.note_conflict(200), 100);
    }

    #[test]
    fn note_conflict_zero_is_clamped() {
        let d = Descriptor::new(TxId::new(1, 5), 0);
        assert_eq!(d.note_conflict(0), 1);
    }

    #[test]
    fn killer_stamp_is_write_once() {
        let d = Descriptor::new(TxId::new(2, 0), 0);
        assert_eq!(d.killer(), (TX_UNKNOWN, None));
        d.stamp_killer(oftm_obs::pack_tx(1, 7), 42);
        d.stamp_killer(oftm_obs::pack_tx(3, 9), 99); // loses the claim
        assert_eq!(d.killer(), (oftm_obs::pack_tx(1, 7), Some(42)));
    }

    #[test]
    fn killer_stamp_admits_tvar_zero() {
        let d = Descriptor::new(TxId::new(2, 1), 0);
        d.stamp_killer(oftm_obs::pack_tx(1, 1), 0);
        assert_eq!(d.killer(), (oftm_obs::pack_tx(1, 1), Some(0)));
    }

    #[test]
    fn unique_base_ids() {
        let a = Descriptor::new(TxId::new(1, 6), 0);
        let b = Descriptor::new(TxId::new(1, 7), 0);
        assert_ne!(a.base(), b.base());
    }
}
