//! The `Dstm` STM instance: configuration, transaction factory, and the
//! `atomically` retry loop.

use super::descriptor::Descriptor;
use super::tvar::TVar;
use super::tx::{ReadEntry, Tx};
use crate::api::{TxError, TxResult};
use crate::cm::{Aggressive, ContentionManager};
use crate::pool::SlotPool;
use crate::record::Recorder;
use oftm_histories::{TVarId, TxId};
use oftm_obs::{Counter, StmStats};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Progress policy of a [`Dstm`] instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Progress {
    /// Obstruction-free per Definition 2: a live owner can be aborted
    /// immediately (subject only to the contention manager's bounded
    /// courtesy).
    ObstructionFree,
    /// Eventually ic-obstruction-free per Definition 4: a live owner is
    /// protected by a grace period from the first conflict; within it,
    /// conflicting transactions wait (even if the owner's process crashed).
    /// This deliberately weakens the progress guarantee to the one
    /// Theorem 6 starts from.
    EventualGrace(Duration),
}

/// A DSTM-style obstruction-free software transactional memory.
///
/// Create one instance per logical memory; create t-variables with
/// [`Dstm::new_tvar`] and run transactions with [`Dstm::atomically`] or the
/// explicit [`Dstm::begin`] / [`Tx::commit`] pair.
pub struct Dstm {
    cm: Arc<dyn ContentionManager>,
    progress: Progress,
    recorder: Option<Arc<Recorder>>,
    epoch: Instant,
    tx_seq: AtomicU32,
    tvar_seq: AtomicU32,
    /// Pooled read-set buffers (keyed by process), recycled across
    /// transactions so the steady state allocates nothing per attempt.
    read_scratch: SlotPool<Vec<ReadEntry>>,
    /// Always-on telemetry: begins/commits/aborts-by-cause and latency
    /// histograms. Shared with the word-level adapter ([`super::word`]),
    /// so one registry covers both API layers of this instance. Behind an
    /// `Arc` so an embedding backend (the hybrid) can share one registry
    /// across engines.
    stats: Arc<StmStats>,
}

impl Default for Dstm {
    fn default() -> Self {
        Dstm::new(Arc::new(Aggressive))
    }
}

impl Dstm {
    /// Creates an obstruction-free instance with the given contention
    /// manager.
    pub fn new(cm: Arc<dyn ContentionManager>) -> Self {
        Dstm {
            cm,
            progress: Progress::ObstructionFree,
            recorder: None,
            epoch: Instant::now(),
            tx_seq: AtomicU32::new(0),
            tvar_seq: AtomicU32::new(0),
            read_scratch: SlotPool::new(),
            stats: Arc::new(StmStats::new()),
        }
    }

    /// Replaces the telemetry registry with a shared one (the hybrid
    /// backend routes both embedded engines into a single registry).
    pub fn with_stats(mut self, stats: Arc<StmStats>) -> Self {
        self.stats = stats;
        self
    }

    /// Starts transaction sequence numbers at `base`, so two engines
    /// embedded behind one facade (and one recorder) never mint colliding
    /// `TxId`s for the same process.
    pub fn with_tx_base(self, base: u32) -> Self {
        // ord: Relaxed — single-threaded builder; atomicity alone keeps
        // later ids unique.
        self.tx_seq.store(base, Ordering::Relaxed);
        self
    }

    /// The telemetry registry of this instance (shared with the word-level
    /// adapter). Counters use relaxed sharded atomics; reading them is
    /// always safe and never perturbs transactions.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    /// Pops a pooled read-set buffer (empty, warm capacity).
    pub(crate) fn take_read_scratch(&self, proc: u32) -> Vec<ReadEntry> {
        self.read_scratch
            .take(proc as usize)
            .map(|b| *b)
            .unwrap_or_default()
    }

    /// Returns a cleared read-set buffer to the pool.
    pub(crate) fn return_read_scratch(&self, proc: u32, buf: Vec<ReadEntry>) {
        self.read_scratch.put(proc as usize, Box::new(buf));
    }

    /// Switches the instance to the eventually-ic progress policy with the
    /// given grace period (see [`Progress::EventualGrace`]).
    pub fn with_grace(mut self, grace: Duration) -> Self {
        self.progress = Progress::EventualGrace(grace);
        self
    }

    /// Attaches a low-level history recorder (instrumented runs).
    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    pub fn cm(&self) -> &dyn ContentionManager {
        &*self.cm
    }

    pub fn progress(&self) -> Progress {
        self.progress
    }

    pub(crate) fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    /// Shared recorder handle, if any.
    pub fn recorder_arc(&self) -> Option<Arc<Recorder>> {
        self.recorder.clone()
    }

    /// Nanoseconds since this instance was created.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Creates a fresh t-variable managed by this instance.
    pub fn new_tvar<T: Clone + Send + Sync + 'static>(&self, initial: T) -> TVar<T> {
        // ord: Relaxed — atomicity alone keeps ids unique; the t-variable
        // itself is published by the registry's Release install.
        let id = TVarId(u64::from(self.tvar_seq.fetch_add(1, Ordering::Relaxed)));
        TVar::new(id, initial)
    }

    /// Begins a transaction on behalf of process `proc`.
    ///
    /// Per footnote 3 of the paper, the transaction id combines the process
    /// id with a counter; we use a global counter, which also yields unique
    /// ids.
    pub fn begin(&self, proc: u32) -> Tx<'_> {
        // ord: Relaxed — atomicity alone keeps transaction ids unique.
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        let desc = Arc::new(Descriptor::new(TxId::new(proc, seq), self.now_nanos()));
        self.stats.incr(Counter::Begins);
        Tx::new(self, desc)
    }

    /// Runs `body` in a transaction, retrying on abort until it commits
    /// (each retry is a fresh transaction, as the paper prescribes).
    /// Returns the result of the committed attempt.
    pub fn atomically<R>(&self, proc: u32, mut body: impl FnMut(&mut Tx<'_>) -> TxResult<R>) -> R {
        self.atomically_counted(proc, &mut body).0
    }

    /// Like [`Dstm::atomically`] but also reports the number of attempts
    /// (1 = committed first try).
    pub fn atomically_counted<R>(
        &self,
        proc: u32,
        body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<R>,
    ) -> (R, u32) {
        let mut attempts = 0;
        loop {
            if attempts > 0 {
                self.stats.incr(Counter::Retries);
            }
            attempts += 1;
            let started = Instant::now();
            let mut tx = self.begin(proc);
            let committed = match body(&mut tx) {
                Ok(r) => {
                    if tx.commit().is_ok() {
                        Some(r)
                    } else {
                        None
                    }
                }
                Err(TxError::Aborted) => {
                    // body observed the abort; loop for a fresh attempt
                    None
                }
            };
            self.stats
                .record_attempt_ns(started.elapsed().as_nanos() as u64);
            if let Some(r) = committed {
                return (r, attempts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::Polite;

    #[test]
    fn atomically_counter_increment() {
        let stm = Dstm::default();
        let x = stm.new_tvar(0u64);
        for i in 0..10 {
            stm.atomically(0, |tx| {
                let v = tx.read(&x)?;
                tx.write(&x, v + 1)
            });
            assert_eq!(x.read_atomic(), i + 1);
        }
    }

    #[test]
    fn unique_tvar_ids() {
        let stm = Dstm::default();
        let a = stm.new_tvar(0u64);
        let b = stm.new_tvar(0u64);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn concurrent_counter_is_linear() {
        let stm = Arc::new(Dstm::new(Arc::new(Polite::default())));
        let x = stm.new_tvar(0u64);
        const THREADS: u32 = 4;
        const PER: u64 = 250;
        std::thread::scope(|s| {
            for p in 0..THREADS {
                let stm = Arc::clone(&stm);
                let x = x.clone();
                s.spawn(move || {
                    for _ in 0..PER {
                        stm.atomically(p, |tx| {
                            let v = tx.read(&x)?;
                            tx.write(&x, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(x.read_atomic(), u64::from(THREADS) * PER);
    }

    #[test]
    fn concurrent_disjoint_vars_no_interference() {
        let stm = Arc::new(Dstm::default());
        let vars: Vec<_> = (0..4).map(|_| stm.new_tvar(0u64)).collect();
        std::thread::scope(|s| {
            for (p, v) in vars.iter().enumerate() {
                let stm = Arc::clone(&stm);
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..500 {
                        stm.atomically(p as u32, |tx| {
                            let cur = tx.read(&v)?;
                            tx.write(&v, cur + 1)
                        });
                    }
                });
            }
        });
        for v in &vars {
            assert_eq!(v.read_atomic(), 500);
        }
    }

    #[test]
    fn multi_var_invariant_preserved() {
        // Transfer between two accounts; total must be conserved at every
        // commit point.
        let stm = Arc::new(Dstm::new(Arc::new(Polite::default())));
        let a = stm.new_tvar(500i64 as u64);
        let b = stm.new_tvar(500u64);
        std::thread::scope(|s| {
            for p in 0..4u32 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for i in 0..200u64 {
                        let amount = i % 7;
                        stm.atomically(p, |tx| {
                            let va = tx.read(&a)?;
                            let vb = tx.read(&b)?;
                            if va >= amount {
                                tx.write(&a, va - amount)?;
                                tx.write(&b, vb + amount)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            // Concurrent observers check the invariant transactionally.
            for p in 4..6u32 {
                let stm = Arc::clone(&stm);
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..200 {
                        let total = stm.atomically(p, |tx| {
                            let va = tx.read(&a)?;
                            let vb = tx.read(&b)?;
                            Ok(va + vb)
                        });
                        assert_eq!(total, 1000);
                    }
                });
            }
        });
        assert_eq!(a.read_atomic() + b.read_atomic(), 1000);
    }

    #[test]
    fn attempts_reported() {
        let stm = Dstm::default();
        let x = stm.new_tvar(0u64);
        let (v, attempts) = stm.atomically_counted(0, &mut |tx| tx.read(&x));
        assert_eq!(v, 0);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn grace_policy_configured() {
        let stm = Dstm::default().with_grace(Duration::from_millis(1));
        assert!(matches!(stm.progress(), Progress::EventualGrace(_)));
    }
}
