//! Locators: the per-acquisition indirection object of DSTM.
//!
//! A locator bundles `(owner, old, new)` (paper, Section 1): the owning
//! transaction's descriptor, the last committed value (`old`) and the
//! owner's tentative value (`new`). The *logical* value of a t-variable is
//! a function of the locator currently installed in it and the owner's
//! status:
//!
//! | owner status | logical value |
//! |--------------|---------------|
//! | `Committed`  | `new`         |
//! | `Aborted`    | `old`         |
//! | `Live`       | `old` is the last committed value; `new` is tentative and owner-private |
//!
//! ### Aliasing discipline (the `UnsafeCell` part)
//!
//! `new` is mutated by exactly one thread — the owner, strictly before its
//! commit CAS — and read by others only after they observe `Committed` with
//! `Acquire` ordering, which synchronizes-with the owner's `Release` commit
//! CAS. There is therefore never a write concurrent with any other access:
//!
//! * while the owner is `Live`, only the owner touches `new`;
//! * the status word flips to `Committed` exactly once, after which nobody
//!   writes `new` again.
//!
//! This is the publication pattern from *Rust Atomics and Locks* (release/
//! acquire hand-off of non-atomic data); the `unsafe` blocks below each
//! cite which row of the table they rely on.

use super::descriptor::{Descriptor, TxState};
use oftm_histories::BaseObjId;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// A DSTM locator for values of type `T`.
pub struct Locator<T> {
    /// The transaction that installed this locator.
    pub owner: Arc<Descriptor>,
    /// Value of the t-variable before `owner`'s (tentative) update.
    pub old: T,
    /// `owner`'s tentative value; becomes the committed value if `owner`
    /// commits. See the module docs for the aliasing discipline.
    new: UnsafeCell<T>,
    /// Base-object identity for the low-level recorder.
    pub base: BaseObjId,
}

/// SAFETY: `Locator` is shared between threads behind epoch-protected
/// pointers. All fields except `new` are immutable after construction
/// (`owner` is itself `Sync`). Access to `new` follows the single-writer /
/// post-publication-readers protocol documented on the module; the status
/// word provides the release/acquire edge. `T: Send` is required because
/// ownership of the contained values effectively moves between threads via
/// commit; `T: Sync` because committed values are read by reference from
/// many threads.
unsafe impl<T: Send + Sync> Sync for Locator<T> {}
unsafe impl<T: Send> Send for Locator<T> {}

impl<T> Locator<T> {
    /// Creates a locator owned by `owner` with the given last-committed and
    /// tentative values.
    pub fn new(owner: Arc<Descriptor>, old: T, tentative: T) -> Self {
        Locator {
            owner,
            old,
            new: UnsafeCell::new(tentative),
            base: crate::record::fresh_base_id(),
        }
    }

    /// Reads the committed value.
    ///
    /// # Safety
    /// The caller must have observed `self.owner.status() == Committed`
    /// (an `Acquire` load — [`Descriptor::status`] provides it). Per the
    /// module protocol no thread writes `new` after the status becomes
    /// `Committed`, so the shared reference cannot alias a write.
    pub unsafe fn committed_value(&self) -> &T {
        debug_assert_eq!(self.owner.status(), TxState::Committed);
        &*self.new.get()
    }

    /// Reads the tentative value as the owner.
    ///
    /// # Safety
    /// The caller must be the unique owning transaction (holder of the
    /// `Transaction` that installed this locator) and the owner must still
    /// be `Live` from its own perspective. Single-writer protocol: only the
    /// owner thread accesses `new` while `Live`.
    pub unsafe fn tentative_value(&self) -> &T {
        &*self.new.get()
    }

    /// Overwrites the tentative value as the owner.
    ///
    /// # Safety
    /// Same contract as [`Locator::tentative_value`]; additionally the
    /// caller must not hold any outstanding reference obtained from it.
    pub unsafe fn set_tentative(&self, v: T) {
        *self.new.get() = v;
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Locator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locator")
            .field("owner", &self.owner.id())
            .field("status", &self.owner.status())
            .field("old", &self.old)
            .finish()
    }
}

/// Which field of a locator a read resolved to. Recorded in read-set
/// entries; validation checks that re-resolving yields the same class on
/// the same locator (see `tx.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueClass {
    /// Resolved to `old` (owner aborted, or unknown/live third party).
    Old,
    /// Resolved to `new` (owner committed).
    New,
    /// Resolved to the caller's own tentative value.
    Mine,
}

/// Classifies how a locator resolves right now for transaction `me`.
pub fn classify<T>(loc: &Locator<T>, me: &Descriptor) -> ValueClass {
    if std::ptr::eq(Arc::as_ptr(&loc.owner), me as *const Descriptor) {
        // Our own locator: tentative (if we aborted, validation fails via
        // our own status check, not via the class).
        return ValueClass::Mine;
    }
    match loc.owner.status() {
        TxState::Committed => ValueClass::New,
        TxState::Aborted => ValueClass::Old,
        // A live foreign owner: the last committed value is `old`. Readers
        // never use this directly (they first resolve the conflict), but
        // validation may observe it transiently.
        TxState::Live => ValueClass::Old,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn committed_value_visible() {
        let owner = Arc::new(Descriptor::new(TxId::new(1, 0), 0));
        let loc = Locator::new(Arc::clone(&owner), 10u64, 11u64);
        assert_eq!(loc.old, 10);
        assert!(owner.try_commit());
        // SAFETY: status observed Committed just above.
        assert_eq!(unsafe { *loc.committed_value() }, 11);
    }

    #[test]
    fn owner_mutates_tentative() {
        let owner = Arc::new(Descriptor::new(TxId::new(1, 1), 0));
        let loc = Locator::new(Arc::clone(&owner), 0u64, 0u64);
        // SAFETY: single-threaded test, we are the owner, owner is Live.
        unsafe {
            loc.set_tentative(42);
            assert_eq!(*loc.tentative_value(), 42);
        }
        assert!(owner.try_commit());
        assert_eq!(unsafe { *loc.committed_value() }, 42);
    }

    #[test]
    fn classification_follows_status() {
        let owner = Arc::new(Descriptor::new(TxId::new(1, 2), 0));
        let me = Descriptor::new(TxId::new(2, 0), 0);
        let loc = Locator::new(Arc::clone(&owner), 1u64, 2u64);
        assert_eq!(classify(&loc, &me), ValueClass::Old); // live foreign
        owner.try_commit();
        assert_eq!(classify(&loc, &me), ValueClass::New);

        let owner2 = Arc::new(Descriptor::new(TxId::new(1, 3), 0));
        let loc2 = Locator::new(Arc::clone(&owner2), 1u64, 2u64);
        owner2.try_abort();
        assert_eq!(classify(&loc2, &me), ValueClass::Old);
    }

    #[test]
    fn classification_detects_own_locator() {
        let me = Arc::new(Descriptor::new(TxId::new(3, 0), 0));
        let loc = Locator::new(Arc::clone(&me), 1u64, 2u64);
        assert_eq!(classify(&loc, &me), ValueClass::Mine);
    }

    #[test]
    fn cross_thread_publication() {
        // Owner thread writes tentative then commits; reader observes
        // Committed and must see the written value (release/acquire edge).
        for _ in 0..100 {
            let owner = Arc::new(Descriptor::new(TxId::new(1, 4), 0));
            let loc = Arc::new(Locator::new(Arc::clone(&owner), 0u64, 0u64));
            let (loc2, owner2) = (Arc::clone(&loc), Arc::clone(&owner));
            let writer = std::thread::spawn(move || {
                // SAFETY: we are the owner thread; owner is Live.
                unsafe { loc2.set_tentative(7) };
                assert!(owner2.try_commit());
            });
            loop {
                if loc.owner.status() == TxState::Committed {
                    // SAFETY: observed Committed with Acquire.
                    assert_eq!(unsafe { *loc.committed_value() }, 7);
                    break;
                }
                std::hint::spin_loop();
            }
            writer.join().unwrap();
        }
    }
}
