//! The DSTM-style obstruction-free STM (Section 1 of the paper, after
//! Herlihy, Luchangco, Moir & Scherer \[18\]).
//!
//! Module layout:
//! * [`descriptor`] — transaction descriptors and the status-word CAS;
//! * [`locator`] — the `(owner, old, new)` indirection object;
//! * [`tvar`] — t-variables (epoch-managed locator pointers);
//! * [`tx`] — the transaction engine (acquire/read/validate/commit);
//! * [`stm`] — the [`Dstm`] instance and `atomically` retry loop;
//! * [`word`] — the [`crate::api::WordStm`] adapter with event recording.

pub mod descriptor;
pub mod locator;
pub mod stm;
pub mod tvar;
pub mod tx;
pub mod word;

pub use descriptor::{Descriptor, TxState};
pub use locator::{Locator, ValueClass};
pub use stm::{Dstm, Progress};
pub use tvar::TVar;
pub use tx::Tx;
pub use word::DstmWord;
