//! Word-level adapter: exposes a [`Dstm`] through the uniform [`WordStm`]
//! interface and records the high-level TM events (Section 2.2's
//! invocations and responses) when a recorder is attached.
//!
//! ## Read-only transactions
//!
//! [`WordStm::begin_ro`] returns a handle whose `write`/`retire` panic and
//! whose commit takes the validate-only completion of
//! [`Tx::commit_read_only`]: no locator allocation, no acquisition, no
//! commit-status CAS, no commit notification. A plain transaction that
//! happens to write nothing is *promoted* to the same completion at
//! `try_commit` (detect-on-commit). Progress is the backend's usual
//! obstruction-freedom — reads may still have to abort a live writer via
//! the contention manager — and consistency still comes from incremental
//! revalidation (invisible reads have no snapshot clock), so a read costs
//! O(|read-set|); cheaper than the write path, but not wait-free.

use super::stm::Dstm;
use super::tvar::TVar;
use super::tx::Tx;
use crate::api::{TxError, TxResult, WordStm, WordTx};
use crate::notify::CommitNotifier;
use crate::pool::SlotPool;
use crate::reclaim::{GraceTracker, RetiredBlock, TxGrace};
use crate::table::VarTable;
use oftm_histories::{TVarId, TmOp, TmResp, TxId, Value};
use oftm_obs::{Counter, StmStats};

/// A [`Dstm`] with a word-sized t-variable table, implementing [`WordStm`].
///
/// The table is a shared [`VarTable`], so t-variables allocated with
/// [`WordStm::alloc_tvar`] — including mid-transaction — are immediately
/// visible to every running transaction. Retired blocks are evicted after
/// a grace period (see [`GraceTracker`]); evicting only drops the table's
/// `Arc`, so a zombie transaction's read-set keeps the [`TVar`] state (and
/// its epoch-protected locators) alive until the zombie finishes.
pub struct DstmWord {
    stm: Dstm,
    vars: VarTable<TVar<Value>>,
    reclaim: GraceTracker,
    notify: CommitNotifier,
    /// Pooled footprint-tracking buffers (ids touched / ids written), so
    /// the adapter's commit-notification bookkeeping allocates nothing at
    /// steady state.
    scratch: SlotPool<TouchScratch>,
}

/// Pooled per-transaction id logs (see [`DstmWord::scratch`]).
#[derive(Default)]
struct TouchScratch {
    touched: Vec<TVarId>,
    written: Vec<TVarId>,
}

impl DstmWord {
    pub fn new(stm: Dstm) -> Self {
        DstmWord {
            stm,
            vars: VarTable::new(),
            reclaim: GraceTracker::new(),
            notify: CommitNotifier::new(),
            scratch: SlotPool::new(),
        }
    }

    /// The underlying typed STM.
    pub fn inner(&self) -> &Dstm {
        &self.stm
    }

    /// Reads a t-variable non-transactionally (test oracle).
    pub fn peek(&self, x: TVarId) -> Option<Value> {
        self.vars.get(x).map(|v| v.read_atomic())
    }

    /// Visits every live t-variable with its current committed value.
    /// Exact only while no writer is in flight (racy snapshot otherwise) —
    /// the hybrid's migration barrier provides that quiescence.
    pub fn for_each_live_value(&self, mut f: impl FnMut(TVarId, Value)) {
        self.vars.for_each_live(|id, v| f(id, v.read_atomic()));
    }

    /// Retired blocks still awaiting their grace period (diagnostics).
    pub fn reclaim_pending(&self) -> usize {
        self.reclaim.pending_blocks()
    }

    fn reclaim_after_commit(&self, grace: TxGrace, retired: Vec<RetiredBlock>) {
        let freed = self.reclaim.retire_and_flush(grace, retired);
        if !freed.is_empty() {
            let stats = self.stm.stats();
            stats.incr(Counter::GraceFlushes);
            stats.add(
                Counter::TvarsFreed,
                freed.iter().map(|b| b.len as u64).sum(),
            );
        }
        for blk in freed {
            self.vars.remove_block(blk.base, blk.len);
        }
    }

    fn begin_inner(&self, proc: u32, ro: bool) -> Box<dyn WordTx + '_> {
        if ro {
            // `Begins` counts every begin (the typed layer increments it);
            // `BeginsRo` counts the declared read-only subset.
            self.stm.stats().incr(Counter::BeginsRo);
        }
        let scratch = self
            .scratch
            .take(proc as usize)
            .map(|b| *b)
            .unwrap_or_default();
        Box::new(DstmWordTx {
            tx: Some(self.stm.begin(proc)),
            word: self,
            proc,
            grace: Some(self.reclaim.begin()),
            retired: Vec::new(),
            touched: scratch.touched,
            written: scratch.written,
            last_var: None,
            ro,
            pin: crossbeam_epoch::pin(),
        })
    }
}

struct DstmWordTx<'s> {
    tx: Option<Tx<'s>>,
    word: &'s DstmWord,
    proc: u32,
    grace: Option<TxGrace>,
    retired: Vec<RetiredBlock>,
    /// Footprint log: every id this transaction tried to access (recorded
    /// at op entry, so an access that *aborts on* a variable still lands
    /// the variable in the footprint the async runtime parks on).
    touched: Vec<TVarId>,
    /// Ids written; published to the commit notifier on a successful
    /// commit.
    written: Vec<TVarId>,
    /// Last resolved variable handle: collection code reads a link and
    /// immediately writes it back (the upgrade pattern), so a one-entry
    /// cache removes the second table probe.
    last_var: Option<(TVarId, TVar<Value>)>,
    /// Declared read-only: writes and retires panic (caller bug), and the
    /// commit takes the CAS-free read-only completion unconditionally.
    ro: bool,
    /// Adapter-lifetime epoch pin threaded through table lookups (the
    /// typed transaction holds its own for locator protection).
    pin: crossbeam_epoch::Guard,
}

impl DstmWordTx<'_> {
    /// Resolves `x` through the one-entry handle cache.
    fn var(&mut self, x: TVarId) -> TVar<Value> {
        if let Some((cached, var)) = &self.last_var {
            if *cached == x {
                return TVar::clone(var);
            }
        }
        let var = TVar::clone(&self.word.vars.get_or_panic_in(x, &self.pin));
        self.last_var = Some((x, TVar::clone(&var)));
        var
    }

    fn record_invoke(&self, op: TmOp) {
        if let (Some(rec), Some(tx)) = (self.word.stm.recorder_arc(), self.tx.as_ref()) {
            rec.invoke(tx.id(), op);
        }
    }

    fn record_respond(&self, id: TxId, resp: TmResp) {
        if let Some(rec) = self.word.stm.recorder_arc() {
            rec.respond(id, resp);
        }
    }
}

impl WordTx for DstmWordTx<'_> {
    fn id(&self) -> TxId {
        self.tx.as_ref().expect("transaction still running").id()
    }

    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        let var = self.var(x);
        self.touched.push(x);
        self.record_invoke(TmOp::Read(x));
        let id = self.id();
        let r = self.tx.as_mut().unwrap().read(&var);
        match &r {
            Ok(v) => self.record_respond(id, TmResp::Value(*v)),
            Err(TxError::Aborted) => self.record_respond(id, TmResp::Aborted),
        }
        r
    }

    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        assert!(!self.ro, "dstm: write on a declared read-only transaction");
        let var = self.var(x);
        self.touched.push(x);
        self.written.push(x);
        self.record_invoke(TmOp::Write(x, v));
        let id = self.id();
        let r = self.tx.as_mut().unwrap().write(&var, v);
        match &r {
            Ok(()) => self.record_respond(id, TmResp::Ok),
            Err(TxError::Aborted) => self.record_respond(id, TmResp::Aborted),
        }
        r
    }

    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        let tx = self.tx.take().expect("transaction still running");
        let id = tx.id();
        self.record_invoke_for(id, TmOp::TryCommit);
        // Detect-on-commit promotion: a transaction that wrote nothing
        // installed no locators, so its descriptor is unreachable from
        // every t-variable and the status CAS publishes nothing — take
        // the validate-only read-only completion. Declared read-only
        // transactions (`begin_ro`) land here by construction.
        let r = if self.ro {
            tx.commit_read_only()
        } else if self.written.is_empty() {
            tx.commit_read_only_promoted()
        } else {
            tx.commit()
        };
        match &r {
            Ok(()) => {
                self.record_respond(id, TmResp::Committed);
                // The commit's status CAS made the new values current:
                // wake transactions parked on what we wrote.
                if !self.written.is_empty() {
                    self.word.notify.publish(self.written.iter().copied());
                }
                // The typed transaction (and its epoch pin) is finished:
                // hand the retire-set to the grace tracker and evict every
                // block whose grace period has elapsed.
                self.word.reclaim_after_commit(
                    self.grace.take().expect("grace slot held until completion"),
                    std::mem::take(&mut self.retired),
                );
            }
            Err(TxError::Aborted) => self.record_respond(id, TmResp::Aborted),
        }
        r
    }

    fn try_abort(mut self: Box<Self>) {
        let tx = self.tx.take().expect("transaction still running");
        let id = tx.id();
        self.record_invoke_for(id, TmOp::TryAbort);
        tx.rollback();
        self.record_respond(id, TmResp::Aborted);
        // Dropping `self.grace` releases the active-transaction slot; the
        // retire-set is discarded with the transaction.
    }

    fn retire_tvar_block(&mut self, base: TVarId, len: usize) {
        assert!(!self.ro, "dstm: retire on a declared read-only transaction");
        self.retired.push(RetiredBlock { base, len });
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend_from_slice(&self.touched);
    }
}

impl Drop for DstmWordTx<'_> {
    fn drop(&mut self) {
        let mut s = TouchScratch {
            touched: std::mem::take(&mut self.touched),
            written: std::mem::take(&mut self.written),
        };
        s.touched.clear();
        s.written.clear();
        self.word.scratch.put(self.proc as usize, Box::new(s));
    }
}

impl DstmWordTx<'_> {
    fn record_invoke_for(&self, id: TxId, op: TmOp) {
        if let Some(rec) = self.word.stm.recorder_arc() {
            rec.invoke(id, op);
        }
    }
}

impl WordStm for DstmWord {
    fn name(&self) -> &'static str {
        "dstm"
    }

    fn register_tvar(&self, x: TVarId, initial: Value) {
        self.stm.stats().incr(Counter::TvarsAllocated);
        self.vars.insert(x, TVar::new(x, initial));
    }

    fn alloc_tvar_block(&self, initials: &[Value]) -> TVarId {
        self.stm
            .stats()
            .add(Counter::TvarsAllocated, initials.len() as u64);
        self.vars.alloc_block(initials, TVar::new)
    }

    fn free_tvar_block(&self, base: TVarId, len: usize) {
        self.stm.stats().add(Counter::TvarsFreed, len as u64);
        self.vars.remove_block(base, len);
    }

    fn live_tvars(&self) -> usize {
        self.vars.len()
    }

    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.begin_inner(proc, false)
    }

    fn begin_ro(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.begin_inner(proc, true)
    }

    fn notifier(&self) -> &CommitNotifier {
        &self.notify
    }

    fn stats(&self) -> &StmStats {
        self.stm.stats()
    }

    fn is_obstruction_free(&self) -> bool {
        matches!(self.stm.progress(), super::stm::Progress::ObstructionFree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::run_transaction;
    use crate::cm::Polite;
    use crate::record::Recorder;
    use std::sync::Arc;

    fn word_stm() -> DstmWord {
        DstmWord::new(Dstm::new(Arc::new(Polite::default())))
    }

    #[test]
    fn word_roundtrip() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 10);
        let (v, _) = run_transaction(&s, 1, |tx| {
            let v = tx.read(TVarId(0))?;
            tx.write(TVarId(0), v + 1)?;
            Ok(v)
        });
        assert_eq!(v, 10);
        assert_eq!(s.peek(TVarId(0)), Some(11));
    }

    #[test]
    fn word_abort_path() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 1);
        let mut tx = s.begin(1);
        assert_eq!(tx.read(TVarId(0)).unwrap(), 1);
        tx.try_abort();
        assert_eq!(s.peek(TVarId(0)), Some(1));
    }

    #[test]
    fn recorder_sees_high_level_events() {
        let rec = Arc::new(Recorder::new());
        let s = DstmWord::new(Dstm::default().with_recorder(Arc::clone(&rec)));
        s.register_tvar(TVarId(0), 0);
        let _ = run_transaction(&s, 1, |tx| {
            let v = tx.read(TVarId(0))?;
            tx.write(TVarId(0), v + 1)
        });
        let h = rec.snapshot();
        let views = h.tx_views();
        assert_eq!(views.len(), 1);
        let v = views.values().next().unwrap();
        assert_eq!(v.status, oftm_histories::TxStatus::Committed);
        assert_eq!(v.read_set.len(), 1);
        assert_eq!(v.write_set.len(), 1);
        // Low-level steps were also recorded.
        assert!(h.iter().any(|te| te.event.is_step()));
        // And the run is serializable per Definition 1.
        assert!(oftm_histories::serializable(&h, 8).is_serializable());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_var_panics() {
        let s = word_stm();
        let mut tx = s.begin(1);
        let _ = tx.read(TVarId(42));
    }

    #[test]
    fn alloc_inside_transaction_is_usable_immediately() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let (node, _) = run_transaction(&s, 1, |tx| {
            let node = s.alloc_tvar_block(&[7, 8]);
            let v = tx.read(TVarId(node.0))?;
            tx.write(TVarId(node.0 + 1), v + 100)?;
            tx.write(TVarId(0), node.0)?;
            Ok(node)
        });
        assert!(node.0 >= crate::table::DYNAMIC_TVAR_BASE);
        assert_eq!(s.peek(node), Some(7));
        assert_eq!(s.peek(TVarId(node.0 + 1)), Some(107));
        assert_eq!(s.peek(TVarId(0)), Some(node.0));
    }

    #[test]
    fn alloc_survives_allocating_tx_abort() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let mut tx = s.begin(1);
        let node = s.alloc_tvar(42);
        tx.write(TVarId(0), node.0).unwrap();
        tx.try_abort();
        // The publishing write rolled back; the allocation itself stays.
        assert_eq!(s.peek(TVarId(0)), Some(0));
        assert_eq!(s.peek(node), Some(42));
    }

    #[test]
    fn retire_frees_after_commit_but_not_after_abort() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let node = s.alloc_tvar_block(&[1, 2]);
        assert_eq!(s.live_tvars(), 3);

        // Abort path: the retire-set dies with the transaction.
        let mut tx = s.begin(1);
        tx.retire_tvar_block(node, 2);
        tx.try_abort();
        assert_eq!(s.live_tvars(), 3, "aborted retire must not free");
        assert_eq!(s.peek(node), Some(1));

        // Commit path, no other transaction in flight: freed immediately.
        let mut tx = s.begin(1);
        tx.write(TVarId(0), 7).unwrap();
        tx.retire_tvar_block(node, 2);
        tx.try_commit().unwrap();
        assert_eq!(s.live_tvars(), 1);
        assert_eq!(s.peek(node), None);
    }

    #[test]
    fn grace_period_protects_in_flight_readers() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let node = s.alloc_tvar(5);
        // A reader in flight before the retiring commit…
        let mut reader = s.begin(1);
        assert_eq!(reader.read(node).unwrap(), 5);
        // …delays the free past the committing retirer.
        let mut retirer = s.begin(2);
        retirer.retire_tvar_block(node, 1);
        retirer.try_commit().unwrap();
        assert_eq!(s.live_tvars(), 2, "block must survive the reader");
        assert_eq!(s.reclaim_pending(), 1);
        reader.try_abort();
        // Next completed transaction sweeps the now-safe block.
        let tx = s.begin(3);
        tx.try_commit().unwrap();
        assert_eq!(s.live_tvars(), 1);
        assert_eq!(s.reclaim_pending(), 0);
        assert_eq!(s.peek(node), None);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn freed_id_read_panics_with_uniform_diagnostic() {
        let s = word_stm();
        let node = s.alloc_tvar(5);
        s.free_tvar_block(node, 1);
        let mut tx = s.begin(1);
        let _ = tx.read(node);
    }

    #[test]
    fn ro_commit_validates_and_succeeds() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 3);
        s.register_tvar(TVarId(1), 4);
        let mut tx = s.begin_ro(1);
        assert_eq!(tx.read(TVarId(0)).unwrap(), 3);
        assert_eq!(tx.read(TVarId(1)).unwrap(), 4);
        tx.try_commit().unwrap();
    }

    #[test]
    fn ro_stale_read_aborts_at_commit() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let mut t1 = s.begin_ro(1);
        assert_eq!(t1.read(TVarId(0)).unwrap(), 0);
        let mut t2 = s.begin(2);
        t2.write(TVarId(0), 1).unwrap();
        t2.try_commit().unwrap();
        assert_eq!(t1.try_commit(), Err(TxError::Aborted));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn ro_write_panics() {
        let s = word_stm();
        s.register_tvar(TVarId(0), 0);
        let mut tx = s.begin_ro(1);
        let _ = tx.write(TVarId(0), 1);
    }

    #[test]
    fn concurrent_word_counter() {
        let s = Arc::new(word_stm());
        s.register_tvar(TVarId(0), 0);
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..100 {
                        run_transaction(&*s, p, |tx| {
                            let v = tx.read(TVarId(0))?;
                            tx.write(TVarId(0), v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(s.peek(TVarId(0)), Some(400));
    }
}
