//! **Commit notification** — the wake-on-commit substrate of the async
//! transaction runtime (`oftm-asyncrt`).
//!
//! The paper's obstruction-free STMs guarantee progress only when a
//! transaction eventually runs alone; under sustained contention the
//! standard recipe is randomized backoff, which *burns CPU in proportion
//! to the contention* — every parked-in-spirit transaction keeps a core
//! busy re-running attempts that are doomed while the conflicting peer is
//! still in flight. Kuznetsov & Ravi ("Why Transactional Memory Should
//! Not Be Obstruction-Free") identify exactly this wasted work as the
//! practical price of obstruction-freedom. The systems answer is to make
//! the waiting *passive*: an aborted transaction parks until some
//! t-variable in its footprint actually changes, i.e. until a conflicting
//! peer **commits** — the only event after which a re-run can observe a
//! different world.
//!
//! [`CommitNotifier`] is that subsystem. Every STM instance owns one
//! (exposed via [`crate::api::WordStm::notifier`]); every backend's commit
//! path calls [`CommitNotifier::publish`] with its written t-variables
//! *after* the commit's effects are visible. Waiters snapshot per-shard
//! sequence numbers, register a [`Waker`], and re-validate — the protocol
//! below makes a wake impossible to lose.
//!
//! ## Sharding
//!
//! T-variables hash onto [`NOTIFY_SHARDS`] = 64 shards (a `u64` bitmask
//! addresses the whole shard space, so a commit's dedup is a single OR
//! loop). A shard holds a cache-padded sequence counter bumped by every
//! commit that wrote a variable of the shard, a parked-waiter count, and
//! the waiter list. Shard granularity trades spurious wakes (a commit to
//! a *different* variable in the same shard wakes the waiter — it just
//! re-runs and re-parks) for O(1) state per STM instead of per variable;
//! a woken re-run validates through the STM itself, so spurious wakes
//! cost one attempt, never correctness.
//!
//! ## The no-lost-wakeup protocol
//!
//! * **Committer**: for every written shard, `seq.fetch_add(1, SeqCst)`
//!   (1), then `parked.load(SeqCst)` (2); if non-zero, drain the waiter
//!   list and wake each waker.
//! * **Waiter**: sample `seq` of every footprint shard
//!   ([`CommitNotifier::snapshot`]), register the waker and bump `parked`
//!   with `SeqCst` (3), then re-read every sampled `seq` (4)
//!   ([`CommitNotifier::park`]); if any changed, treat the park as an
//!   immediate wake (the caller self-wakes and retries).
//!
//! Both critical pairs are store-then-load on *different* locations — the
//! Dekker pattern — hence `SeqCst` throughout: in the single total order
//! of these operations, either the committer's load (2) observes the
//! waiter's registration (3) and drains it, or (2) precedes (3), in which
//! case the seq bump (1) precedes the waiter's validation (4), which then
//! observes the change and refuses to park. A commit can therefore never
//! fall between a waiter's snapshot and its park without waking it.
//!
//! Registration is one-shot, futex-style: a publish drains the whole
//! shard list, and a future that parks again re-registers. A stale waker
//! (its future was dropped, or it was registered on several shards and
//! one already fired) is woken harmlessly — waking a completed future is
//! a no-op by the `Waker` contract.
//!
//! When no async clients exist, `parked` is zero everywhere and the whole
//! subsystem costs a commit one `fetch_add` + one load per written shard
//! — the same order as TL2's sharded clock stamp.
//!
//! ## Mechanized argument
//!
//! The numbered protocol steps live in [`crate::kernel::NotifyProto`],
//! generic over a synchronization facade; this module instantiates it with
//! real atomics ([`crate::kernel::StdSync`]) and only adds the
//! t-variable → shard mapping. `oftm-verify`'s bounded model checker runs
//! the *same* kernel under a deterministic DFS scheduler
//! (`crates/verify/tests/model_notify.rs`) and exhaustively confirms, at
//! preemption bound ≥ 2, that no interleaving strands a parked waiter
//! whose shard has published — the prose Dekker argument above, checked
//! schedule by schedule.

use crate::kernel::{NotifyProto, StdSync};
use oftm_histories::TVarId;
use std::task::Waker;

/// Number of notification shards. A power of two, and exactly 64 so a
/// footprint's deduplicated shard set is a single `u64` bitmask.
pub const NOTIFY_SHARDS: usize = 64;

/// Iterator over the set bit positions of a shard bitmask.
struct MaskBits(u64);

impl Iterator for MaskBits {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let s = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(s)
    }
}

/// A waiter's sampled view of its footprint: the deduplicated shard set
/// with the sequence number each shard had at snapshot time. Reusable —
/// the async retry loop keeps one and re-snapshots into it per park.
#[derive(Default)]
pub struct WaitSnapshot {
    /// `(shard index, sampled seq)`, one entry per distinct shard.
    shards: Vec<(usize, u64)>,
}

impl WaitSnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of zero shards parks nothing (the caller must fall back
    /// to yielding): an empty footprint gives the notifier nothing to
    /// watch.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// The per-STM commit-notification endpoint (see module docs).
pub struct CommitNotifier {
    proto: NotifyProto<StdSync, Waker>,
}

impl Default for CommitNotifier {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitNotifier {
    pub fn new() -> Self {
        CommitNotifier {
            proto: NotifyProto::new(NOTIFY_SHARDS),
        }
    }

    /// The shard a t-variable maps to. Public so tests can construct
    /// same-shard / distinct-shard variable pairs deliberately.
    pub fn shard_of(x: TVarId) -> usize {
        // splitmix64 finalizer: dynamic ids are dense (base + k), so a
        // plain mask would put a node's words in adjacent shards *and*
        // alias every 64th node; mixing spreads footprints evenly.
        let mut z = x.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) as usize) & (NOTIFY_SHARDS - 1)
    }

    /// Deduplicates `written` into a shard bitmask.
    fn mask_of(written: impl IntoIterator<Item = TVarId>) -> u64 {
        let mut mask = 0u64;
        for x in written {
            mask |= 1u64 << Self::shard_of(x);
        }
        mask
    }

    /// Commit-path hook: records that the listed t-variables changed and
    /// wakes every waiter parked on their shards. Call **after** the
    /// commit's writes are visible, so a woken re-run observes the new
    /// state. Duplicates in `written` are free (one bit per shard).
    pub fn publish(&self, written: impl IntoIterator<Item = TVarId>) {
        self.proto.publish(MaskBits(Self::mask_of(written)));
    }

    /// Samples the current sequence number of every shard in `footprint`
    /// into `snap` (cleared first; duplicates dedup to one entry). This is
    /// the waiter's step preceding [`CommitNotifier::park`].
    pub fn snapshot(&self, footprint: impl IntoIterator<Item = TVarId>, snap: &mut WaitSnapshot) {
        self.proto
            .snapshot(MaskBits(Self::mask_of(footprint)), &mut snap.shards);
    }

    /// Registers `waker` on every shard of `snap`, then validates the
    /// sampled sequence numbers. Returns `true` if the park **stands** (a
    /// future commit will wake the waker); `false` if a commit raced the
    /// registration — the caller must treat itself as already woken
    /// (retry now, or self-wake before returning `Pending`). A failed
    /// park deregisters the wakers it just pushed (and any earlier stale
    /// clone for the same task), so a task that goes on to complete does
    /// not stay pinned in a shard list that may never publish again.
    #[must_use]
    pub fn park(&self, snap: &WaitSnapshot, waker: &Waker) -> bool {
        self.proto.park(&snap.shards, waker)
    }

    /// True if any shard of `snap` has published since the snapshot was
    /// taken (diagnostics / tests).
    pub fn changed_since(&self, snap: &WaitSnapshot) -> bool {
        self.proto.changed_since(&snap.shards)
    }

    /// Total wakers currently registered across all shards (diagnostics;
    /// a waiter parked on k shards counts k times).
    pub fn parked_wakers(&self) -> usize {
        self.proto.parked_wakers()
    }

    /// Total publishes across all shards (diagnostics; a commit writing k
    /// distinct shards counts k times).
    pub fn publish_count(&self) -> u64 {
        self.proto.publish_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::Wake;

    /// A waker that counts its wakes.
    struct CountingWake(AtomicUsize);

    impl Wake for CountingWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWake>, Waker) {
        let w = Arc::new(CountingWake(AtomicUsize::new(0)));
        (Arc::clone(&w), Waker::from(w))
    }

    /// Two ids guaranteed to live in different shards (probe upward from
    /// a base until the shard differs).
    fn distinct_shard_ids() -> (TVarId, TVarId) {
        let a = TVarId(0);
        let mut b = TVarId(1);
        while CommitNotifier::shard_of(b) == CommitNotifier::shard_of(a) {
            b = TVarId(b.0 + 1);
        }
        (a, b)
    }

    #[test]
    fn waiter_woken_by_commit_on_its_footprint() {
        let n = CommitNotifier::new();
        let (counter, waker) = counting_waker();
        let mut snap = WaitSnapshot::new();
        n.snapshot([TVarId(7)], &mut snap);
        assert!(n.park(&snap, &waker), "no commit raced: park must stand");
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        n.publish([TVarId(7)]);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "commit must wake");
        assert_eq!(n.parked_wakers(), 0, "registration is one-shot");
    }

    #[test]
    fn waiter_not_woken_by_disjoint_commit() {
        let n = CommitNotifier::new();
        let (a, b) = distinct_shard_ids();
        let (counter, waker) = counting_waker();
        let mut snap = WaitSnapshot::new();
        n.snapshot([a], &mut snap);
        assert!(n.park(&snap, &waker));
        n.publish([b]);
        assert_eq!(
            counter.0.load(Ordering::SeqCst),
            0,
            "a commit to a different shard must not wake the waiter"
        );
        // …and the real commit still does.
        n.publish([a]);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn racing_commit_fails_the_park() {
        let n = CommitNotifier::new();
        let (_counter, waker) = counting_waker();
        let mut snap = WaitSnapshot::new();
        n.snapshot([TVarId(3)], &mut snap);
        // The commit lands between snapshot and park: the waiter was
        // (briefly) invisible to it, so park must refuse.
        n.publish([TVarId(3)]);
        assert!(
            !n.park(&snap, &waker),
            "a commit between snapshot and park must fail validation"
        );
        assert!(n.changed_since(&snap));
        assert_eq!(
            n.parked_wakers(),
            0,
            "a failed park must deregister the waker it pushed"
        );
    }

    #[test]
    fn multi_shard_footprint_wakes_on_any_shard() {
        let n = CommitNotifier::new();
        let (a, b) = distinct_shard_ids();
        for commit_on in [a, b] {
            let (counter, waker) = counting_waker();
            let mut snap = WaitSnapshot::new();
            n.snapshot([a, b], &mut snap);
            assert_eq!(snap.shards.len(), 2);
            assert!(n.park(&snap, &waker));
            n.publish([commit_on]);
            assert_eq!(counter.0.load(Ordering::SeqCst), 1, "{commit_on:?}");
        }
    }

    #[test]
    fn duplicate_footprint_entries_dedup() {
        let n = CommitNotifier::new();
        let mut snap = WaitSnapshot::new();
        n.snapshot([TVarId(5), TVarId(5), TVarId(5)], &mut snap);
        assert_eq!(snap.shards.len(), 1);
    }

    #[test]
    fn park_registers_each_shard_exactly_once() {
        // Transaction footprints carry duplicates (every traversal
        // re-touches link words); a park must land one registration per
        // distinct shard, never one per touch.
        let n = CommitNotifier::new();
        let (a, b) = distinct_shard_ids();
        let (counter, waker) = counting_waker();
        let mut snap = WaitSnapshot::new();
        n.snapshot([a, b, a, a, b, a], &mut snap);
        assert_eq!(snap.shards.len(), 2);
        assert!(n.park(&snap, &waker));
        assert_eq!(n.parked_wakers(), 2, "one registration per shard");
        n.publish([a]);
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "woken exactly once");
        assert_eq!(n.parked_wakers(), 1, "only shard a drained");
    }

    #[test]
    fn empty_footprint_snapshot_is_empty() {
        let n = CommitNotifier::new();
        let mut snap = WaitSnapshot::new();
        n.snapshot([], &mut snap);
        assert!(snap.is_empty());
    }

    /// The seeded registration/commit race stress: a committer hammers a
    /// variable while a waiter repeatedly snapshot→park→waits. The
    /// protocol guarantees that whenever the committer publishes after a
    /// standing park, the waiter's wake count advances — no interleaving
    /// may strand a parked waiter whose shard has moved.
    #[test]
    fn no_lost_wakeup_under_registration_race() {
        let n = Arc::new(CommitNotifier::new());
        let x = TVarId(11);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let committer = {
            let n = Arc::clone(&n);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut published = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    n.publish([x]);
                    published += 1;
                    if published % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
                // Final sweeps so a waiter parked just after the loop's
                // last publish still drains.
                for _ in 0..64 {
                    n.publish([x]);
                    std::thread::yield_now();
                }
            })
        };

        let mut snap = WaitSnapshot::new();
        for round in 0..2000u64 {
            let (counter, waker) = counting_waker();
            n.snapshot([x], &mut snap);
            if (round % 3) == 0 {
                std::thread::yield_now(); // widen the snapshot→park window
            }
            if !n.park(&snap, &waker) {
                continue; // raced: the caller would retry immediately
            }
            // The park stands: a publish MUST eventually wake us. Bounded
            // wait; a lost wakeup shows up as the timeout panic.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while counter.0.load(Ordering::SeqCst) == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "lost wakeup: parked waiter never woken (round {round})"
                );
                std::hint::spin_loop();
            }
        }
        stop.store(true, Ordering::SeqCst);
        committer.join().unwrap();
    }
}
