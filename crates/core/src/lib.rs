//! # oftm-core — a DSTM-style obstruction-free software transactional memory
//!
//! This crate is the systems half of the reproduction of Guerraoui &
//! Kapałka, *On Obstruction-Free Transactions* (SPAA 2008): a faithful
//! implementation of the OFTM design the paper analyses (Section 1's
//! description of DSTM \[18\]), built on hardware CAS via `std::sync::atomic`
//! and `crossbeam_epoch` for locator reclamation.
//!
//! * [`dstm`] — the STM itself: typed [`dstm::TVar`]s, transactions,
//!   commit/abort via a single status-word CAS, revocable ownership.
//! * [`cm`] — contention managers (Aggressive, Polite, Karma, Greedy,
//!   Randomized), each honouring the obstruction-freedom contract.
//! * [`api`] — the uniform word-level [`api::WordStm`] interface shared
//!   with the baselines and Algorithm 2, enabling apples-to-apples
//!   experiments.
//! * [`record`] — low-level history recording, bridging real executions to
//!   the formal checkers in `oftm-histories`.
//! * [`notify`] — the commit-notification subsystem: every backend
//!   publishes committed writes so the async runtime (`oftm-asyncrt`) can
//!   park aborted transactions and wake them only when their footprint
//!   actually changes.
//! * [`contention`] — the shared retry policy (backoff schedule, park
//!   timeouts) behind both the sync spin loops and the async park path.
//! * [`kernel`] — the notify/grace protocol kernels written generically
//!   over a synchronization facade, so `oftm-verify`'s bounded model
//!   checker can interleave the production protocol code exhaustively.
//!
//! ## Quick start
//!
//! ```
//! use oftm_core::dstm::Dstm;
//!
//! let stm = Dstm::default();
//! let x = stm.new_tvar(0u64);
//! let y = stm.new_tvar(0u64);
//! stm.atomically(0, |tx| {
//!     let v = tx.read(&x)?;
//!     tx.write(&y, v + 1)
//! });
//! assert_eq!(y.read_atomic(), 1);
//! ```

pub mod api;
pub mod cm;
pub mod contention;
pub mod dstm;
pub mod kernel;
pub mod notify;
pub mod pool;
pub mod reclaim;
pub mod record;
pub mod table;

pub use api::{
    run_transaction, run_transaction_with_budget, BudgetExceeded, TxError, TxResult, WordStm,
    WordTx,
};
pub use contention::ContentionPolicy;
pub use dstm::{Dstm, DstmWord, Progress, TVar, Tx};
pub use notify::{CommitNotifier, WaitSnapshot, NOTIFY_SHARDS};
pub use reclaim::{GraceTracker, RetiredBlock, TxGrace};
pub use record::{fresh_base_id, Recorder};
pub use table::{VarTable, DYNAMIC_TVAR_BASE};
