//! The uniform word-level STM interface (`WordStm`) shared by every STM in
//! the workspace.
//!
//! The paper compares classes of STM implementations (OFTMs, lock-based
//! TMs, Algorithm 2). To run identical workloads and the same
//! history-checkers over all of them, each implementation exposes this
//! minimal interface over word-sized t-variables, mirroring the TM
//! operations of Section 2.2: `read`, `write`, `tryC`, `tryA`. The richer
//! typed API (`TVar<T>`) of the DSTM implementation is layered separately.

use oftm_histories::{TVarId, TxId, Value};
use std::fmt;

/// Why a transactional operation did not produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The transaction received the abort event `A_k`. It must not perform
    /// further operations; the application may retry with a *new*
    /// transaction (paper, Section 2.2: restarts use fresh identifiers).
    Aborted,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Aborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result alias for transactional operations.
pub type TxResult<T> = Result<T, TxError>;

/// A transaction handle bound to one word-level STM instance.
///
/// Handles are single-threaded (the paper's model: each transaction is
/// executed by one process); they are deliberately `!Sync` by containing
/// interior state.
pub trait WordTx {
    /// This transaction's identifier.
    fn id(&self) -> TxId;

    /// Reads t-variable `x` within the transaction.
    fn read(&mut self, x: TVarId) -> TxResult<Value>;

    /// Writes `v` to t-variable `x` within the transaction.
    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()>;

    /// `tryC`: requests commitment. `Ok(())` is the commit event `C_k`;
    /// `Err(Aborted)` is `A_k`.
    fn try_commit(self: Box<Self>) -> TxResult<()>;

    /// `tryA`: requests abortion; always succeeds.
    fn try_abort(self: Box<Self>);
}

/// A word-level software transactional memory.
pub trait WordStm: Send + Sync {
    /// Human-readable implementation name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Declares a t-variable with an initial value. All t-variables must be
    /// registered before transactions run (Algorithm 2's arrays are indexed
    /// by t-variable, footnote 6 of the paper: static allocation).
    fn register_tvar(&self, x: TVarId, initial: Value);

    /// Begins a transaction on behalf of process `proc`.
    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_>;

    /// True if this implementation claims obstruction-freedom (Definition
    /// 2). Used by experiments to decide which checkers apply.
    fn is_obstruction_free(&self) -> bool;
}

/// Runs `body` inside transactions until one commits, in the standard
/// retry-loop style. Each retry uses a fresh transaction identifier.
/// Returns the committed body result together with the number of attempts.
pub fn run_transaction<R>(
    stm: &dyn WordStm,
    proc: u32,
    mut body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> (R, u32) {
    let mut attempts = 0;
    loop {
        attempts += 1;
        let mut tx = stm.begin(proc);
        match body(tx.as_mut()) {
            Ok(r) => match tx.try_commit() {
                Ok(()) => return (r, attempts),
                Err(TxError::Aborted) => continue,
            },
            Err(TxError::Aborted) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_error_display() {
        assert_eq!(TxError::Aborted.to_string(), "transaction aborted");
    }
}
