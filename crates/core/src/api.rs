//! The uniform word-level STM interface (`WordStm`) shared by every STM in
//! the workspace.
//!
//! The paper compares classes of STM implementations (OFTMs, lock-based
//! TMs, Algorithm 2). To run identical workloads and the same
//! history-checkers over all of them, each implementation exposes this
//! minimal interface over word-sized t-variables, mirroring the TM
//! operations of Section 2.2: `read`, `write`, `tryC`, `tryA`. The richer
//! typed API (`TVar<T>`) of the DSTM implementation is layered separately.

use crate::notify::CommitNotifier;
use oftm_histories::{TVarId, TxId, Value};
use oftm_obs::{pack_tx, AbortCause, Forensics, StmStats, VarAttr, TX_UNKNOWN};
use std::fmt;
use std::time::Instant;

/// Why a transactional operation did not produce a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxError {
    /// The transaction received the abort event `A_k`. It must not perform
    /// further operations; the application may retry with a *new*
    /// transaction (paper, Section 2.2: restarts use fresh identifiers).
    Aborted,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Aborted => write!(f, "transaction aborted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Result alias for transactional operations.
pub type TxResult<T> = Result<T, TxError>;

/// A transaction handle bound to one word-level STM instance.
///
/// Handles are single-threaded (the paper's model: each transaction is
/// executed by one process); they are deliberately `!Sync` by containing
/// interior state.
pub trait WordTx {
    /// This transaction's identifier.
    fn id(&self) -> TxId;

    /// Reads t-variable `x` within the transaction.
    fn read(&mut self, x: TVarId) -> TxResult<Value>;

    /// Writes `v` to t-variable `x` within the transaction.
    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()>;

    /// `tryC`: requests commitment. `Ok(())` is the commit event `C_k`;
    /// `Err(Aborted)` is `A_k`.
    fn try_commit(self: Box<Self>) -> TxResult<()>;

    /// `tryA`: requests abortion; always succeeds.
    fn try_abort(self: Box<Self>);

    /// Schedules a contiguous block of dynamically allocated t-variables
    /// for reclamation as a **deferred effect of this transaction's
    /// commit**. If the transaction aborts, the retire-set is discarded —
    /// a node unlinked by an attempt that never committed must survive.
    /// On commit, the block enters the STM's grace-period tracker
    /// ([`crate::reclaim::GraceTracker`]) and is evicted once every
    /// transaction that was in flight at commit time has finished.
    ///
    /// The caller asserts that, once its unlinking writes commit, no
    /// *future* transaction can reach `base..base+len` (single incoming
    /// link, rewritten in the same transaction). A transaction touching a
    /// block after it was evicted aborts or panics with the uniform
    /// `t-variable <x> not registered` diagnostic — it never observes a
    /// stale value.
    fn retire_tvar_block(&mut self, base: TVarId, len: usize);

    /// Retires a single t-variable (see [`WordTx::retire_tvar_block`]).
    fn retire_tvar(&mut self, x: TVarId) {
        self.retire_tvar_block(x, 1);
    }

    /// Appends the t-variables this transaction has accessed so far (its
    /// *footprint*: reads and writes) to `out`. Implementations may emit
    /// duplicates — a consumer that registers per-entry state (e.g. park
    /// registration in the async runtime) must dedup first.
    ///
    /// The async runtime calls this on an aborted transaction before
    /// dropping it: the footprint is exactly the set of t-variables whose
    /// change could make a re-run observe a different world, so it is
    /// what the parked transaction registers with the STM's
    /// [`CommitNotifier`]. An abort cannot shrink what was accessed, so
    /// the footprint stays valid on every abort path.
    fn footprint(&self, out: &mut Vec<TVarId>);
}

/// A word-level software transactional memory.
pub trait WordStm: Send + Sync {
    /// Human-readable implementation name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Declares a t-variable with an initial value under a caller-chosen
    /// id. Static ids conventionally stay below
    /// [`crate::table::DYNAMIC_TVAR_BASE`] so they never collide with
    /// dynamically allocated ones.
    fn register_tvar(&self, x: TVarId, initial: Value);

    /// Allocates one fresh t-variable with the given initial value and
    /// returns its id. Safe to call both outside transactions and *inside*
    /// a running transaction (dynamic data structures allocate nodes
    /// mid-transaction). Allocation is not a transactional effect: if the
    /// allocating transaction aborts, the t-variable stays allocated but
    /// unreachable (the write publishing it was discarded), mirroring
    /// DSTM's object-allocation semantics.
    fn alloc_tvar(&self, initial: Value) -> TVarId {
        self.alloc_tvar_block(&[initial])
    }

    /// Allocates `initials.len()` fresh t-variables with **contiguous**
    /// ids and returns the first id. Multi-word records (e.g. a list
    /// node's `[value, next]` pair) are addressed as offsets from the
    /// returned base. Same allocation semantics as [`WordStm::alloc_tvar`].
    fn alloc_tvar_block(&self, initials: &[Value]) -> TVarId;

    /// Immediately evicts the per-variable state of `len` contiguous
    /// t-variables starting at `base`. This is the *unguarded* primitive
    /// the grace-period machinery bottoms out in: callers must guarantee
    /// no in-flight transaction can still reach the block — either by
    /// routing the free through [`WordTx::retire_tvar_block`] (which
    /// defers to commit + grace period), or because the block was never
    /// published (allocated by an attempt that aborted). A transaction
    /// that reads a freed id aborts or panics with the uniform
    /// `t-variable <x> not registered` diagnostic, never a stale value.
    fn free_tvar_block(&self, base: TVarId, len: usize);

    /// Number of t-variables currently registered or allocated and not
    /// yet freed — the live-count metric leak regressions assert on.
    fn live_tvars(&self) -> usize;

    /// Begins a transaction on behalf of process `proc`.
    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_>;

    /// Begins a **declared read-only** transaction on behalf of `proc`.
    ///
    /// The returned handle supports `read` and `try_commit` only — calling
    /// `write` (or `retire_tvar_block`) on it is a programming error and
    /// panics. In exchange, backends override this with the cheapest
    /// consistent-read path they admit; on TL/TL2 every read validates
    /// against a begin-time version vector, so the transaction keeps **no
    /// read-set, takes no locks, and commits without revalidation** — a
    /// bounded number of loads per operation, hence wait-free. Other
    /// backends document their guarantee in their module docs.
    ///
    /// The default is the plain [`WordStm::begin`] path: an ordinary
    /// transaction that never writes is already a correct read-only
    /// transaction, and every backend additionally *promotes* such
    /// transactions at commit (detect-on-commit: an empty write-set skips
    /// lock/CAS commit work).
    fn begin_ro(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.begin(proc)
    }

    /// The commit-notification endpoint of this STM instance. Every
    /// backend publishes its written t-variables here after a successful
    /// commit's effects are visible; the async runtime parks aborted
    /// transactions on it (see [`crate::notify`]).
    fn notifier(&self) -> &CommitNotifier;

    /// The telemetry registry of this STM instance. Backends tag every
    /// aborted attempt with exactly one [`AbortCause`] and count
    /// begins/commits/reclamation at their own sites; the retry loops
    /// record attempt latencies and budget exhaustion into the same
    /// registry (see [`oftm_obs`]). Always on — the cost is a handful of
    /// uncontended relaxed increments per transaction.
    fn stats(&self) -> &StmStats;

    /// The conflict-forensics tables of this STM instance: the per-tvar
    /// contention heatmap and the who-aborted-whom edge table that every
    /// var-attributed abort ([`StmStats::abort_at`]) feeds. Bundled inside
    /// [`WordStm::stats`], so instances that share a stats registry (the
    /// hybrid's two engines) automatically share one forensic view.
    fn forensics(&self) -> &Forensics {
        self.stats().forensics()
    }

    /// True if this implementation claims obstruction-freedom (Definition
    /// 2). Used by experiments to decide which checkers apply.
    fn is_obstruction_free(&self) -> bool;
}

/// The retry budget of [`run_transaction_with_budget`] ran out before any
/// attempt committed: `attempts` transactions were tried and all aborted.
/// Surfacing this instead of looping forever turns a livelocking workload
/// into a diagnosable failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Number of aborted attempts (equals the budget that was given).
    pub attempts: u32,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction retry budget exhausted after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Runs `body` inside transactions until one commits, in the standard
/// retry-loop style. Each retry uses a fresh transaction identifier.
/// Returns the committed body result together with the number of attempts.
pub fn run_transaction<R>(
    stm: &dyn WordStm,
    proc: u32,
    body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> (R, u32) {
    match run_transaction_with_budget(stm, proc, u32::MAX, body) {
        Ok(out) => out,
        // u32::MAX attempts without a commit is indistinguishable from a
        // hang in practice; keep the unbounded signature but fail loudly.
        Err(e) => panic!("run_transaction: {e}"),
    }
}

/// Like [`run_transaction`], but gives up after `max_attempts` aborted
/// attempts instead of retrying forever. Harness workloads use this so a
/// livelocking STM produces a seeded, reportable failure rather than a
/// silent hang.
///
/// Aborted attempts are separated by randomized bounded exponential
/// backoff. This is the paper's own progress recipe (Section 1):
/// obstruction-free TMs guarantee nothing under sustained step contention,
/// but contention that is *spread out* by backoff makes solo runs — and
/// hence commits — overwhelmingly likely. Without it, symmetric workloads
/// on CM-less implementations (e.g. Algorithm 2, where even reads take
/// revocable ownership) mutually abort forever. Sequential executions
/// never abort, so they never pay the backoff.
pub fn run_transaction_with_budget<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    retry_loop(
        || stm.begin(proc),
        stm.stats(),
        stm.name(),
        proc,
        max_attempts,
        body,
    )
}

/// Read-only counterpart of [`run_transaction`]: every attempt begins via
/// [`WordStm::begin_ro`], so the body must not write. On TL/TL2 the first
/// attempt cannot abort (reads are wait-free against the begin-time
/// version vector), so `attempts` is 1 there by construction.
pub fn run_transaction_ro<R>(
    stm: &dyn WordStm,
    proc: u32,
    body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> (R, u32) {
    match run_transaction_ro_with_budget(stm, proc, u32::MAX, body) {
        Ok(out) => out,
        Err(e) => panic!("run_transaction_ro: {e}"),
    }
}

/// Like [`run_transaction_ro`], but gives up after `max_attempts` aborted
/// attempts (relevant on the backends whose read-only path can still
/// abort: DSTM and both Algorithm 2 configurations).
pub fn run_transaction_ro_with_budget<R>(
    stm: &dyn WordStm,
    proc: u32,
    max_attempts: u32,
    body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    retry_loop(
        || stm.begin_ro(proc),
        stm.stats(),
        stm.name(),
        proc,
        max_attempts,
        body,
    )
}

/// The shared retry loop of [`run_transaction_with_budget`] and
/// [`run_transaction_ro_with_budget`] — identical except for how each
/// attempt's transaction begins.
fn retry_loop<'s, R>(
    begin: impl Fn() -> Box<dyn WordTx + 's>,
    stats: &StmStats,
    stm_name: &'static str,
    proc: u32,
    max_attempts: u32,
    mut body: impl FnMut(&mut dyn WordTx) -> TxResult<R>,
) -> Result<(R, u32), BudgetExceeded> {
    let mut attempts = 0;
    while attempts < max_attempts {
        if attempts > 0 {
            retry_backoff(proc, attempts);
            stats.incr(oftm_obs::Counter::Retries);
        }
        attempts += 1;
        let started = Instant::now();
        // Attempt spans (Chrome-trace "X" slices) only when tracing is on;
        // the ring clock is sampled per attempt so slices nest correctly
        // inside the emitting thread's track.
        let span_started = oftm_obs::ring::enabled().then(oftm_obs::ring::clock_ns);
        let mut tx = begin();
        let committed = match body(tx.as_mut()) {
            Ok(r) => match tx.try_commit() {
                Ok(()) => Some(r),
                Err(TxError::Aborted) => None,
            },
            Err(TxError::Aborted) => None,
        };
        stats.record_attempt_ns(started.elapsed().as_nanos() as u64);
        if let Some(t0) = span_started {
            oftm_obs::ring::emit_span(
                "attempt",
                stm_name,
                u64::from(proc),
                u64::from(attempts),
                t0,
            );
        }
        if let Some(r) = committed {
            return Ok((r, attempts));
        }
    }
    // Only the loop can see its budget run dry; the per-attempt causes
    // were tagged by the backend as each attempt died. No single
    // t-variable is responsible and no peer won anything, hence the
    // explicit NoVar / unknown-aggressor attribution.
    stats.abort_at(
        AbortCause::BudgetExhausted,
        VarAttr::NoVar,
        pack_tx(proc, max_attempts),
        TX_UNKNOWN,
    );
    Err(BudgetExceeded {
        attempts: max_attempts,
    })
}

/// Spins for a pseudo-random duration in `[0, 2^min(attempt, 8))` µs,
/// seeded by `(proc, attempt)` so threads desynchronize deterministically.
/// Public so higher-level retry loops (e.g. the collection `atomically`,
/// which additionally releases attempt-local allocations on abort) can
/// share the exact backoff schedule of [`run_transaction_with_budget`].
/// The schedule itself lives in [`crate::contention`], which the async
/// runtime's park timeouts also derive from — one policy, two waiting
/// styles.
pub fn retry_backoff(proc: u32, attempt: u32) {
    crate::contention::spin_backoff(proc, attempt);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_error_display() {
        assert_eq!(TxError::Aborted.to_string(), "transaction aborted");
    }
}
