//! A lock-free keyed object pool for per-transaction scratch buffers.
//!
//! Backends pop a scratch bundle at `begin` and push it back when the
//! transaction completes. A mutexed free-list works, but it puts a lock
//! acquisition on every transaction boundary *and* — worse, on an
//! oversubscribed machine — lets a preempted lock holder convoy every
//! other thread's begin. [`SlotPool`] is a fixed array of atomic slots
//! indexed by a caller key (the process id): `take` and `put` are single
//! `swap`s, so they never block, and keying by process means a thread
//! overwhelmingly reuses the buffers it just warmed — better locality
//! than any shared free-list.
//!
//! A `take` from an empty slot simply reports `None` (the caller
//! allocates fresh); a `put` into an occupied slot drops the incumbent.
//! Both are rare once the pool is warm: the steady state is one bundle
//! per active process ping-ponging through its own slot.

use std::sync::atomic::{AtomicPtr, Ordering};

/// Number of slots; a power of two so keying is a mask.
const SLOTS: usize = 16;

/// Lock-free keyed pool of boxed `T` (see module docs).
pub struct SlotPool<T> {
    slots: Box<[AtomicPtr<T>]>,
}

// SAFETY: the auto-impls would be unconditional (`AtomicPtr<T>` is
// `Send + Sync` for any `T`), but `put`/`take` move owned `T`s between
// whichever threads share the pool, so that is only sound for `T: Send`.
unsafe impl<T: Send> Send for SlotPool<T> {}
unsafe impl<T: Send> Sync for SlotPool<T> {}

impl<T> Default for SlotPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotPool<T> {
    pub fn new() -> Self {
        SlotPool {
            slots: (0..SLOTS).map(|_| AtomicPtr::default()).collect(),
        }
    }

    /// Pops the bundle parked under `key`'s slot, if any.
    pub fn take(&self, key: usize) -> Option<Box<T>> {
        // ord: AcqRel — Acquire pairs with `put`'s Release so the parked
        // bundle's contents are visible to the new owner.
        let p = self.slots[key & (SLOTS - 1)].swap(std::ptr::null_mut(), Ordering::AcqRel);
        if p.is_null() {
            None
        } else {
            // SAFETY: every non-null slot value came from `Box::into_raw`
            // in `put`, and the swap took sole ownership.
            Some(unsafe { Box::from_raw(p) })
        }
    }

    /// Parks `t` under `key`'s slot, dropping any incumbent.
    pub fn put(&self, key: usize, t: Box<T>) {
        // ord: AcqRel — Release publishes the bundle to `take`'s Acquire;
        // Acquire pairs with the incumbent's publishing swap before it drops.
        let old = self.slots[key & (SLOTS - 1)].swap(Box::into_raw(t), Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: as in `take`.
            drop(unsafe { Box::from_raw(old) });
        }
    }
}

impl<T> Drop for SlotPool<T> {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            // ord: Relaxed — exclusive access in Drop (&mut self).
            let p = slot.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: sole owner in Drop.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip() {
        let p: SlotPool<Vec<u64>> = SlotPool::new();
        assert!(p.take(3).is_none());
        p.put(3, Box::new(vec![1, 2]));
        assert_eq!(*p.take(3).unwrap(), vec![1, 2]);
        assert!(p.take(3).is_none());
    }

    #[test]
    fn keys_wrap_and_do_not_interfere_when_distinct() {
        let p: SlotPool<u64> = SlotPool::new();
        p.put(1, Box::new(10));
        p.put(2, Box::new(20));
        assert_eq!(*p.take(2).unwrap(), 20);
        assert_eq!(*p.take(1).unwrap(), 10);
        // Same slot after masking:
        p.put(0, Box::new(1));
        p.put(SLOTS, Box::new(2)); // displaces; incumbent dropped
        assert_eq!(*p.take(0).unwrap(), 2);
    }

    #[test]
    fn concurrent_take_put_never_duplicates() {
        let p: std::sync::Arc<SlotPool<u64>> = std::sync::Arc::new(SlotPool::new());
        std::thread::scope(|s| {
            for t in 0..4usize {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        if let Some(b) = p.take(t) {
                            p.put(t, b);
                        } else {
                            p.put(t, Box::new(i));
                        }
                    }
                });
            }
        });
    }
}
