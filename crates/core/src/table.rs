//! Concurrent t-variable tables with **dynamic allocation**.
//!
//! The paper's Algorithm 2 assumes statically indexed t-variables
//! (footnote 6), and the original `WordStm` interface mirrored that: every
//! t-variable had to be registered before transactions ran. Dynamic
//! data-structure workloads — the DSTM list-based IntSet the OFTM
//! literature benchmarks on — need the opposite: transactions allocate
//! fresh t-variables (list nodes) *while running*. [`VarTable`] is the
//! shared substrate every word-level STM backend uses to support both:
//!
//! * statically registered ids live wherever the caller put them
//!   (conventionally small integers below [`DYNAMIC_TVAR_BASE`]);
//! * dynamically allocated ids are handed out from a per-instance counter
//!   starting at [`DYNAMIC_TVAR_BASE`], in **contiguous blocks** so a
//!   multi-word node (e.g. a list node's `[value, next]` pair) is
//!   addressable from a single base id.
//!
//! Lookups go through a fixed shard array of `RwLock<HashMap>`s: readers
//! of different shards never contend, and — unlike the copy-on-write
//! `Arc<HashMap>` snapshots the backends used before — an insertion is
//! O(1), not O(table), and is visible to *already running* transactions,
//! which is exactly what allocation inside a transaction requires.
//!
//! Allocation is deliberately **not** a transactional effect: a t-variable
//! allocated inside a transaction that later aborts stays allocated (and
//! unreachable — the write that would have published it was discarded).
//! This mirrors DSTM's object allocation semantics and keeps `alloc` safe
//! to call both inside and outside transactions.

use oftm_histories::{TVarId, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// First t-variable id handed out by dynamic allocation. Static
/// registrations conventionally use small ids, so the two ranges never
/// collide; every STM instance allocates from the same base, which keeps
/// single-threaded (sequential-replay) executions id-identical across
/// implementations.
pub const DYNAMIC_TVAR_BASE: u64 = 1 << 32;

/// Number of lock shards; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// A sharded concurrent map from [`TVarId`] to shared per-variable state,
/// plus the dynamic-id allocator.
pub struct VarTable<V> {
    shards: Vec<RwLock<HashMap<TVarId, Arc<V>>>>,
    next_dynamic: AtomicU64,
}

impl<V> Default for VarTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VarTable<V> {
    pub fn new() -> Self {
        VarTable {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_dynamic: AtomicU64::new(DYNAMIC_TVAR_BASE),
        }
    }

    fn shard(&self, x: TVarId) -> &RwLock<HashMap<TVarId, Arc<V>>> {
        // Mix the id a little so contiguous blocks spread across shards.
        let h = x.0 ^ (x.0 >> 7);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Inserts (or replaces) the state for `x`.
    pub fn insert(&self, x: TVarId, v: V) {
        self.shard(x).write().unwrap().insert(x, Arc::new(v));
    }

    /// Looks up the state for `x`.
    pub fn get(&self, x: TVarId) -> Option<Arc<V>> {
        self.shard(x).read().unwrap().get(&x).map(Arc::clone)
    }

    /// Looks up `x`, panicking with the uniform diagnostic if absent.
    pub fn get_or_panic(&self, x: TVarId) -> Arc<V> {
        self.get(x)
            .unwrap_or_else(|| panic!("t-variable {x} not registered"))
    }

    /// Allocates `initials.len()` fresh t-variables with **contiguous**
    /// ids, creating each one's state with `make`, and returns the first
    /// id. Safe to call concurrently and from inside running transactions.
    pub fn alloc_block(
        &self,
        initials: &[Value],
        mut make: impl FnMut(TVarId, Value) -> V,
    ) -> TVarId {
        assert!(!initials.is_empty(), "alloc_block of zero t-variables");
        let base = self
            .next_dynamic
            .fetch_add(initials.len() as u64, Ordering::Relaxed);
        for (k, &init) in initials.iter().enumerate() {
            let id = TVarId(base + k as u64);
            self.insert(id, make(id, init));
        }
        TVarId(base)
    }

    /// Number of live t-variables (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dynamic ids handed out so far (diagnostics).
    pub fn dynamic_allocated(&self) -> u64 {
        self.next_dynamic.load(Ordering::Relaxed) - DYNAMIC_TVAR_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(3), 30);
        assert_eq!(*t.get(TVarId(3)).unwrap(), 30);
        assert!(t.get(TVarId(4)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn blocks_are_contiguous_and_disjoint() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[1, 2], |_, v| v);
        let b = t.alloc_block(&[3, 4, 5], |_, v| v);
        assert_eq!(a.0 + 2, b.0, "blocks must be back-to-back");
        assert!(a.0 >= DYNAMIC_TVAR_BASE);
        for (i, want) in [(a.0, 1), (a.0 + 1, 2), (b.0, 3), (b.0 + 1, 4), (b.0 + 2, 5)] {
            assert_eq!(*t.get(TVarId(i)).unwrap(), want);
        }
        assert_eq!(t.dynamic_allocated(), 5);
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let t: VarTable<u64> = VarTable::new();
        let ids: Vec<TVarId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .map(|_| t.alloc_block(&[0, 0], |_, v| v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut starts: Vec<u64> = ids.iter().map(|x| x.0).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 8 * 50, "duplicate block bases");
        for w in starts.windows(2) {
            assert!(w[1] - w[0] >= 2, "blocks overlap");
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn get_or_panic_diagnostic() {
        let t: VarTable<u64> = VarTable::new();
        let _ = t.get_or_panic(TVarId(77));
    }
}
