//! Concurrent t-variable tables with **dynamic allocation**.
//!
//! The paper's Algorithm 2 assumes statically indexed t-variables
//! (footnote 6), and the original `WordStm` interface mirrored that: every
//! t-variable had to be registered before transactions ran. Dynamic
//! data-structure workloads — the DSTM list-based IntSet the OFTM
//! literature benchmarks on — need the opposite: transactions allocate
//! fresh t-variables (list nodes) *while running*. [`VarTable`] is the
//! shared substrate every word-level STM backend uses to support both:
//!
//! * statically registered ids live wherever the caller put them
//!   (conventionally small integers below [`DYNAMIC_TVAR_BASE`]);
//! * dynamically allocated ids are handed out from a per-instance counter
//!   starting at [`DYNAMIC_TVAR_BASE`], in **contiguous blocks** so a
//!   multi-word node (e.g. a list node's `[value, next]` pair) is
//!   addressable from a single base id.
//!
//! Lookups go through a fixed shard array of `RwLock<HashMap>`s: readers
//! of different shards never contend, and — unlike the copy-on-write
//! `Arc<HashMap>` snapshots the backends used before — an insertion is
//! O(1), not O(table), and is visible to *already running* transactions,
//! which is exactly what allocation inside a transaction requires.
//!
//! ## Allocation vs. retirement semantics
//!
//! Allocation is deliberately **not** a transactional effect: a t-variable
//! allocated inside a transaction that later aborts stays allocated (and
//! unreachable — the write that would have published it was discarded).
//! This mirrors DSTM's object allocation semantics and keeps `alloc` safe
//! to call both inside and outside transactions. (The collection layer
//! compensates: its retry loop frees blocks allocated by an aborted
//! attempt immediately, which is safe precisely because they were never
//! published.)
//!
//! Freeing, by contrast, **is** transactional in effect: a collection node
//! is retired via [`crate::api::WordTx::retire_tvar_block`], which defers
//! the actual [`VarTable::remove_block`] to after the unlinking
//! transaction's commit *plus* a grace period (no in-flight transaction
//! predating the commit — see [`crate::reclaim::GraceTracker`]). A node
//! unlinked by an attempt that aborts is therefore never freed, and a
//! zombie reader that picked the node's id up before the unlink can still
//! resolve it until the zombie finishes. Removal is batched per shard,
//! like block allocation, so a multi-word node costs at most one lock
//! acquisition per shard, not per word. Dynamic ids are never reused
//! (the allocator is monotonic), so a freed id can only ever miss — a
//! read of one panics with the uniform `t-variable <x> not registered`
//! diagnostic, never aliases a later allocation.

use oftm_histories::{TVarId, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// First t-variable id handed out by dynamic allocation. Static
/// registrations conventionally use small ids, so the two ranges never
/// collide; every STM instance allocates from the same base, which keeps
/// single-threaded (sequential-replay) executions id-identical across
/// implementations.
pub const DYNAMIC_TVAR_BASE: u64 = 1 << 32;

/// Number of lock shards; a power of two so the shard index is a mask.
const SHARDS: usize = 16;

/// Blocks up to this long take per-element shard locks directly; longer
/// blocks (bucket arrays, counter stripes) group ids by shard first so
/// each shard is locked once regardless of block length.
const SMALL_BLOCK: usize = 4;

/// A sharded concurrent map from [`TVarId`] to shared per-variable state,
/// plus the dynamic-id allocator.
pub struct VarTable<V> {
    shards: Vec<RwLock<HashMap<TVarId, Arc<V>>>>,
    next_dynamic: AtomicU64,
    freed: AtomicU64,
}

impl<V> Default for VarTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VarTable<V> {
    pub fn new() -> Self {
        VarTable {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_dynamic: AtomicU64::new(DYNAMIC_TVAR_BASE),
            freed: AtomicU64::new(0),
        }
    }

    fn shard_index(x: TVarId) -> usize {
        // Mix the id a little so contiguous blocks spread across shards.
        let h = x.0 ^ (x.0 >> 7);
        (h as usize) & (SHARDS - 1)
    }

    fn shard(&self, x: TVarId) -> &RwLock<HashMap<TVarId, Arc<V>>> {
        &self.shards[Self::shard_index(x)]
    }

    /// Inserts (or replaces) the state for `x`.
    pub fn insert(&self, x: TVarId, v: V) {
        self.shard(x).write().unwrap().insert(x, Arc::new(v));
    }

    /// Looks up the state for `x`.
    pub fn get(&self, x: TVarId) -> Option<Arc<V>> {
        self.shard(x).read().unwrap().get(&x).map(Arc::clone)
    }

    /// Looks up `x`, panicking with the uniform diagnostic if absent.
    pub fn get_or_panic(&self, x: TVarId) -> Arc<V> {
        self.get(x)
            .unwrap_or_else(|| panic!("t-variable {x} not registered"))
    }

    /// Allocates `initials.len()` fresh t-variables with **contiguous**
    /// ids, creating each one's state with `make`, and returns the first
    /// id. Safe to call concurrently and from inside running transactions.
    ///
    /// The block's ids are grouped by shard and inserted with **one lock
    /// acquisition per shard** (at most [`SHARDS`], regardless of block
    /// size) instead of one per element; state construction runs outside
    /// any lock.
    pub fn alloc_block(
        &self,
        initials: &[Value],
        mut make: impl FnMut(TVarId, Value) -> V,
    ) -> TVarId {
        assert!(!initials.is_empty(), "alloc_block of zero t-variables");
        let base = self
            .next_dynamic
            .fetch_add(initials.len() as u64, Ordering::Relaxed);
        if initials.len() <= SMALL_BLOCK {
            // Small-block fast path (every collection node is 2–3 words):
            // per-element inserts are at most SMALL_BLOCK uncontended lock
            // acquisitions, cheaper than heap-allocating the per-shard
            // grouping scaffolding below.
            for (k, &init) in initials.iter().enumerate() {
                let id = TVarId(base + k as u64);
                self.insert(id, make(id, init));
            }
            return TVarId(base);
        }
        let mut per_shard: Vec<Vec<(TVarId, Arc<V>)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for (k, &init) in initials.iter().enumerate() {
            let id = TVarId(base + k as u64);
            per_shard[Self::shard_index(id)].push((id, Arc::new(make(id, init))));
        }
        for (s, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write().unwrap();
            for (id, v) in group {
                shard.insert(id, v);
            }
        }
        TVarId(base)
    }

    /// Removes the state for `x`; `true` if it was present. Outstanding
    /// `Arc` handles (e.g. a zombie transaction's read-set) keep the state
    /// alive; only the table's reference is dropped.
    pub fn remove(&self, x: TVarId) -> bool {
        let gone = self.shard(x).write().unwrap().remove(&x).is_some();
        if gone {
            self.freed.fetch_add(1, Ordering::Relaxed);
        }
        gone
    }

    /// Removes `len` contiguous t-variables starting at `base`, grouped by
    /// shard like [`VarTable::alloc_block`] (one lock acquisition per
    /// shard). Absent ids are skipped — removal is idempotent.
    pub fn remove_block(&self, base: TVarId, len: usize) {
        if len <= SMALL_BLOCK {
            for k in 0..len {
                self.remove(TVarId(base.0 + k as u64));
            }
            return;
        }
        let mut per_shard: Vec<Vec<TVarId>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for k in 0..len {
            let id = TVarId(base.0 + k as u64);
            per_shard[Self::shard_index(id)].push(id);
        }
        let mut removed = 0u64;
        for (s, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[s].write().unwrap();
            for id in group {
                if shard.remove(&id).is_some() {
                    removed += 1;
                }
            }
        }
        self.freed.fetch_add(removed, Ordering::Relaxed);
    }

    /// Number of live t-variables (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dynamic ids handed out so far (diagnostics).
    pub fn dynamic_allocated(&self) -> u64 {
        self.next_dynamic.load(Ordering::Relaxed) - DYNAMIC_TVAR_BASE
    }

    /// Number of t-variables removed so far (diagnostics; counts every
    /// entry actually evicted by [`VarTable::remove`]/
    /// [`VarTable::remove_block`]).
    pub fn freed(&self) -> u64 {
        self.freed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(3), 30);
        assert_eq!(*t.get(TVarId(3)).unwrap(), 30);
        assert!(t.get(TVarId(4)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn blocks_are_contiguous_and_disjoint() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[1, 2], |_, v| v);
        let b = t.alloc_block(&[3, 4, 5], |_, v| v);
        assert_eq!(a.0 + 2, b.0, "blocks must be back-to-back");
        assert!(a.0 >= DYNAMIC_TVAR_BASE);
        for (i, want) in [(a.0, 1), (a.0 + 1, 2), (b.0, 3), (b.0 + 1, 4), (b.0 + 2, 5)] {
            assert_eq!(*t.get(TVarId(i)).unwrap(), want);
        }
        assert_eq!(t.dynamic_allocated(), 5);
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let t: VarTable<u64> = VarTable::new();
        let ids: Vec<TVarId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .map(|_| t.alloc_block(&[0, 0], |_, v| v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut starts: Vec<u64> = ids.iter().map(|x| x.0).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 8 * 50, "duplicate block bases");
        for w in starts.windows(2) {
            assert!(w[1] - w[0] >= 2, "blocks overlap");
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn get_or_panic_diagnostic() {
        let t: VarTable<u64> = VarTable::new();
        let _ = t.get_or_panic(TVarId(77));
    }

    #[test]
    fn remove_block_evicts_exactly_the_block() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[1, 2, 3], |_, v| v);
        let b = t.alloc_block(&[4, 5], |_, v| v);
        t.remove_block(a, 3);
        for k in 0..3 {
            assert!(t.get(TVarId(a.0 + k)).is_none(), "freed id still resolves");
        }
        assert_eq!(*t.get(b).unwrap(), 4);
        assert_eq!(*t.get(TVarId(b.0 + 1)).unwrap(), 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.freed(), 3);
        // Idempotent: re-removal is a no-op and does not inflate the metric.
        t.remove_block(a, 3);
        assert_eq!(t.freed(), 3);
        assert!(t.remove(b));
        assert!(!t.remove(b));
        assert_eq!(t.freed(), 4);
    }

    #[test]
    fn outstanding_handles_survive_removal() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[9], |_, v| v);
        let held = t.get(a).unwrap();
        t.remove(a);
        assert!(t.get(a).is_none());
        assert_eq!(*held, 9, "zombie-held state stays valid after eviction");
    }

    #[test]
    fn concurrent_alloc_and_remove_keep_count_exact() {
        let t: VarTable<u64> = VarTable::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let b = t.alloc_block(&[0, 0, 0], |_, v| v);
                        t.remove_block(b, 3);
                    }
                });
            }
        });
        assert_eq!(t.len(), 0);
        assert_eq!(t.dynamic_allocated(), 4 * 50 * 3);
        assert_eq!(t.freed(), 4 * 50 * 3);
    }
}
