//! Concurrent t-variable tables with **dynamic allocation** — a lock-free
//! two-level **paged slab**.
//!
//! The paper's Algorithm 2 assumes statically indexed t-variables
//! (footnote 6), and the original `WordStm` interface mirrored that: every
//! t-variable had to be registered before transactions ran. Dynamic
//! data-structure workloads — the DSTM list-based IntSet the OFTM
//! literature benchmarks on — need the opposite: transactions allocate
//! fresh t-variables (list nodes) *while running*. [`VarTable`] is the
//! shared substrate every word-level STM backend uses to support both.
//!
//! ## Why a slab and not a map
//!
//! `VarTable::get` sits on the hottest path in the workspace: every
//! transactional read of every backend resolves its t-variable here
//! before touching any STM metadata. An earlier revision used sharded
//! `RwLock<HashMap>`s, which put a lock acquisition, a hash probe and the
//! attendant shared-cacheline traffic in front of *every* read — exactly
//! the kind of common-path synchronization cost the paper's
//! obstruction-free vs. lock-based comparison is about measuring, and
//! therefore exactly what the harness must not add on its own. The slab
//! exploits **id density**: ids are never reused and are handed out
//! contiguously, so the table can be an array, not a map.
//!
//! * Static registrations use caller-chosen ids below
//!   [`DYNAMIC_TVAR_BASE`] (conventionally small integers; the table
//!   supports ids up to [`STATIC_SPAN`]).
//! * Dynamic ids are handed out from a per-instance monotonic counter
//!   starting at [`DYNAMIC_TVAR_BASE`], in **contiguous blocks** so a
//!   multi-word node (e.g. a list node's `[value, next]` pair) is
//!   addressable from a single base id.
//!
//! Both ranges map to slots in lazily materialized, append-only **pages**
//! ([`PAGE_SIZE`] slots each) reached through atomic page directories:
//! one flat directory for the static range, a two-level one for the
//! (much larger) dynamic range. `get` is a wait-free double array index —
//! two or three `Acquire` loads plus an `Arc` clone, no lock, no hashing,
//! no allocation. Pages are installed with a single CAS on first touch
//! and never move or shrink, so readers need no synchronization with
//! growth; an insertion is visible to *already running* transactions,
//! which is what allocation inside a transaction requires.
//!
//! ## Tombstones, grace periods, and why eviction is safe
//!
//! Because dynamic ids are **never reused**, an evicted slot simply
//! becomes a permanent tombstone (a null pointer): a later `get` of the
//! freed id can only miss — it panics with the uniform `t-variable <x>
//! not registered` diagnostic, never aliases a newer allocation. Slots
//! are only cleared through the grace-period machinery: backends route
//! frees through [`crate::reclaim::GraceTracker`], which releases a
//! retired block only once **no in-flight transaction predates the
//! retiring commit** — so by the time [`VarTable::remove_block`] runs, no
//! transaction that could legitimately reach the block is still running.
//! The eviction itself is nonetheless fully race-safe: slots hold their
//! `Arc<V>` behind an epoch-protected pointer, a reader pins the epoch
//! across its load-and-clone, and `remove` retires the old pointer via
//! `defer_destroy` — a racing reader (a contract-breaking zombie) either
//! sees the value and keeps it alive through its own `Arc`, or sees the
//! tombstone and panics. Memory safety never depends on the caller
//! honoring the retire contract; only the panic-vs-value outcome does.
//!
//! ## Allocation vs. retirement semantics
//!
//! Allocation is deliberately **not** a transactional effect: a t-variable
//! allocated inside a transaction that later aborts stays allocated (and
//! unreachable — the write that would have published it was discarded).
//! This mirrors DSTM's object allocation semantics and keeps `alloc` safe
//! to call both inside and outside transactions. (The collection layer
//! compensates: its retry loop frees blocks allocated by an aborted
//! attempt immediately, which is safe precisely because they were never
//! published.) Freeing, by contrast, **is** transactional in effect: a
//! collection node is retired via [`crate::api::WordTx::retire_tvar_block`],
//! which defers the actual [`VarTable::remove_block`] to after the
//! unlinking transaction's commit *plus* the grace period. The
//! `live`/`freed` metrics are maintained with the same exactness as the
//! old sharded table: every slot transition empty→full bumps the live
//! count, every full→empty bumps `freed`, both driven by the atomic swap
//! that performs the transition, so concurrent churn cannot double-count.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use oftm_histories::{TVarId, Value};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

/// First t-variable id handed out by dynamic allocation. Static
/// registrations use small ids, so the two ranges never collide; every
/// STM instance allocates from the same base, which keeps single-threaded
/// (sequential-replay) executions id-identical across implementations.
pub const DYNAMIC_TVAR_BASE: u64 = 1 << 32;

/// Slots per page (2^12). A page is one contiguous allocation; a fresh
/// table owns no pages at all, and a collection workload touching n
/// contiguous dynamic ids materializes ⌈n / PAGE_SIZE⌉ of them.
const PAGE_BITS: usize = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGE_MASK: usize = PAGE_SIZE - 1;

/// Pages in the (flat) static directory: static ids must lie below
/// `STATIC_PAGES * PAGE_SIZE` = [`STATIC_SPAN`].
const STATIC_PAGES: usize = 256;
/// Exclusive upper bound on static t-variable ids (2^20).
pub const STATIC_SPAN: u64 = (STATIC_PAGES * PAGE_SIZE) as u64;

/// Pages per level-1 directory of the dynamic range (2^9 pages = 2^21
/// ids per L1), and L1 directories in the spine (2^9), for a total
/// dynamic capacity of 2^30 ids per table instance.
const L1_BITS: usize = 9;
const L1_PAGES: usize = 1 << L1_BITS;
const L1_MASK: usize = L1_PAGES - 1;
const DYN_L1S: usize = 1 << L1_BITS;
const DYN_CAPACITY: u64 = (DYN_L1S * L1_PAGES * PAGE_SIZE) as u64;

/// One page of epoch-protected slots. A slot owns (a boxed) `Arc<V>`;
/// null = never inserted, or tombstoned by `remove`.
struct Page<V> {
    slots: Box<[Atomic<Arc<V>>]>,
}

impl<V> Page<V> {
    fn new() -> Self {
        Page {
            slots: (0..PAGE_SIZE).map(|_| Atomic::null()).collect(),
        }
    }
}

impl<V> Drop for Page<V> {
    fn drop(&mut self) {
        // SAFETY: `Drop` has exclusive access; no concurrent readers.
        let guard = unsafe { epoch::unprotected() };
        for slot in self.slots.iter() {
            // ord: Relaxed — exclusive access in Drop; &mut self already
            // synchronized-with every past writer.
            let sh = slot.load(Ordering::Relaxed, guard);
            if !sh.is_null() {
                // SAFETY: sole owner; the pointee was allocated by
                // `Owned::new` in insert/alloc.
                drop(unsafe { sh.into_owned() });
            }
        }
    }
}

/// Level-1 directory of the dynamic range: 2^9 lazily installed pages.
struct L1<V> {
    pages: Box<[AtomicPtr<Page<V>>]>,
}

impl<V> L1<V> {
    fn new() -> Self {
        L1 {
            pages: (0..L1_PAGES).map(|_| AtomicPtr::default()).collect(),
        }
    }
}

/// Installs-or-reuses the pointee of an append-only directory cell.
/// Returns `None` when absent and `create` is false.
fn dir_entry<T>(cell: &AtomicPtr<T>, create: bool, make: impl FnOnce() -> T) -> Option<&T> {
    // ord: Acquire pairs with the Release half of the installing CAS below,
    // so a non-null pointer implies the pointee's construction is visible.
    let mut p = cell.load(Ordering::Acquire);
    if p.is_null() {
        if !create {
            return None;
        }
        let fresh = Box::into_raw(Box::new(make()));
        // ord: AcqRel — Release publishes the freshly built directory entry
        // to the Acquire load above; Acquire (success and failure) pairs
        // with a racing installer's Release so `winner` is safe to deref.
        match cell.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire, // ord: failure pairs with the winner's Release
        ) {
            Ok(_) => p = fresh,
            Err(winner) => {
                // SAFETY: `fresh` never escaped; reclaim it and defer to
                // the concurrently installed entry.
                drop(unsafe { Box::from_raw(fresh) });
                p = winner;
            }
        }
    }
    // SAFETY: directory entries are append-only and live as long as the
    // table (freed only in `Drop`, which has exclusive access).
    Some(unsafe { &*p })
}

/// The lock-free paged-slab map from [`TVarId`] to shared per-variable
/// state, plus the dynamic-id allocator (see module docs).
pub struct VarTable<V> {
    /// Flat page directory of the static id range `[0, STATIC_SPAN)`.
    static_pages: Box<[AtomicPtr<Page<V>>]>,
    /// Two-level page directory of the dynamic id range.
    dynamic_l1s: Box<[AtomicPtr<L1<V>>]>,
    next_dynamic: AtomicU64,
    /// Slots currently full (exact: maintained by the swaps that fill and
    /// clear slots).
    live: AtomicU64,
    freed: AtomicU64,
}

// SAFETY: the auto-impls would be unconditional (`AtomicPtr<T>` is
// `Send + Sync` for *any* `T`), which must not stand: `get` clones
// `Arc<V>` handles out to arbitrary threads, so sharing the table is
// only sound when `V` itself is shareable. Explicit impls restore the
// bounds the old `RwLock<HashMap<_, Arc<V>>>` fields implied.
unsafe impl<V: Send + Sync> Send for VarTable<V> {}
unsafe impl<V: Send + Sync> Sync for VarTable<V> {}

impl<V> Default for VarTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VarTable<V> {
    pub fn new() -> Self {
        VarTable {
            static_pages: (0..STATIC_PAGES).map(|_| AtomicPtr::default()).collect(),
            dynamic_l1s: (0..DYN_L1S).map(|_| AtomicPtr::default()).collect(),
            next_dynamic: AtomicU64::new(DYNAMIC_TVAR_BASE),
            live: AtomicU64::new(0),
            freed: AtomicU64::new(0),
        }
    }

    /// Resolves `x` to its slot. With `create`, missing pages (and L1
    /// directories) are installed on the way; without it, a missing page
    /// resolves to `None` (the id was certainly never inserted). Ids
    /// outside both ranges panic when `create` is set and miss otherwise.
    fn slot(&self, x: TVarId, create: bool) -> Option<&Atomic<Arc<V>>> {
        let (dir, idx) = if x.0 < DYNAMIC_TVAR_BASE {
            if x.0 >= STATIC_SPAN {
                assert!(
                    !create,
                    "static t-variable id {x} exceeds the table's static span ({STATIC_SPAN})"
                );
                return None;
            }
            let idx = x.0 as usize;
            (&self.static_pages[idx >> PAGE_BITS], idx)
        } else {
            let d = x.0 - DYNAMIC_TVAR_BASE;
            if d >= DYN_CAPACITY {
                assert!(
                    !create,
                    "dynamic t-variable id {x} exceeds the table's capacity"
                );
                return None;
            }
            let d = d as usize;
            let l1 = dir_entry(
                &self.dynamic_l1s[d >> (PAGE_BITS + L1_BITS)],
                create,
                L1::new,
            )?;
            (&l1.pages[(d >> PAGE_BITS) & L1_MASK], d)
        };
        let page = dir_entry(dir, create, Page::new)?;
        Some(&page.slots[idx & PAGE_MASK])
    }

    /// Fills `slot` with `v`, adjusting the live count (and retiring a
    /// replaced value through the epoch, for re-registration).
    fn fill(&self, slot: &Atomic<Arc<V>>, v: Arc<V>, guard: &Guard) {
        // ord: AcqRel — Release publishes `v`'s construction to `get_in`'s
        // Acquire load; Acquire pairs with the previous occupant's
        // publishing swap before we retire it.
        let old = slot.swap(Owned::new(v), Ordering::AcqRel, guard);
        if old.is_null() {
            // ord: Relaxed counter — read only by the `len` diagnostic.
            self.live.fetch_add(1, Ordering::Relaxed);
        } else {
            // SAFETY: `old` was unlinked by the swap; no new load returns it.
            unsafe { guard.defer_destroy(old) };
        }
    }

    /// Inserts (or replaces) the state for `x`.
    pub fn insert(&self, x: TVarId, v: V) {
        let slot = self.slot(x, true).expect("slot created");
        let guard = epoch::pin();
        self.fill(slot, Arc::new(v), &guard);
    }

    /// Inserts the state for `x` only if the slot is empty (atomic
    /// keep-first registration); `true` if `v` was installed. Racing
    /// registrations of the same id agree on the winner — no
    /// check-then-act window.
    pub fn insert_if_absent(&self, x: TVarId, v: V) -> bool {
        let slot = self.slot(x, true).expect("slot created");
        let guard = epoch::pin();
        // ord: AcqRel — Release publishes the new state to readers'
        // Acquire loads; Acquire on both outcomes pairs with the
        // incumbent's publishing store.
        match slot.compare_exchange(
            Shared::null(),
            Owned::new(Arc::new(v)),
            Ordering::AcqRel,
            Ordering::Acquire, // ord: failure pairs with the incumbent's Release
            &guard,
        ) {
            Ok(_) => {
                // ord: Relaxed counter — read only by the `len` diagnostic.
                self.live.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_rejected) => false, // the incumbent wins; `v` is dropped
        }
    }

    /// Looks up the state for `x` under a caller-held epoch pin.
    /// **Wait-free**: two (static ids) or three (dynamic ids) `Acquire`
    /// loads and an `Arc` clone — the hot path of every transactional
    /// read. Backends hold one pin for a whole transaction and thread it
    /// through here, so the per-read cost is pure loads.
    pub fn get_in(&self, x: TVarId, guard: &Guard) -> Option<Arc<V>> {
        let slot = self.slot(x, false)?;
        // ord: Acquire pairs with the Release swap/CAS that installed the
        // slot's value, making the pointee's construction visible.
        let sh = slot.load(Ordering::Acquire, guard);
        if sh.is_null() {
            None
        } else {
            // SAFETY: loaded under the pin; `remove` retires slot contents
            // via `defer_destroy`, so the pointee outlives the guard.
            Some(Arc::clone(unsafe { sh.deref() }))
        }
    }

    /// Like [`VarTable::get_in`] with a pin taken internally (external
    /// callers: oracles, registration-time checks).
    pub fn get(&self, x: TVarId) -> Option<Arc<V>> {
        self.get_in(x, &epoch::pin())
    }

    /// Borrowing variant of [`VarTable::get_in`] for read paths that do
    /// not retain the handle past the current operation (the declared
    /// read-only transactions keep no read-set): skips the `Arc`
    /// refcount round-trip — two atomic RMWs per read on the hottest
    /// path in the workspace. The reference is valid for the guard's
    /// lifetime: eviction retires the slot's `Arc` via `defer_destroy`,
    /// which cannot run before the pin is released.
    pub fn get_ref_in<'g>(&self, x: TVarId, guard: &'g Guard) -> Option<&'g V> {
        let slot = self.slot(x, false)?;
        // ord: Acquire pairs with the Release swap/CAS that installed the
        // slot's value, making the pointee's construction visible.
        let sh = slot.load(Ordering::Acquire, guard);
        if sh.is_null() {
            None
        } else {
            // SAFETY: loaded under the pin; `remove` retires slot contents
            // via `defer_destroy`, so the `Arc` — and hence the pointee it
            // keeps alive — outlives the guard.
            Some(unsafe { &**sh.deref() })
        }
    }

    /// Looks up `x` by reference under a caller-held pin, panicking with
    /// the uniform diagnostic if absent.
    pub fn get_ref_or_panic_in<'g>(&self, x: TVarId, guard: &'g Guard) -> &'g V {
        self.get_ref_in(x, guard)
            .unwrap_or_else(|| panic!("t-variable {x} not registered"))
    }

    /// Looks up `x` under a caller-held pin, panicking with the uniform
    /// diagnostic if absent.
    pub fn get_or_panic_in(&self, x: TVarId, guard: &Guard) -> Arc<V> {
        self.get_in(x, guard)
            .unwrap_or_else(|| panic!("t-variable {x} not registered"))
    }

    /// Looks up `x`, panicking with the uniform diagnostic if absent.
    pub fn get_or_panic(&self, x: TVarId) -> Arc<V> {
        self.get(x)
            .unwrap_or_else(|| panic!("t-variable {x} not registered"))
    }

    /// Allocates `initials.len()` fresh t-variables with **contiguous**
    /// ids, creating each one's state with `make`, and returns the first
    /// id. Safe to call concurrently and from inside running transactions:
    /// the id range is claimed with one `fetch_add`, and each slot store
    /// is independently visible — no lock is ever taken.
    pub fn alloc_block(
        &self,
        initials: &[Value],
        mut make: impl FnMut(TVarId, Value) -> V,
    ) -> TVarId {
        assert!(!initials.is_empty(), "alloc_block of zero t-variables");
        // ord: Relaxed — the fetch_add's atomicity alone guarantees
        // disjoint id blocks; slot contents are published by `fill`'s
        // Release swap, not by this counter.
        let base = self
            .next_dynamic
            .fetch_add(initials.len() as u64, Ordering::Relaxed);
        let guard = epoch::pin();
        for (k, &init) in initials.iter().enumerate() {
            let id = TVarId(base + k as u64);
            let slot = self.slot(id, true).expect("slot created");
            // Fresh ids are never concurrently targeted, but `fill` keeps
            // the accounting uniform.
            self.fill(slot, Arc::new(make(id, init)), &guard);
        }
        TVarId(base)
    }

    /// Tombstones the slot behind `slot`, returning whether it was full.
    fn clear(&self, slot: &Atomic<Arc<V>>, guard: &Guard) -> bool {
        // ord: AcqRel — Acquire pairs with the publishing swap so the
        // retired value is fully visible before `defer_destroy`; Release
        // orders the tombstone for subsequent Acquire readers.
        let old = slot.swap(Shared::null(), Ordering::AcqRel, guard);
        if old.is_null() {
            return false;
        }
        // SAFETY: unlinked by the swap; racing readers that loaded it
        // earlier hold the epoch pin `defer_destroy` waits out.
        unsafe { guard.defer_destroy(old) };
        // ord: Relaxed counters — read only by the len/freed diagnostics.
        self.freed.fetch_add(1, Ordering::Relaxed);
        self.live.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Removes the state for `x`; `true` if it was present. Outstanding
    /// `Arc` handles (e.g. a zombie transaction's read-set) keep the state
    /// alive; only the table's reference is dropped. The slot becomes a
    /// permanent tombstone — dynamic ids are never reused, so a freed id
    /// can only ever miss.
    pub fn remove(&self, x: TVarId) -> bool {
        let Some(slot) = self.slot(x, false) else {
            return false;
        };
        let guard = epoch::pin();
        self.clear(slot, &guard)
    }

    /// Removes `len` contiguous t-variables starting at `base` under one
    /// epoch pin. Absent ids are skipped — removal is idempotent.
    pub fn remove_block(&self, base: TVarId, len: usize) {
        let guard = epoch::pin();
        for k in 0..len {
            if let Some(slot) = self.slot(TVarId(base.0 + k as u64), false) {
                self.clear(slot, &guard);
            }
        }
    }

    /// Number of live t-variables (exact; the leak-regression metric).
    pub fn len(&self) -> usize {
        // ord: Relaxed — monotonic diagnostic counter, no payload to order.
        self.live.load(Ordering::Relaxed) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dynamic ids handed out so far (diagnostics).
    pub fn dynamic_allocated(&self) -> u64 {
        // ord: Relaxed — monotonic diagnostic counter, no payload to order.
        self.next_dynamic.load(Ordering::Relaxed) - DYNAMIC_TVAR_BASE
    }

    /// Number of t-variables removed so far (diagnostics; counts every
    /// slot actually tombstoned by [`VarTable::remove`]/
    /// [`VarTable::remove_block`]).
    pub fn freed(&self) -> u64 {
        // ord: Relaxed — monotonic diagnostic counter, no payload to order.
        self.freed.load(Ordering::Relaxed)
    }

    /// Visits every live t-variable (materialized pages only, non-null
    /// slots only) under one epoch pin. The walk is a racy snapshot:
    /// concurrent inserts/removals may or may not be observed — callers
    /// needing an exact live set must quiesce writers first (the hybrid
    /// backend's migration barrier does exactly that). Cost is
    /// O(materialized pages × PAGE_SIZE), not O(ids ever allocated):
    /// never-touched pages are skipped at the directory level.
    pub fn for_each_live(&self, mut f: impl FnMut(TVarId, &V)) {
        let guard = epoch::pin();
        let mut visit_page = |page: &Page<V>, first_id: u64| {
            for (k, slot) in page.slots.iter().enumerate() {
                // ord: Acquire pairs with the Release swap/CAS that
                // installed the slot's value (same pairing as `get_in`).
                let sh = slot.load(Ordering::Acquire, &guard);
                if !sh.is_null() {
                    // SAFETY: loaded under the pin; eviction retires slot
                    // contents via `defer_destroy`, so the pointee
                    // outlives the guard.
                    f(TVarId(first_id + k as u64), unsafe { sh.deref() });
                }
            }
        };
        for (i, cell) in self.static_pages.iter().enumerate() {
            if let Some(page) = dir_entry(cell, false, Page::new) {
                visit_page(page, (i * PAGE_SIZE) as u64);
            }
        }
        for (a, l1cell) in self.dynamic_l1s.iter().enumerate() {
            let Some(l1) = dir_entry(l1cell, false, L1::new) else {
                continue;
            };
            for (b, cell) in l1.pages.iter().enumerate() {
                if let Some(page) = dir_entry(cell, false, Page::new) {
                    let d = ((a << (PAGE_BITS + L1_BITS)) + (b << PAGE_BITS)) as u64;
                    visit_page(page, DYNAMIC_TVAR_BASE + d);
                }
            }
        }
    }
}

impl<V> Drop for VarTable<V> {
    fn drop(&mut self) {
        for cell in self
            .static_pages
            .iter()
            .chain(self.dynamic_l1s.iter().flat_map(|l1| {
                // ord: Relaxed — exclusive access in Drop (&mut self).
                let p = l1.load(Ordering::Relaxed);
                // SAFETY: exclusive access in Drop; entries are boxed.
                if p.is_null() {
                    [].iter()
                } else {
                    unsafe { (*p).pages.iter() }
                }
            }))
        {
            // ord: Relaxed — exclusive access in Drop (&mut self).
            let p = cell.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: installed via Box::into_raw; Page::drop frees
                // the slots' contents.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        for l1 in self.dynamic_l1s.iter() {
            // ord: Relaxed — exclusive access in Drop (&mut self).
            let p = l1.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: installed via Box::into_raw; pages already freed.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(3), 30);
        assert_eq!(*t.get(TVarId(3)).unwrap(), 30);
        assert!(t.get(TVarId(4)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_is_send_sync_for_shareable_state() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VarTable<u64>>();
        // (A `VarTable<Rc<_>>` must NOT compile as Send/Sync — enforced by
        // the bounded unsafe impls; not expressible as a runtime test.)
    }

    #[test]
    fn insert_if_absent_keeps_first() {
        let t: VarTable<u64> = VarTable::new();
        assert!(t.insert_if_absent(TVarId(3), 30));
        assert!(!t.insert_if_absent(TVarId(3), 99));
        assert_eq!(*t.get(TVarId(3)).unwrap(), 30);
        assert_eq!(t.len(), 1);
        // Racing registrations agree on one winner and one live entry.
        let t: VarTable<u64> = VarTable::new();
        let t = &t;
        let wins: usize = std::thread::scope(|s| {
            (0..4)
                .map(|k| s.spawn(move || usize::from(t.insert_if_absent(TVarId(7), k))))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(wins, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_replaces_without_inflating_live() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(3), 30);
        t.insert(TVarId(3), 31);
        assert_eq!(*t.get(TVarId(3)).unwrap(), 31);
        assert_eq!(t.len(), 1);
        assert_eq!(t.freed(), 0, "replacement is not a free");
    }

    #[test]
    fn blocks_are_contiguous_and_disjoint() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[1, 2], |_, v| v);
        let b = t.alloc_block(&[3, 4, 5], |_, v| v);
        assert_eq!(a.0 + 2, b.0, "blocks must be back-to-back");
        assert!(a.0 >= DYNAMIC_TVAR_BASE);
        for (i, want) in [(a.0, 1), (a.0 + 1, 2), (b.0, 3), (b.0 + 1, 4), (b.0 + 2, 5)] {
            assert_eq!(*t.get(TVarId(i)).unwrap(), want);
        }
        assert_eq!(t.dynamic_allocated(), 5);
    }

    #[test]
    fn ids_between_the_ranges_simply_miss() {
        let t: VarTable<u64> = VarTable::new();
        assert!(t.get(TVarId(STATIC_SPAN)).is_none());
        assert!(t.get(TVarId(DYNAMIC_TVAR_BASE - 1)).is_none());
        assert!(!t.remove(TVarId(STATIC_SPAN + 7)));
    }

    #[test]
    #[should_panic(expected = "exceeds the table's static span")]
    fn oversized_static_id_rejected_on_insert() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(STATIC_SPAN), 1);
    }

    #[test]
    fn concurrent_allocation_never_overlaps() {
        let t: VarTable<u64> = VarTable::new();
        let ids: Vec<TVarId> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .map(|_| t.alloc_block(&[0, 0], |_, v| v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut starts: Vec<u64> = ids.iter().map(|x| x.0).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 8 * 50, "duplicate block bases");
        for w in starts.windows(2) {
            assert!(w[1] - w[0] >= 2, "blocks overlap");
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn get_or_panic_diagnostic() {
        let t: VarTable<u64> = VarTable::new();
        let _ = t.get_or_panic(TVarId(77));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn get_or_panic_diagnostic_on_freed_dynamic_id() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[9], |_, v| v);
        t.remove(a);
        let _ = t.get_or_panic(a);
    }

    #[test]
    fn remove_block_evicts_exactly_the_block() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[1, 2, 3], |_, v| v);
        let b = t.alloc_block(&[4, 5], |_, v| v);
        t.remove_block(a, 3);
        for k in 0..3 {
            assert!(t.get(TVarId(a.0 + k)).is_none(), "freed id still resolves");
        }
        assert_eq!(*t.get(b).unwrap(), 4);
        assert_eq!(*t.get(TVarId(b.0 + 1)).unwrap(), 5);
        assert_eq!(t.len(), 2);
        assert_eq!(t.freed(), 3);
        // Idempotent: re-removal is a no-op and does not inflate the metric.
        t.remove_block(a, 3);
        assert_eq!(t.freed(), 3);
        assert!(t.remove(b));
        assert!(!t.remove(b));
        assert_eq!(t.freed(), 4);
    }

    #[test]
    fn for_each_live_visits_exactly_the_live_set() {
        let t: VarTable<u64> = VarTable::new();
        t.insert(TVarId(3), 30);
        t.insert(TVarId(7), 70);
        let a = t.alloc_block(&[1, 2], |_, v| v);
        let b = t.alloc_block(&[5], |_, v| v);
        t.remove(TVarId(7));
        t.remove_block(b, 1);
        let mut seen: Vec<(u64, u64)> = Vec::new();
        t.for_each_live(|id, v| seen.push((id.0, *v)));
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(3, 30), (a.0, 1), (a.0 + 1, 2)],
            "walk must see live slots only"
        );
    }

    #[test]
    fn outstanding_handles_survive_removal() {
        let t: VarTable<u64> = VarTable::new();
        let a = t.alloc_block(&[9], |_, v| v);
        let held = t.get(a).unwrap();
        t.remove(a);
        assert!(t.get(a).is_none());
        assert_eq!(*held, 9, "zombie-held state stays valid after eviction");
    }

    #[test]
    fn concurrent_alloc_and_remove_keep_count_exact() {
        let t: VarTable<u64> = VarTable::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let b = t.alloc_block(&[0, 0, 0], |_, v| v);
                        t.remove_block(b, 3);
                    }
                });
            }
        });
        assert_eq!(t.len(), 0);
        assert_eq!(t.dynamic_allocated(), 4 * 50 * 3);
        assert_eq!(t.freed(), 4 * 50 * 3);
    }

    #[test]
    fn blocks_spanning_page_boundaries_stay_contiguous() {
        let t: VarTable<u64> = VarTable::new();
        // Burn almost a page of ids so the next block straddles two pages.
        let filler: Vec<Value> = vec![0; PAGE_SIZE - 2];
        let _ = t.alloc_block(&filler, |_, v| v);
        let b = t.alloc_block(&[10, 11, 12, 13], |_, v| v);
        for k in 0..4 {
            assert_eq!(*t.get(TVarId(b.0 + k)).unwrap(), 10 + k);
        }
        t.remove_block(b, 4);
        for k in 0..4 {
            assert!(t.get(TVarId(b.0 + k)).is_none());
        }
        assert_eq!(t.len(), PAGE_SIZE - 2);
    }

    /// Readers racing eviction either get the value (kept alive by their
    /// own `Arc`) or a clean miss — never a torn state. This is the
    /// concurrent alloc/get/remove stress the epoch protection exists for.
    #[test]
    fn concurrent_get_races_remove_safely() {
        let t: std::sync::Arc<VarTable<u64>> = std::sync::Arc::new(VarTable::new());
        let stop = std::sync::atomic::AtomicBool::new(false);
        let published: std::sync::Mutex<Vec<TVarId>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            // Churner: allocate, publish, unpublish, remove.
            s.spawn(|| {
                for round in 0..300u64 {
                    let b = t.alloc_block(&[round, round + 1], |_, v| v);
                    published.lock().unwrap().push(b);
                    if round % 2 == 1 {
                        let victim = published.lock().unwrap().remove(0);
                        t.remove_block(victim, 2);
                    }
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
            // Readers: hammer ids that may be mid-eviction.
            for _ in 0..3 {
                s.spawn(|| {
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let candidates: Vec<TVarId> =
                            published.lock().unwrap().iter().copied().collect();
                        for b in candidates {
                            if let Some(v) = t.get(b) {
                                // The paired word must agree if still live.
                                if let Some(w) = t.get(TVarId(b.0 + 1)) {
                                    assert_eq!(*w, *v + 1, "torn block observed");
                                }
                            }
                        }
                    }
                });
            }
        });
        // Exact accounting after the dust settles.
        assert_eq!(
            t.len() as u64 + t.freed(),
            t.dynamic_allocated(),
            "live + freed must equal allocated"
        );
    }
}
