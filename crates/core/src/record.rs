//! Low-level history recording for real (threaded) executions.
//!
//! The checkers in `oftm-histories` consume [`History`] values. This module
//! turns a live multi-threaded execution into such a history: every
//! instrumented base-object access appends an [`Event::Step`], and the
//! word-level STM front-ends append the high-level invocation/response
//! events. The recorder's internal mutex linearizes concurrent appends; the
//! resulting order is one legal interleaving consistent with each thread's
//! program order, which is exactly what the set-based checkers
//! (strict-DAP, Definition 12) and the per-transaction views need.
//!
//! Recording is optional: production paths pass no recorder and pay only a
//! branch on an `Option`.

use oftm_histories::{
    Access, BaseObjId, Event, History, ProcId, TVarId, TmOp, TmResp, TxId, Value,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global allocator of base-object identifiers. Every descriptor status
/// word, locator, t-variable pointer cell, lock word or clock cell that an
/// implementation wants visible to the conflict checkers draws a fresh id
/// here.
static NEXT_BASE_ID: AtomicU64 = AtomicU64::new(1);

/// Reserves a fresh base-object id.
pub fn fresh_base_id() -> BaseObjId {
    BaseObjId(NEXT_BASE_ID.fetch_add(1, Ordering::Relaxed))
}

/// An append-only recorder of low-level events shared by all threads of an
/// instrumented run.
pub struct Recorder {
    start: Instant,
    events: Mutex<History>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Recorder {
            start: Instant::now(),
            events: Mutex::new(History::new()),
        }
    }

    fn nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn push(&self, e: Event) {
        let nanos = self.nanos();
        self.events.lock().unwrap().push_at(e, nanos);
    }

    /// Records a step on a base object.
    pub fn step(&self, proc: ProcId, tx: Option<TxId>, obj: BaseObjId, access: Access) {
        self.push(Event::Step {
            proc,
            tx,
            obj,
            access,
        });
    }

    /// Records the invocation of a TM operation.
    pub fn invoke(&self, tx: TxId, op: TmOp) {
        self.push(Event::Invoke {
            proc: tx.process(),
            tx,
            op,
        });
    }

    /// Records a response event.
    pub fn respond(&self, tx: TxId, resp: TmResp) {
        self.push(Event::Respond {
            proc: tx.process(),
            tx,
            resp,
        });
    }

    /// Records that a process crashed (used by preemption experiments to
    /// mark a thread that will never be scheduled again).
    pub fn crash(&self, proc: ProcId) {
        self.push(Event::Crash { proc });
    }

    /// Convenience: records a complete read operation.
    pub fn read_op(&self, tx: TxId, x: TVarId, v: Value) {
        self.invoke(tx, TmOp::Read(x));
        self.respond(tx, TmResp::Value(v));
    }

    /// Convenience: records a complete write operation.
    pub fn write_op(&self, tx: TxId, x: TVarId, v: Value) {
        self.invoke(tx, TmOp::Write(x, v));
        self.respond(tx, TmResp::Ok);
    }

    /// Takes a snapshot of the history recorded so far.
    pub fn snapshot(&self) -> History {
        self.events.lock().unwrap().clone()
    }

    /// Consumes the recorder, returning the final history.
    pub fn into_history(self) -> History {
        self.events.into_inner().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxStatus;

    #[test]
    fn fresh_ids_unique() {
        let a = fresh_base_id();
        let b = fresh_base_id();
        assert_ne!(a, b);
    }

    #[test]
    fn records_high_and_low_level() {
        let r = Recorder::new();
        let tx = TxId::new(1, 0);
        r.read_op(tx, TVarId(0), 0);
        r.step(ProcId(1), Some(tx), BaseObjId(500), Access::Modify);
        r.invoke(tx, TmOp::TryCommit);
        r.respond(tx, TmResp::Committed);
        let h = r.into_history();
        assert_eq!(h.len(), 5);
        let views = h.tx_views();
        assert_eq!(views[&tx].status, TxStatus::Committed);
    }

    #[test]
    fn concurrent_appends_do_not_lose_events() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4u32)
            .map(|p| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        r.step(
                            ProcId(p),
                            Some(TxId::new(p, i)),
                            BaseObjId(u64::from(p)),
                            Access::Read,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = Arc::try_unwrap(r).ok().unwrap().into_history();
        assert_eq!(h.len(), 400);
    }

    #[test]
    fn crash_marker_recorded() {
        let r = Recorder::new();
        r.crash(ProcId(2));
        let h = r.into_history();
        assert_eq!(h.crash_times().len(), 1);
    }
}
