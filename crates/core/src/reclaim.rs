//! Grace-period tracking for **transaction-safe reclamation** of dynamic
//! t-variables.
//!
//! Collections unlink nodes transactionally, but unlinking alone is not
//! enough to reclaim the node's t-variables: a transaction that started
//! *before* the unlink committed may already have read the node's base id
//! from a link cell and may legitimately touch the node again (zombie
//! traversals in lazily validating STMs like TL do exactly this). Evicting
//! the table entry under such a reader turns a benign stale read into the
//! "t-variable not registered" panic. Freeing must therefore wait out a
//! **grace period**: the node may be reclaimed once every transaction that
//! was in flight at retirement time has finished.
//!
//! [`GraceTracker`] implements this with an epoch counter and per-
//! transaction slots:
//!
//! * [`GraceTracker::begin`] registers the transaction by storing the
//!   current epoch in a slot (advanced at every retiring commit, so slot
//!   values order transactions against retirements);
//! * a committing transaction hands its retire-set to
//!   [`GraceTracker::retire_and_flush`], which releases the slot, tags the
//!   batch with the current epoch, advances the epoch, and returns every
//!   previously retired batch that **no active transaction predates**
//!   (`slot epoch > batch epoch` for all active slots) for the caller to
//!   evict from its table;
//! * an aborting transaction simply drops its [`TxGrace`] handle — its
//!   retire-set is discarded with it, so a node unlinked by an attempt
//!   that later aborts stays allocated (the unlink never took effect).
//!
//! ### Why `slot epoch > batch epoch` is safe
//!
//! Every STM in the workspace is single-version: a read returns the
//! current committed value (or aborts), never an earlier one. A
//! transaction that begins after a node's unlink committed therefore
//! cannot obtain the node's id — no committed cell contains it (each
//! collection node has exactly one incoming link, rewritten by the
//! unlink). The only endangered transactions are those that read the link
//! *before* the unlink; they registered their slot (with an epoch ≤ the
//! batch's tag, which was taken after the unlinking commit) before that
//! read, so the batch is held until they finish. Slot registration and
//! the epoch bump use `SeqCst` so a flush that misses an in-flight slot
//! registration can only involve a transaction that began after the
//! retiring commit — one that cannot reach the block anyway.
//!
//! The race-prone core of this argument — slot claim/revalidation vs.
//! concurrent retire-and-flush — is **mechanized**: the generic kernel
//! ([`crate::kernel::GraceCore`], which this module instantiates with
//! real atomics) also runs under `oftm-verify`'s bounded interleaving
//! model checker (`crates/verify/tests/model_grace.rs`), which
//! exhaustively checks, at preemption bound 2, that no block is freed
//! under a predating reader and that every retired block is freed
//! exactly once — and that broken variants (inclusive flush epoch,
//! read-before-register misuse) are caught with a replayable schedule.

use crate::kernel::{GraceCore, GraceHandle, SlotSet, StdSync, IDLE_SLOT};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

pub use crate::kernel::RetiredBlock;

/// Slot value meaning "no transaction registered here".
const IDLE: u64 = IDLE_SLOT;

/// Slots per chunk of the lock-free slot list.
const SLOT_CHUNK: usize = 64;

/// One chunk of active-transaction slots, chained into an unbounded
/// append-only list.
struct SlotChunk {
    slots: [Arc<AtomicU64>; SLOT_CHUNK],
    next: AtomicPtr<SlotChunk>,
}

impl SlotChunk {
    fn new() -> SlotChunk {
        SlotChunk {
            slots: std::array::from_fn(|_| Arc::new(AtomicU64::new(IDLE))),
            next: AtomicPtr::default(),
        }
    }
}

/// A lock-free, append-only list of active-transaction slots: chunks are
/// installed on demand with a CAS and never move, so registration
/// (`begin`, on every transaction) scans and claims without any lock —
/// the `RwLock` this replaced sat on the begin path of every backend.
/// The list grows without bound (a fixed spine used to panic past
/// 64 × 64 concurrent registrations), and only ever to the peak
/// concurrency: slots are recycled front-first.
struct SlotArray {
    head: SlotChunk,
}

impl SlotArray {
    fn new() -> Self {
        SlotArray {
            head: SlotChunk::new(),
        }
    }

    /// Claims an idle slot with value `e`; scans from the front so slots
    /// recycle densely (sequential use stays at one slot), appending a
    /// fresh chunk whenever every existing slot is taken.
    fn claim(&self, e: u64) -> Arc<AtomicU64> {
        let mut chunk = &self.head;
        loop {
            for slot in chunk.slots.iter() {
                // ord: Relaxed pre-screen — the SeqCst CAS is what claims.
                if slot.load(Ordering::Relaxed) == IDLE
                    // ord: SeqCst registration Dekker-pairs with `flush`'s
                    // SeqCst slot scan (via GraceCore::begin's revalidation
                    // loop); failure is Relaxed — a lost race retries.
                    && slot
                        .compare_exchange(IDLE, e, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok()
                {
                    return Arc::clone(slot);
                }
            }
            // ord: Acquire pairs with the installing CAS's Release half so
            // the fresh chunk's slots are visible.
            let mut p = chunk.next.load(Ordering::Acquire);
            if p.is_null() {
                let raw = Box::into_raw(Box::new(SlotChunk::new()));
                // ord: SeqCst install — `min_active`'s SeqCst scan must be
                // guaranteed to observe any chunk whose slots a registered
                // transaction occupies (see the ordering note there);
                // failure Acquire pairs with the winner's install.
                match chunk.next.compare_exchange(
                    std::ptr::null_mut(),
                    raw,
                    Ordering::SeqCst,  // ord: see install note above
                    Ordering::Acquire, // ord: pairs with the winner's install
                ) {
                    Ok(_) => p = raw,
                    Err(winner) => {
                        // SAFETY: `raw` never escaped.
                        drop(unsafe { Box::from_raw(raw) });
                        p = winner;
                    }
                }
            }
            // SAFETY: chunks are append-only and live as long as the list.
            chunk = unsafe { &*p };
        }
    }

    /// Minimum epoch over all registered slots (`u64::MAX` when none).
    ///
    /// Ordering: chunk installation and this scan's `next` loads are both
    /// `SeqCst` — a transaction that overflowed into a freshly installed
    /// chunk registered its slot (`SeqCst`) after the install, so a scan
    /// that could miss the chunk pointer under weaker ordering would
    /// silently skip a registered transaction and free blocks it can
    /// still reach.
    fn min_active(&self) -> u64 {
        let mut min = u64::MAX;
        let mut chunk = Some(&self.head);
        while let Some(c) = chunk {
            for slot in c.slots.iter() {
                // ord: SeqCst scan Dekker-pairs with `claim`'s SeqCst
                // registration: either the scan sees the slot, or the
                // registrant's begin-revalidation sees the bumped epoch.
                let e = slot.load(Ordering::SeqCst);
                if e != IDLE && e < min {
                    min = e;
                }
            }
            // ord: SeqCst — must not miss a chunk installed (SeqCst) before
            // a registration this scan is obligated to observe.
            let p = c.next.load(Ordering::SeqCst);
            // SAFETY: append-only, alive while the list is.
            chunk = (!p.is_null()).then(|| unsafe { &*p });
        }
        min
    }

    /// Number of installed slots (tests/diagnostics).
    #[cfg(test)]
    fn capacity(&self) -> usize {
        let mut n = 0;
        let mut chunk = Some(&self.head);
        while let Some(c) = chunk {
            n += SLOT_CHUNK;
            // ord: Acquire pairs with the installing CAS (test diagnostic).
            let p = c.next.load(Ordering::Acquire);
            // SAFETY: as in `min_active`.
            chunk = (!p.is_null()).then(|| unsafe { &*p });
        }
        n
    }
}

impl Drop for SlotArray {
    fn drop(&mut self) {
        // ord: Relaxed — exclusive access in Drop (&mut self).
        let mut p = self.head.next.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: installed via Box::into_raw; outstanding `TxGrace`
            // handles hold their own `Arc`s into the slots.
            let chunk = unsafe { Box::from_raw(p) };
            // ord: Relaxed — exclusive access in Drop (&mut self).
            p = chunk.next.load(Ordering::Relaxed);
        }
    }
}

impl SlotSet<AtomicU64> for SlotArray {
    type Handle = Arc<AtomicU64>;

    fn claim(&self, e: u64) -> Arc<AtomicU64> {
        SlotArray::claim(self, e)
    }

    fn min_active(&self) -> u64 {
        SlotArray::min_active(self)
    }
}

/// An active-transaction registration. Dropping it releases the slot —
/// abort paths need nothing beyond dropping the transaction. (The drop
/// behavior lives in [`crate::kernel::GraceHandle`].)
pub type TxGrace = GraceHandle<Arc<AtomicU64>>;

/// The per-STM-instance grace-period tracker (see module docs): the
/// generic grace kernel ([`crate::kernel::GraceCore`]) instantiated with
/// real atomics and the lock-free chunked [`SlotArray`].
pub struct GraceTracker {
    core: GraceCore<StdSync, SlotArray>,
}

impl Default for GraceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl GraceTracker {
    pub fn new() -> Self {
        GraceTracker {
            core: GraceCore::new(SlotArray::new()),
        }
    }

    /// Registers a beginning transaction. Must be called before the
    /// transaction performs its first read (every backend does this in
    /// `begin`). The returned handle is released by dropping it or by
    /// passing it to [`GraceTracker::retire_and_flush`].
    pub fn begin(&self) -> TxGrace {
        self.core.begin()
    }

    /// Commit hook: releases the committing transaction's slot, enters its
    /// retire-set (if any) as a new batch, and returns every batch whose
    /// grace period has elapsed. The caller must evict the returned blocks
    /// from its variable table — the tracker records ids, not state.
    pub fn retire_and_flush(
        &self,
        grace: TxGrace,
        retired: Vec<RetiredBlock>,
    ) -> Vec<RetiredBlock> {
        self.core.retire_and_flush(grace, retired)
    }

    /// Returns every retired batch that no active transaction predates.
    pub fn flush(&self) -> Vec<RetiredBlock> {
        self.core.flush()
    }

    /// Number of retired blocks still awaiting their grace period.
    pub fn pending_blocks(&self) -> usize {
        self.core.pending_blocks()
    }

    /// Total blocks ever retired (diagnostics).
    pub fn retired_total(&self) -> u64 {
        self.core.retired_total()
    }

    /// Total blocks whose grace period has elapsed (diagnostics).
    pub fn freed_total(&self) -> u64 {
        self.core.freed_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TVarId;

    fn blk(base: u64, len: usize) -> RetiredBlock {
        RetiredBlock {
            base: TVarId(base),
            len,
        }
    }

    #[test]
    fn solo_retirement_frees_immediately() {
        let t = GraceTracker::new();
        let g = t.begin();
        let freed = t.retire_and_flush(g, vec![blk(100, 2)]);
        assert_eq!(freed, vec![blk(100, 2)]);
        assert_eq!(t.pending_blocks(), 0);
        assert_eq!(t.retired_total(), 1);
        assert_eq!(t.freed_total(), 1);
    }

    #[test]
    fn predating_transaction_delays_the_free() {
        let t = GraceTracker::new();
        let old = t.begin(); // in flight before the retirement
        let committer = t.begin();
        let freed = t.retire_and_flush(committer, vec![blk(100, 2)]);
        assert!(freed.is_empty(), "old transaction still active");
        assert_eq!(t.pending_blocks(), 1);
        // A transaction that began AFTER the retirement does not hold it up.
        let young = t.begin();
        drop(old);
        let freed = t.retire_and_flush(young, Vec::new());
        assert_eq!(freed, vec![blk(100, 2)]);
        assert_eq!(t.pending_blocks(), 0);
    }

    #[test]
    fn abort_discards_by_dropping_the_handle() {
        let t = GraceTracker::new();
        let g = t.begin();
        drop(g); // abort: the retire-set (held by the backend) dies with the tx
        assert_eq!(t.pending_blocks(), 0);
        // The slot was released: a later committer flushes freely.
        let g2 = t.begin();
        let freed = t.retire_and_flush(g2, vec![blk(7, 1)]);
        assert_eq!(freed, vec![blk(7, 1)]);
    }

    #[test]
    fn slots_are_recycled() {
        let t = GraceTracker::new();
        for _ in 0..100 {
            let g = t.begin();
            drop(g);
        }
        assert_eq!(
            t.core.slots().capacity(),
            SLOT_CHUNK,
            "sequential use must stay within the first chunk"
        );
        assert_eq!(t.core.slots().min_active(), u64::MAX, "all slots released");
    }

    #[test]
    fn capacity_grows_past_the_old_spine_limit() {
        // Regression: a fixed 64-chunk spine panicked at the 4097th
        // concurrent registration ("more than 4096 concurrent
        // transactions"); the chained list must keep growing instead.
        let t = GraceTracker::new();
        let held: Vec<TxGrace> = (0..4097).map(|_| t.begin()).collect();
        assert!(t.core.slots().capacity() > 4096);
        // Reclamation still honors every one of them.
        let committer = t.begin();
        let freed = t.retire_and_flush(committer, vec![blk(100, 1)]);
        assert!(freed.is_empty(), "predating registrations must delay it");
        drop(held);
        assert_eq!(t.flush(), vec![blk(100, 1)]);
    }

    #[test]
    fn concurrent_begin_finish_is_consistent() {
        let t = Arc::new(GraceTracker::new());
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for k in 0..50u64 {
                        let g = t.begin();
                        let _ = t.retire_and_flush(g, vec![blk(1 << 32 | i << 16 | k, 2)]);
                    }
                });
            }
        });
        // Everything retired must eventually flush once no one is active.
        let _ = t.flush();
        assert_eq!(t.pending_blocks(), 0);
        assert_eq!(t.retired_total(), 8 * 50);
        assert_eq!(t.freed_total(), 8 * 50);
    }
}
