//! Grace-period tracking for **transaction-safe reclamation** of dynamic
//! t-variables.
//!
//! Collections unlink nodes transactionally, but unlinking alone is not
//! enough to reclaim the node's t-variables: a transaction that started
//! *before* the unlink committed may already have read the node's base id
//! from a link cell and may legitimately touch the node again (zombie
//! traversals in lazily validating STMs like TL do exactly this). Evicting
//! the table entry under such a reader turns a benign stale read into the
//! "t-variable not registered" panic. Freeing must therefore wait out a
//! **grace period**: the node may be reclaimed once every transaction that
//! was in flight at retirement time has finished.
//!
//! [`GraceTracker`] implements this with an epoch counter and per-
//! transaction slots:
//!
//! * [`GraceTracker::begin`] registers the transaction by storing the
//!   current epoch in a slot (advanced at every retiring commit, so slot
//!   values order transactions against retirements);
//! * a committing transaction hands its retire-set to
//!   [`GraceTracker::retire_and_flush`], which releases the slot, tags the
//!   batch with the current epoch, advances the epoch, and returns every
//!   previously retired batch that **no active transaction predates**
//!   (`slot epoch > batch epoch` for all active slots) for the caller to
//!   evict from its table;
//! * an aborting transaction simply drops its [`TxGrace`] handle — its
//!   retire-set is discarded with it, so a node unlinked by an attempt
//!   that later aborts stays allocated (the unlink never took effect).
//!
//! ### Why `slot epoch > batch epoch` is safe
//!
//! Every STM in the workspace is single-version: a read returns the
//! current committed value (or aborts), never an earlier one. A
//! transaction that begins after a node's unlink committed therefore
//! cannot obtain the node's id — no committed cell contains it (each
//! collection node has exactly one incoming link, rewritten by the
//! unlink). The only endangered transactions are those that read the link
//! *before* the unlink; they registered their slot (with an epoch ≤ the
//! batch's tag, which was taken after the unlinking commit) before that
//! read, so the batch is held until they finish. Slot registration and
//! the epoch bump use `SeqCst` so a flush that misses an in-flight slot
//! registration can only involve a transaction that began after the
//! retiring commit — one that cannot reach the block anyway.

use oftm_histories::TVarId;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Slot value meaning "no transaction registered here".
const IDLE: u64 = u64::MAX;

/// Slots per chunk of the lock-free slot list.
const SLOT_CHUNK: usize = 64;

/// One chunk of active-transaction slots, chained into an unbounded
/// append-only list.
struct SlotChunk {
    slots: [Arc<AtomicU64>; SLOT_CHUNK],
    next: AtomicPtr<SlotChunk>,
}

impl SlotChunk {
    fn new() -> SlotChunk {
        SlotChunk {
            slots: std::array::from_fn(|_| Arc::new(AtomicU64::new(IDLE))),
            next: AtomicPtr::default(),
        }
    }
}

/// A lock-free, append-only list of active-transaction slots: chunks are
/// installed on demand with a CAS and never move, so registration
/// (`begin`, on every transaction) scans and claims without any lock —
/// the `RwLock` this replaced sat on the begin path of every backend.
/// The list grows without bound (a fixed spine used to panic past
/// 64 × 64 concurrent registrations), and only ever to the peak
/// concurrency: slots are recycled front-first.
struct SlotArray {
    head: SlotChunk,
}

impl SlotArray {
    fn new() -> Self {
        SlotArray {
            head: SlotChunk::new(),
        }
    }

    /// Claims an idle slot with value `e`; scans from the front so slots
    /// recycle densely (sequential use stays at one slot), appending a
    /// fresh chunk whenever every existing slot is taken.
    fn claim(&self, e: u64) -> Arc<AtomicU64> {
        let mut chunk = &self.head;
        loop {
            for slot in chunk.slots.iter() {
                if slot.load(Ordering::Relaxed) == IDLE
                    && slot
                        .compare_exchange(IDLE, e, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok()
                {
                    return Arc::clone(slot);
                }
            }
            let mut p = chunk.next.load(Ordering::Acquire);
            if p.is_null() {
                let raw = Box::into_raw(Box::new(SlotChunk::new()));
                // SeqCst install: `min_active`'s scan must be guaranteed
                // to observe any chunk whose slots a registered
                // transaction occupies (see the ordering note there).
                match chunk.next.compare_exchange(
                    std::ptr::null_mut(),
                    raw,
                    Ordering::SeqCst,
                    Ordering::Acquire,
                ) {
                    Ok(_) => p = raw,
                    Err(winner) => {
                        // SAFETY: `raw` never escaped.
                        drop(unsafe { Box::from_raw(raw) });
                        p = winner;
                    }
                }
            }
            // SAFETY: chunks are append-only and live as long as the list.
            chunk = unsafe { &*p };
        }
    }

    /// Minimum epoch over all registered slots (`u64::MAX` when none).
    ///
    /// Ordering: chunk installation and this scan's `next` loads are both
    /// `SeqCst` — a transaction that overflowed into a freshly installed
    /// chunk registered its slot (`SeqCst`) after the install, so a scan
    /// that could miss the chunk pointer under weaker ordering would
    /// silently skip a registered transaction and free blocks it can
    /// still reach.
    fn min_active(&self) -> u64 {
        let mut min = u64::MAX;
        let mut chunk = Some(&self.head);
        while let Some(c) = chunk {
            for slot in c.slots.iter() {
                let e = slot.load(Ordering::SeqCst);
                if e != IDLE && e < min {
                    min = e;
                }
            }
            let p = c.next.load(Ordering::SeqCst);
            // SAFETY: append-only, alive while the list is.
            chunk = (!p.is_null()).then(|| unsafe { &*p });
        }
        min
    }

    /// Number of installed slots (tests/diagnostics).
    #[cfg(test)]
    fn capacity(&self) -> usize {
        let mut n = 0;
        let mut chunk = Some(&self.head);
        while let Some(c) = chunk {
            n += SLOT_CHUNK;
            let p = c.next.load(Ordering::Acquire);
            // SAFETY: as in `min_active`.
            chunk = (!p.is_null()).then(|| unsafe { &*p });
        }
        n
    }
}

impl Drop for SlotArray {
    fn drop(&mut self) {
        let mut p = self.head.next.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: installed via Box::into_raw; outstanding `TxGrace`
            // handles hold their own `Arc`s into the slots.
            let chunk = unsafe { Box::from_raw(p) };
            p = chunk.next.load(Ordering::Relaxed);
        }
    }
}

/// A contiguous block of t-variables scheduled for reclamation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredBlock {
    /// First t-variable id of the block.
    pub base: TVarId,
    /// Number of contiguous ids.
    pub len: usize,
}

/// An active-transaction registration. Dropping it releases the slot —
/// abort paths need nothing beyond dropping the transaction.
pub struct TxGrace {
    slot: Arc<AtomicU64>,
}

impl Drop for TxGrace {
    fn drop(&mut self) {
        self.slot.store(IDLE, Ordering::SeqCst);
    }
}

/// One retired batch awaiting its grace period.
struct Bin {
    epoch: u64,
    blocks: Vec<RetiredBlock>,
}

/// The per-STM-instance grace-period tracker (see module docs).
pub struct GraceTracker {
    /// Monotonic epoch; advanced by every retiring commit.
    epoch: AtomicU64,
    /// Active-transaction slots: `IDLE` or the registering epoch. Slots
    /// are recycled; the lock-free chunked array only grows to the peak
    /// concurrency.
    slots: SlotArray,
    /// Retired batches not yet past their grace period.
    bins: Mutex<Vec<Bin>>,
    /// Blocks currently sitting in `bins` (kept in sync under the `bins`
    /// lock). Lets the hot no-reclamation path — every commit of a
    /// workload that never retires anything — skip the lock entirely.
    pending: AtomicU64,
    retired_blocks: AtomicU64,
    freed_blocks: AtomicU64,
}

impl Default for GraceTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl GraceTracker {
    pub fn new() -> Self {
        GraceTracker {
            epoch: AtomicU64::new(1),
            slots: SlotArray::new(),
            bins: Mutex::new(Vec::new()),
            pending: AtomicU64::new(0),
            retired_blocks: AtomicU64::new(0),
            freed_blocks: AtomicU64::new(0),
        }
    }

    /// Registers a beginning transaction. Must be called before the
    /// transaction performs its first read (every backend does this in
    /// `begin`). The returned handle is released by dropping it or by
    /// passing it to [`GraceTracker::retire_and_flush`].
    pub fn begin(&self) -> TxGrace {
        let e = self.epoch.load(Ordering::SeqCst);
        let slot = self.slots.claim(e);
        // Revalidate (all `SeqCst`): if the epoch did not move, our slot
        // write is SeqCst-ordered before any later retirement's bump, so
        // that retirement's flush must see us. If it moved, republish —
        // reading the bump (a SeqCst RMW) happens-before-orders the
        // retirer's committed unlink ahead of every read this transaction
        // will do, so the blocks its bin frees are unreachable to us.
        // Without this, a flush racing our registration could miss the
        // slot while our reads still observe pre-unlink state on weakly
        // ordered hardware.
        loop {
            let now = self.epoch.load(Ordering::SeqCst);
            if now == slot.load(Ordering::Relaxed) {
                break;
            }
            slot.store(now, Ordering::SeqCst);
        }
        TxGrace { slot }
    }

    /// Commit hook: releases the committing transaction's slot, enters its
    /// retire-set (if any) as a new batch, and returns every batch whose
    /// grace period has elapsed. The caller must evict the returned blocks
    /// from its variable table — the tracker records ids, not state.
    pub fn retire_and_flush(
        &self,
        grace: TxGrace,
        retired: Vec<RetiredBlock>,
    ) -> Vec<RetiredBlock> {
        // Release our slot first: the batch we are about to enter must not
        // wait on the very transaction that retired it.
        drop(grace);
        if !retired.is_empty() {
            self.retired_blocks
                .fetch_add(retired.len() as u64, Ordering::Relaxed);
            let tag = self.epoch.fetch_add(1, Ordering::SeqCst);
            let mut bins = self.bins.lock().unwrap();
            self.pending
                .fetch_add(retired.len() as u64, Ordering::Release);
            bins.push(Bin {
                epoch: tag,
                blocks: retired,
            });
        }
        self.flush()
    }

    /// Returns every retired batch that no active transaction predates.
    pub fn flush(&self) -> Vec<RetiredBlock> {
        // Fast path: nothing pending — workloads that never retire (the
        // word-level harnesses and benches) pay one relaxed load per
        // commit instead of two lock acquisitions.
        if self.pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        // Lock the bins BEFORE scanning the slots (the same order as the
        // epoch shim's collector). Reversed, a bin pushed between the two
        // steps could be freed against a stale scan that missed a reader
        // registered after it — with the lock held first, every bin we
        // examine was pushed before we locked, so any reader that can
        // reach its blocks registered (and is visible) before our scan.
        let mut bins = self.bins.lock().unwrap();
        let min_active = self.slots.min_active();
        let mut out = Vec::new();
        bins.retain_mut(|bin| {
            if bin.epoch < min_active {
                out.append(&mut bin.blocks);
                false
            } else {
                true
            }
        });
        self.pending.fetch_sub(out.len() as u64, Ordering::Release);
        drop(bins);
        self.freed_blocks
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Number of retired blocks still awaiting their grace period.
    pub fn pending_blocks(&self) -> usize {
        self.bins
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.blocks.len())
            .sum()
    }

    /// Total blocks ever retired (diagnostics).
    pub fn retired_total(&self) -> u64 {
        self.retired_blocks.load(Ordering::Relaxed)
    }

    /// Total blocks whose grace period has elapsed (diagnostics).
    pub fn freed_total(&self) -> u64 {
        self.freed_blocks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(base: u64, len: usize) -> RetiredBlock {
        RetiredBlock {
            base: TVarId(base),
            len,
        }
    }

    #[test]
    fn solo_retirement_frees_immediately() {
        let t = GraceTracker::new();
        let g = t.begin();
        let freed = t.retire_and_flush(g, vec![blk(100, 2)]);
        assert_eq!(freed, vec![blk(100, 2)]);
        assert_eq!(t.pending_blocks(), 0);
        assert_eq!(t.retired_total(), 1);
        assert_eq!(t.freed_total(), 1);
    }

    #[test]
    fn predating_transaction_delays_the_free() {
        let t = GraceTracker::new();
        let old = t.begin(); // in flight before the retirement
        let committer = t.begin();
        let freed = t.retire_and_flush(committer, vec![blk(100, 2)]);
        assert!(freed.is_empty(), "old transaction still active");
        assert_eq!(t.pending_blocks(), 1);
        // A transaction that began AFTER the retirement does not hold it up.
        let young = t.begin();
        drop(old);
        let freed = t.retire_and_flush(young, Vec::new());
        assert_eq!(freed, vec![blk(100, 2)]);
        assert_eq!(t.pending_blocks(), 0);
    }

    #[test]
    fn abort_discards_by_dropping_the_handle() {
        let t = GraceTracker::new();
        let g = t.begin();
        drop(g); // abort: the retire-set (held by the backend) dies with the tx
        assert_eq!(t.pending_blocks(), 0);
        // The slot was released: a later committer flushes freely.
        let g2 = t.begin();
        let freed = t.retire_and_flush(g2, vec![blk(7, 1)]);
        assert_eq!(freed, vec![blk(7, 1)]);
    }

    #[test]
    fn slots_are_recycled() {
        let t = GraceTracker::new();
        for _ in 0..100 {
            let g = t.begin();
            drop(g);
        }
        assert_eq!(
            t.slots.capacity(),
            SLOT_CHUNK,
            "sequential use must stay within the first chunk"
        );
        assert_eq!(t.slots.min_active(), u64::MAX, "all slots released");
    }

    #[test]
    fn capacity_grows_past_the_old_spine_limit() {
        // Regression: a fixed 64-chunk spine panicked at the 4097th
        // concurrent registration ("more than 4096 concurrent
        // transactions"); the chained list must keep growing instead.
        let t = GraceTracker::new();
        let held: Vec<TxGrace> = (0..4097).map(|_| t.begin()).collect();
        assert!(t.slots.capacity() > 4096);
        // Reclamation still honors every one of them.
        let committer = t.begin();
        let freed = t.retire_and_flush(committer, vec![blk(100, 1)]);
        assert!(freed.is_empty(), "predating registrations must delay it");
        drop(held);
        assert_eq!(t.flush(), vec![blk(100, 1)]);
    }

    #[test]
    fn concurrent_begin_finish_is_consistent() {
        let t = Arc::new(GraceTracker::new());
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for k in 0..50u64 {
                        let g = t.begin();
                        let _ = t.retire_and_flush(g, vec![blk(1 << 32 | i << 16 | k, 2)]);
                    }
                });
            }
        });
        // Everything retired must eventually flush once no one is active.
        let _ = t.flush();
        assert_eq!(t.pending_blocks(), 0);
        assert_eq!(t.retired_total(), 8 * 50);
        assert_eq!(t.freed_total(), 8 * 50);
    }
}
