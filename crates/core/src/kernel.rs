//! **Protocol kernels behind a synchronization facade** — the seam that
//! lets `oftm-verify`'s bounded model checker execute the *production*
//! protocol code under a deterministic scheduler.
//!
//! The two most safety-critical lock-free kernels in this crate are the
//! commit-notification snapshot/park-vs-publish protocol ([`crate::notify`])
//! and the grace-period slot-claim/flush protocol ([`crate::reclaim`]).
//! Both used to hard-code `std::sync::atomic`; their correctness arguments
//! lived entirely in module docs, checked only by stochastic tests. This
//! module makes the argument mechanizable: the protocol logic is written
//! once, generically over a [`SyncFacade`] (an atomic-`u64` + mutex + waker
//! vocabulary), and instantiated twice:
//!
//! * [`StdSync`] — `std::sync::atomic::AtomicU64` + `parking_lot::Mutex` +
//!   `std::task::Waker`. This is what [`crate::notify::CommitNotifier`] and
//!   [`crate::reclaim::GraceTracker`] ship; every method is `#[inline]`
//!   monomorphized, so the facade costs nothing at runtime.
//! * `ModelSync` (in `oftm-verify`) — every atomic operation is a
//!   scheduling decision point of a bounded-preemption DFS explorer. The
//!   `model_notify`/`model_grace` suites there exhaustively interleave the
//!   *same* [`NotifyProto`]/[`GraceCore`] code that runs in production and
//!   assert that no schedule loses a wakeup or flushes a retire-set a live
//!   reader predates.
//!
//! The model explores sequentially consistent interleavings (CHESS-style);
//! the `Ordering` arguments threaded through the facade document the
//! weak-memory side of the argument but all collapse to SC under the
//! model. The `// ord:` lint in `oftm-verify` keeps the per-site pairing
//! justifications honest; the prose arguments for the sub-SC orderings
//! remain in the instantiating modules' docs.

use oftm_histories::TVarId;
use std::ops::Deref;
use std::sync::atomic::Ordering;

/// Slot value meaning "no transaction registered here" (grace protocol).
pub const IDLE_SLOT: u64 = u64::MAX;

/// The atomic-`u64` vocabulary a kernel needs. Implemented by
/// `std::sync::atomic::AtomicU64` (production) and by the model checker's
/// instrumented atomic (every call a scheduling decision point).
pub trait AtomicU64Like: Send + Sync {
    fn new(v: u64) -> Self;
    fn load(&self, ord: Ordering) -> u64;
    fn store(&self, v: u64, ord: Ordering);
    fn fetch_add(&self, v: u64, ord: Ordering) -> u64;
    fn fetch_sub(&self, v: u64, ord: Ordering) -> u64;
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64>;
}

impl AtomicU64Like for std::sync::atomic::AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        std::sync::atomic::AtomicU64::new(v)
    }
    #[inline]
    fn load(&self, ord: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::load(self, ord)
    }
    #[inline]
    fn store(&self, v: u64, ord: Ordering) {
        std::sync::atomic::AtomicU64::store(self, v, ord)
    }
    #[inline]
    fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_add(self, v, ord)
    }
    #[inline]
    fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_sub(self, v, ord)
    }
    #[inline]
    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        std::sync::atomic::AtomicU64::compare_exchange(self, current, new, success, failure)
    }
}

/// Closure-scoped mutex: `with` runs `f` under the lock. The closure API
/// (instead of a guard type) keeps the facade free of GAT lifetime
/// plumbing and makes lock scopes explicit at every call site.
pub trait MutexLike<T: Send>: Send + Sync {
    fn new(value: T) -> Self;
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

impl<T: Send> MutexLike<T> for parking_lot::Mutex<T> {
    #[inline]
    fn new(value: T) -> Self {
        parking_lot::Mutex::new(value)
    }
    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.lock())
    }
}

/// A cloneable wake handle (the kernel-level view of `std::task::Waker`).
pub trait WakeRef: Clone {
    /// Wakes the task. Waking a completed task must be a harmless no-op.
    fn wake_ref(&self);
    /// True if both handles wake the same task (used to deregister every
    /// clone of a task after a failed park).
    fn will_wake(&self, other: &Self) -> bool;
}

impl WakeRef for std::task::Waker {
    #[inline]
    fn wake_ref(&self) {
        self.wake_by_ref()
    }
    #[inline]
    fn will_wake(&self, other: &Self) -> bool {
        std::task::Waker::will_wake(self, other)
    }
}

/// The synchronization vocabulary a kernel is generic over.
pub trait SyncFacade: 'static {
    type Au64: AtomicU64Like;
    type Mutex<T: Send>: MutexLike<T>;
}

/// Production facade: real atomics, `parking_lot` mutexes.
pub struct StdSync;

impl SyncFacade for StdSync {
    type Au64 = std::sync::atomic::AtomicU64;
    type Mutex<T: Send> = parking_lot::Mutex<T>;
}

// ---------------------------------------------------------------------------
// Notify kernel: the no-lost-wakeup snapshot/park-vs-publish protocol.
// ---------------------------------------------------------------------------

/// One notification shard (cache-padded: committers of disjoint shards
/// must not bounce a line).
#[repr(align(64))]
struct ProtoShard<F: SyncFacade, W: WakeRef + Send> {
    /// Commits that wrote this shard so far (the validation word of the
    /// no-lost-wakeup protocol).
    seq: F::Au64,
    /// Wakers currently registered (the committer's cheap "anyone
    /// parked?" probe).
    parked: F::Au64,
    waiters: F::Mutex<Vec<W>>,
}

impl<F: SyncFacade, W: WakeRef + Send> ProtoShard<F, W> {
    fn new() -> Self {
        ProtoShard {
            seq: F::Au64::new(0),
            parked: F::Au64::new(0),
            waiters: F::Mutex::new(Vec::new()),
        }
    }
}

/// The commit-notification protocol over abstract shard indices: the
/// numbered steps (1)–(4) of [`crate::notify`]'s Dekker argument, written
/// once and shared by [`crate::notify::CommitNotifier`] (`StdSync` +
/// `std::task::Waker`) and the `oftm-verify` model checker. Mapping
/// t-variables onto shard indices (hashing, bitmask dedup) stays with the
/// caller — the protocol's correctness does not depend on it.
pub struct NotifyProto<F: SyncFacade, W: WakeRef + Send> {
    shards: Box<[ProtoShard<F, W>]>,
}

impl<F: SyncFacade, W: WakeRef + Send> NotifyProto<F, W> {
    pub fn new(shards: usize) -> Self {
        NotifyProto {
            shards: (0..shards).map(|_| ProtoShard::new()).collect(),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Committer half: for each listed shard, bump `seq` (1), probe
    /// `parked` (2), and drain the waiter list if anyone is registered.
    /// Wakes run after all shards are drained, outside the shard locks —
    /// a waker may schedule work re-entrantly (executor queues), which
    /// must not run under our lock.
    pub fn publish(&self, shard_indices: impl IntoIterator<Item = usize>) {
        let mut woken: Vec<W> = Vec::new();
        for s in shard_indices {
            let shard = &self.shards[s];
            // ord: (1) SeqCst seq bump; Dekker-pairs with the waiter's
            // SeqCst validation re-read (4) in `park`.
            shard.seq.fetch_add(1, Ordering::SeqCst);
            // ord: (2) SeqCst parked probe; Dekker-pairs with the waiter's
            // SeqCst registration bump (3) in `park`: in the SC total
            // order either (2) sees (3) and we drain, or (1) precedes (4)
            // and the waiter refuses to park.
            if shard.parked.load(Ordering::SeqCst) != 0 {
                shard.waiters.with(|ws| {
                    // ord: SeqCst under the waiter-list lock; keeps the
                    // parked count exactly equal to the list length for
                    // every observer (diagnostics and the probe above).
                    shard.parked.fetch_sub(ws.len() as u64, Ordering::SeqCst);
                    woken.append(ws);
                });
            }
        }
        for w in woken {
            w.wake_ref();
        }
    }

    /// Waiter step 1: sample `seq` of every listed shard into `snap`
    /// (cleared first).
    pub fn snapshot(
        &self,
        shard_indices: impl IntoIterator<Item = usize>,
        snap: &mut Vec<(usize, u64)>,
    ) {
        snap.clear();
        for s in shard_indices {
            // ord: SeqCst sample; the value `park`'s validation (4)
            // compares against — must order with the committer's bump (1).
            snap.push((s, self.shards[s].seq.load(Ordering::SeqCst)));
        }
    }

    /// Waiter step 2: register `waker` on every snapshot shard (3), then
    /// re-read every sampled `seq` (4). Returns `true` if the park
    /// **stands** (a future publish will wake the waker); `false` if a
    /// publish raced the registration — the caller must treat itself as
    /// already woken. A failed park deregisters the wakers it just pushed
    /// (and any earlier stale clone for the same task).
    #[must_use]
    pub fn park(&self, snap: &[(usize, u64)], waker: &W) -> bool {
        debug_assert!(!snap.is_empty(), "parking on an empty footprint");
        for &(s, _) in snap {
            let shard = &self.shards[s];
            shard.waiters.with(|ws| {
                ws.push(waker.clone());
                // ord: (3) SeqCst registration bump; Dekker-pairs with the
                // committer's SeqCst parked probe (2) in `publish`.
                shard.parked.fetch_add(1, Ordering::SeqCst);
            });
        }
        for &(s, seen) in snap {
            // ord: (4) SeqCst validation re-read; Dekker-pairs with the
            // committer's SeqCst seq bump (1): if (2) missed our (3), (1)
            // precedes this load, which then observes the change.
            if self.shards[s].seq.load(Ordering::SeqCst) != seen {
                self.unregister(snap, waker);
                return false;
            }
        }
        true
    }

    /// Removes every registration of `waker`'s task from the shards of
    /// `snap` (identity via [`WakeRef::will_wake`]), keeping the parked
    /// counts exact.
    fn unregister(&self, snap: &[(usize, u64)], waker: &W) {
        for &(s, _) in snap {
            let shard = &self.shards[s];
            shard.waiters.with(|ws| {
                let before = ws.len();
                ws.retain(|w| !w.will_wake(waker));
                let removed = (before - ws.len()) as u64;
                if removed > 0 {
                    // ord: SeqCst under the waiter-list lock, as in
                    // `publish`'s drain: the count stays exact.
                    shard.parked.fetch_sub(removed, Ordering::SeqCst);
                }
            });
        }
    }

    /// True if any shard of `snap` has published since the snapshot was
    /// taken (diagnostics / tests).
    pub fn changed_since(&self, snap: &[(usize, u64)]) -> bool {
        snap.iter()
            // ord: SeqCst diagnostic read of the protocol word.
            .any(|&(s, seen)| self.shards[s].seq.load(Ordering::SeqCst) != seen)
    }

    /// Total wakers currently registered across all shards (diagnostics).
    pub fn parked_wakers(&self) -> usize {
        self.shards
            .iter()
            // ord: SeqCst diagnostic read of the protocol word.
            .map(|s| s.parked.load(Ordering::SeqCst) as usize)
            .sum()
    }

    /// Total publishes across all shards (diagnostics).
    pub fn publish_count(&self) -> u64 {
        self.shards
            .iter()
            // ord: SeqCst diagnostic read of the protocol word.
            .map(|s| s.seq.load(Ordering::SeqCst))
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Grace kernel: epoch + slot claim/flush for transaction-safe reclamation.
// ---------------------------------------------------------------------------

/// A contiguous block of t-variables scheduled for reclamation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetiredBlock {
    /// First t-variable id of the block.
    pub base: TVarId,
    /// Number of contiguous ids.
    pub len: usize,
}

/// The active-transaction slot store the grace kernel is generic over.
/// Production uses [`crate::reclaim`]'s lock-free chunked `SlotArray`
/// (`AtomicPtr`-chained, unbounded); the model checker uses a fixed array
/// of instrumented atomics. Both claim with the same CAS protocol; the
/// chunk-installation visibility argument is `SlotArray`-specific and
/// stays prose (the model cannot express pointer installation).
pub trait SlotSet<A: AtomicU64Like>: Send + Sync {
    /// Owning reference to a claimed slot; dropping the kernel's
    /// [`GraceHandle`] around it stores [`IDLE_SLOT`] through it.
    type Handle: Deref<Target = A> + Send;
    /// Claims an idle slot, storing `e` into it (CAS from [`IDLE_SLOT`]).
    fn claim(&self, e: u64) -> Self::Handle;
    /// Minimum epoch over all registered slots ([`IDLE_SLOT`] when none).
    fn min_active(&self) -> u64;
}

/// An active-transaction registration. Dropping it releases the slot —
/// abort paths need nothing beyond dropping the transaction.
pub struct GraceHandle<H>
where
    H: Deref,
    H::Target: AtomicU64Like,
{
    slot: H,
}

impl<H> GraceHandle<H>
where
    H: Deref,
    H::Target: AtomicU64Like,
{
    /// Republishes the slot's epoch (the begin-revalidation loop).
    fn publish_epoch(&self, e: u64) {
        // ord: SeqCst slot publication; must be ordered against the
        // retirer's SeqCst epoch bump so a flush scan cannot miss a
        // registered predecessor (see `GraceCore::begin`).
        self.slot.store(e, Ordering::SeqCst);
    }

    fn current(&self) -> u64 {
        // ord: Relaxed — own slot, only this handle writes it between
        // claim and drop; the value is compared against a SeqCst epoch
        // re-read that provides the ordering.
        self.slot.load(Ordering::Relaxed)
    }
}

impl<H> Drop for GraceHandle<H>
where
    H: Deref,
    H::Target: AtomicU64Like,
{
    fn drop(&mut self) {
        // ord: SeqCst release of the slot: a concurrent flush scan either
        // sees the registration (and holds our bins) or sees IDLE after
        // we are finished and can no longer touch any block.
        self.slot.store(IDLE_SLOT, Ordering::SeqCst);
    }
}

/// One retired batch awaiting its grace period.
struct Bin {
    epoch: u64,
    blocks: Vec<RetiredBlock>,
}

/// The grace-period protocol (epoch counter, per-transaction slots,
/// retired bins), written once and shared by
/// [`crate::reclaim::GraceTracker`] (`StdSync` + chunked `SlotArray`) and
/// the `oftm-verify` model checker (instrumented atomics + fixed slots).
/// See [`crate::reclaim`] for the full why-this-is-safe argument; the
/// `model_grace` suite in `oftm-verify` checks it exhaustively at
/// preemption bound ≥ 2.
pub struct GraceCore<F: SyncFacade, S: SlotSet<F::Au64>> {
    /// Monotonic epoch; advanced by every retiring commit.
    epoch: F::Au64,
    slots: S,
    /// Retired batches not yet past their grace period.
    bins: F::Mutex<Vec<Bin>>,
    /// Blocks currently sitting in `bins` (kept in sync under the `bins`
    /// lock). Lets the hot no-reclamation path — every commit of a
    /// workload that never retires anything — skip the lock entirely.
    pending: F::Au64,
    retired_blocks: F::Au64,
    freed_blocks: F::Au64,
}

impl<F: SyncFacade, S: SlotSet<F::Au64>> GraceCore<F, S> {
    pub fn new(slots: S) -> Self {
        GraceCore {
            epoch: F::Au64::new(1),
            slots,
            bins: F::Mutex::new(Vec::new()),
            pending: F::Au64::new(0),
            retired_blocks: F::Au64::new(0),
            freed_blocks: F::Au64::new(0),
        }
    }

    /// The slot store (tests/diagnostics).
    pub fn slots(&self) -> &S {
        &self.slots
    }

    /// Registers a beginning transaction. Must be called before the
    /// transaction performs its first read.
    pub fn begin(&self) -> GraceHandle<S::Handle> {
        // ord: SeqCst epoch sample: the claimed slot value must order
        // against retirements' SeqCst epoch bumps.
        let e = self.epoch.load(Ordering::SeqCst);
        let handle = GraceHandle {
            slot: self.slots.claim(e),
        };
        // Revalidate (all `SeqCst`): if the epoch did not move, our slot
        // write is SeqCst-ordered before any later retirement's bump, so
        // that retirement's flush must see us. If it moved, republish —
        // reading the bump (a SeqCst RMW) happens-before-orders the
        // retirer's committed unlink ahead of every read this transaction
        // will do, so the blocks its bin frees are unreachable to us.
        // Without this, a flush racing our registration could miss the
        // slot while our reads still observe pre-unlink state on weakly
        // ordered hardware.
        loop {
            // ord: SeqCst epoch re-read of the revalidation loop (see the
            // block comment above).
            let now = self.epoch.load(Ordering::SeqCst);
            if now == handle.current() {
                break;
            }
            handle.publish_epoch(now);
        }
        handle
    }

    /// Commit hook: releases the committing transaction's slot, enters its
    /// retire-set (if any) as a new batch, and returns every batch whose
    /// grace period has elapsed. The caller must evict the returned blocks
    /// from its variable table — the kernel records ids, not state.
    pub fn retire_and_flush(
        &self,
        grace: GraceHandle<S::Handle>,
        retired: Vec<RetiredBlock>,
    ) -> Vec<RetiredBlock> {
        // Release our slot first: the batch we are about to enter must not
        // wait on the very transaction that retired it.
        drop(grace);
        if !retired.is_empty() {
            // ord: Relaxed — diagnostic counter only.
            self.retired_blocks
                .fetch_add(retired.len() as u64, Ordering::Relaxed);
            // ord: SeqCst epoch bump: orders the batch tag against every
            // beginner's SeqCst slot publication (the flush rule's "slot
            // epoch > batch epoch" comparison depends on it).
            let tag = self.epoch.fetch_add(1, Ordering::SeqCst);
            self.bins.with(|bins| {
                // ord: Release pending bump under the bins lock; pairs
                // with `flush`'s Acquire fast-path probe.
                self.pending
                    .fetch_add(retired.len() as u64, Ordering::Release);
                bins.push(Bin {
                    epoch: tag,
                    blocks: retired,
                });
            });
        }
        self.flush()
    }

    /// Returns every retired batch that no active transaction predates.
    pub fn flush(&self) -> Vec<RetiredBlock> {
        // Fast path: nothing pending — workloads that never retire (the
        // word-level harnesses and benches) pay one relaxed load per
        // commit instead of two lock acquisitions.
        // ord: Acquire probe pairing with the Release bumps under the
        // bins lock; a stale zero only skips a flush some other commit
        // will perform.
        if self.pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        // Lock the bins BEFORE scanning the slots (the same order as the
        // epoch shim's collector). Reversed, a bin pushed between the two
        // steps could be freed against a stale scan that missed a reader
        // registered after it — with the lock held first, every bin we
        // examine was pushed before we locked, so any reader that can
        // reach its blocks registered (and is visible) before our scan.
        let out = self.bins.with(|bins| {
            let min_active = self.slots.min_active();
            let mut out = Vec::new();
            bins.retain_mut(|bin| {
                if bin.epoch < min_active {
                    out.append(&mut bin.blocks);
                    false
                } else {
                    true
                }
            });
            // ord: Release pending decrement under the bins lock; pairs
            // with the Acquire fast-path probe above.
            self.pending.fetch_sub(out.len() as u64, Ordering::Release);
            out
        });
        // ord: Relaxed — diagnostic counter only.
        self.freed_blocks
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        out
    }

    /// Number of retired blocks still awaiting their grace period.
    pub fn pending_blocks(&self) -> usize {
        self.bins
            .with(|bins| bins.iter().map(|b| b.blocks.len()).sum())
    }

    /// Total blocks ever retired (diagnostics).
    pub fn retired_total(&self) -> u64 {
        // ord: Relaxed — diagnostic counter only.
        self.retired_blocks.load(Ordering::Relaxed)
    }

    /// Total blocks whose grace period has elapsed (diagnostics).
    pub fn freed_total(&self) -> u64 {
        // ord: Relaxed — diagnostic counter only.
        self.freed_blocks.load(Ordering::Relaxed)
    }
}
