//! **Contention policy** — the single source of truth for what a retry
//! loop does between aborted attempts, shared by the synchronous
//! spin-backoff paths ([`crate::api::run_transaction_with_budget`], the
//! collection retry loop in `oftm-structs`) and the asynchronous park
//! path (`oftm-asyncrt`).
//!
//! The paper's own progress recipe (Section 1) is randomized bounded
//! exponential backoff: obstruction-free TMs guarantee nothing under
//! sustained step contention, but contention *spread out* by backoff
//! makes solo runs — and hence commits — overwhelmingly likely. The two
//! execution styles consume that recipe differently:
//!
//! * the **sync** loops *spin* for [`backoff_micros`] microseconds and
//!   retry unconditionally;
//! * the **async** runtime retries immediately a bounded number of times
//!   ([`ContentionPolicy::immediate_retries`]), then *parks* on its
//!   footprint's commit notifications, with [`ContentionPolicy::
//!   park_timeout_micros`] (the same schedule, scaled) as the watchdog
//!   deadline that keeps mutually-aborting transactions from sleeping
//!   forever when neither ever commits.
//!
//! Keeping both on one schedule makes attempt accounting comparable:
//! every loop counts an attempt per `begin`, and the async path's
//! timeout-driven re-runs are bounded by the sync path's spin-driven
//! ones — which is what lets the harnesses claim "strictly fewer wasted
//! re-runs" as an apples-to-apples number.

use std::time::Duration;

/// Exponent cap of the randomized backoff: delays are drawn from
/// `[0, 2^min(attempt, 8))` µs.
pub const BACKOFF_CAP_EXP: u32 = 8;

/// Pseudo-random backoff duration in microseconds for the given
/// `(proc, attempt)` pair — `[0, 2^min(attempt, 8))` µs, seeded so threads
/// desynchronize deterministically. Both the sync spin and the async
/// park timeout derive from this one schedule.
pub fn backoff_micros(proc: u32, attempt: u32) -> u64 {
    let mut z = (u64::from(proc) << 32) ^ u64::from(attempt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % (1u64 << attempt.min(BACKOFF_CAP_EXP))
}

/// Spins for [`backoff_micros`]`(proc, attempt)` — the sync loops' wait.
pub fn spin_backoff(proc: u32, attempt: u32) {
    let end = std::time::Instant::now() + Duration::from_micros(backoff_micros(proc, attempt));
    while std::time::Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// How a retry loop behaves between aborted attempts (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct ContentionPolicy {
    /// Aborted attempts the async path re-runs immediately before it
    /// parks. The first abort usually means the conflicting commit *just*
    /// landed — an immediate re-run sees the new state and commonly
    /// succeeds; parking that case would trade one cheap attempt for a
    /// context round-trip.
    pub immediate_retries: u32,
    /// Multiplier from the backoff schedule to the park watchdog timeout:
    /// a parked transaction sleeps `park_scale ×` the time its sync twin
    /// would have spun (plus the floor below), because a wake normally
    /// arrives from a commit much earlier — the timeout only exists so
    /// mutually-aborting transactions (both parked, neither committed,
    /// nobody left to publish) eventually re-run.
    pub park_scale: u32,
    /// Minimum park timeout in microseconds (delays of 0–1 µs from the
    /// early schedule would make the watchdog a busy loop).
    pub park_floor_micros: u64,
}

impl Default for ContentionPolicy {
    fn default() -> Self {
        ContentionPolicy {
            immediate_retries: 1,
            park_scale: 8,
            park_floor_micros: 50,
        }
    }
}

/// Hard ceiling on any park watchdog timeout: one second. The timeout is
/// a liveness safety net, not a wait estimate — an uncapped
/// `park_scale × backoff` product (a caller-supplied scale can be
/// anything up to `u32::MAX`) would turn a missed wake-up into an
/// effectively permanent sleep instead of a late re-run.
pub const MAX_PARK_MICROS: u64 = 1_000_000;

impl ContentionPolicy {
    /// True if the `n`-th consecutive abort (1-based) should re-run
    /// immediately instead of parking.
    pub fn retry_immediately(&self, consecutive_aborts: u32) -> bool {
        consecutive_aborts <= self.immediate_retries
    }

    /// Watchdog deadline distance for a park after `consecutive_aborts`
    /// aborts — the safety net, not the expected wake path. Clamped to
    /// `[park_floor_micros, `[`MAX_PARK_MICROS`]`]`.
    pub fn park_timeout(&self, proc: u32, consecutive_aborts: u32) -> Duration {
        let micros = backoff_micros(proc, consecutive_aborts)
            .saturating_mul(u64::from(self.park_scale))
            .max(self.park_floor_micros)
            .min(MAX_PARK_MICROS);
        Duration::from_micros(micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 0..20 {
            let a = backoff_micros(3, attempt);
            let b = backoff_micros(3, attempt);
            assert_eq!(a, b);
            assert!(a < (1 << attempt.min(BACKOFF_CAP_EXP)));
        }
    }

    #[test]
    fn procs_desynchronize() {
        // Not all-equal across procs for a mid-schedule attempt.
        let vals: Vec<u64> = (0..8).map(|p| backoff_micros(p, 6)).collect();
        assert!(vals.iter().any(|&v| v != vals[0]), "{vals:?}");
    }

    #[test]
    fn policy_schedule() {
        let p = ContentionPolicy::default();
        assert!(p.retry_immediately(1));
        assert!(!p.retry_immediately(2));
        assert!(p.park_timeout(0, 2) >= Duration::from_micros(p.park_floor_micros));
    }

    #[test]
    fn park_timeout_is_capped() {
        // Regression: `backoff × park_scale` had no upper bound, so an
        // overflow-sized scale parked a transaction for (effectively)
        // forever if its wake-up was ever missed.
        let p = ContentionPolicy {
            immediate_retries: 1,
            park_scale: u32::MAX,
            park_floor_micros: 50,
        };
        for proc in 0..8 {
            for aborts in 1..32 {
                assert!(p.park_timeout(proc, aborts) <= Duration::from_micros(MAX_PARK_MICROS));
            }
        }
        // The floor still applies below the cap.
        assert!(p.park_timeout(0, 1) >= Duration::from_micros(50));
    }
}
