//! The Polite contention manager: exponential backoff, then abort.
//!
//! Mirrors the "back off for some fixed time (maybe random) to give `T_i` a
//! chance" behaviour described in Section 1 of the paper, with the mandatory
//! escape hatch: after `max_attempts` rounds of waiting the other
//! transaction is aborted, preserving obstruction-freedom.

use super::{expo_backoff, ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;
use std::time::Duration;

/// Exponential-backoff-then-abort policy.
#[derive(Clone, Copy, Debug)]
pub struct Polite {
    /// Backoff rounds before giving up on the owner.
    pub max_attempts: u32,
    /// First backoff duration; doubles each round.
    pub base: Duration,
    /// Upper bound on a single backoff.
    pub cap: Duration,
}

impl Default for Polite {
    fn default() -> Self {
        Polite {
            max_attempts: 8,
            base: Duration::from_micros(2),
            cap: Duration::from_micros(512),
        }
    }
}

impl ContentionManager for Polite {
    fn name(&self) -> &'static str {
        "polite"
    }

    fn resolve(&self, _me: &Descriptor, _other: &Descriptor, attempt: u32) -> Resolution {
        if attempt >= self.max_attempts {
            Resolution::AbortOther
        } else {
            Resolution::Backoff(expo_backoff(self.base, attempt, self.cap))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn backs_off_then_aborts() {
        let cm = Polite::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        let mut saw_backoff = false;
        for attempt in 0..cm.max_attempts {
            match cm.resolve(&me, &other, attempt) {
                Resolution::Backoff(d) => {
                    saw_backoff = true;
                    assert!(d <= cm.cap);
                }
                Resolution::AbortOther => panic!("aborted too early at attempt {attempt}"),
            }
        }
        assert!(saw_backoff);
        assert_eq!(
            cm.resolve(&me, &other, cm.max_attempts),
            Resolution::AbortOther
        );
    }

    #[test]
    fn backoff_durations_grow() {
        let cm = Polite::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        let d0 = match cm.resolve(&me, &other, 0) {
            Resolution::Backoff(d) => d,
            _ => unreachable!(),
        };
        let d3 = match cm.resolve(&me, &other, 3) {
            Resolution::Backoff(d) => d,
            _ => unreachable!(),
        };
        assert!(d3 > d0);
    }
}
