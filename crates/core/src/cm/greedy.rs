//! The Greedy (timestamp) contention manager: older transactions win.
//!
//! Each transaction carries its birth timestamp (nanoseconds since the STM
//! epoch). On conflict, if `me` is older than the owner, the owner is
//! aborted immediately; otherwise `me` backs off, giving the older owner
//! time to finish — but only `max_attempts` times, after which the owner is
//! aborted anyway (the owner might be preempted or crashed, and
//! obstruction-freedom forbids waiting forever — Section 1 of the paper).

use super::{expo_backoff, ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;
use std::time::Duration;

/// Oldest-transaction-wins policy with a bounded courtesy period.
#[derive(Clone, Copy, Debug)]
pub struct Greedy {
    pub base: Duration,
    pub cap: Duration,
    pub max_attempts: u32,
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy {
            base: Duration::from_micros(2),
            cap: Duration::from_micros(512),
            max_attempts: 10,
        }
    }
}

impl ContentionManager for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn resolve(&self, me: &Descriptor, other: &Descriptor, attempt: u32) -> Resolution {
        if me.birth() <= other.birth() || attempt >= self.max_attempts {
            Resolution::AbortOther
        } else {
            Resolution::Backoff(expo_backoff(self.base, attempt, self.cap))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn older_aborts_younger_owner() {
        let cm = Greedy::default();
        let me = Descriptor::new(TxId::new(1, 0), 10);
        let other = Descriptor::new(TxId::new(2, 0), 20);
        assert_eq!(cm.resolve(&me, &other, 0), Resolution::AbortOther);
    }

    #[test]
    fn younger_defers_then_aborts() {
        let cm = Greedy::default();
        let me = Descriptor::new(TxId::new(1, 0), 20);
        let other = Descriptor::new(TxId::new(2, 0), 10);
        assert!(matches!(cm.resolve(&me, &other, 0), Resolution::Backoff(_)));
        assert_eq!(
            cm.resolve(&me, &other, cm.max_attempts),
            Resolution::AbortOther
        );
    }
}
