//! The **Courteous** manager: yield the CPU to the owner instead of
//! spinning at it.
//!
//! The classical managers express courtesy as *bounded busy-waiting*
//! (Polite's exponential backoff and friends). On an oversubscribed or
//! single-CPU host that is exactly backwards: the conflicting owner is
//! usually not running *because the attacker holds the CPU*, and a
//! sub-quantum spin never lets it finish. Worse, once every attacker's
//! total patience fits inside one scheduler quantum, patience always
//! expires while the owner is still preempted — each attacker revokes the
//! descheduled owner, acquires, is itself preempted, and is revoked in
//! turn. Nobody commits: a mutual-revocation ring (measured on a 1-CPU
//! box: DSTM/Polite collapses to ~20 ops/s on an early-acquire workload
//! the courteous manager runs at ~100k ops/s).
//!
//! `Courteous` makes the courtesy a *scheduling* act: each resolution
//! round calls [`std::thread::yield_now`] — handing the processor to the
//! preempted owner, which then finishes in microseconds — and requests a
//! zero-length backoff. After `patience` rounds the owner is presumed
//! crashed or parked and is aborted, preserving the paper's
//! obstruction-freedom contract: *"eventually `T_k` must be able to abort
//! `T_i` … without any interaction with `T_i`"* (finitely many backoffs,
//! then [`Resolution::AbortOther`]).

use super::{ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;
use std::time::Duration;

/// Yield-to-owner contention manager (see module docs).
pub struct Courteous {
    /// Resolution rounds (each one scheduler yield) granted to a live
    /// owner before it is presumed stuck and aborted.
    pub patience: u32,
}

impl Default for Courteous {
    fn default() -> Self {
        // 64 yields ≫ the handful of quanta a live preempted owner needs
        // to finish, yet resolves in microseconds against a parked or
        // crashed owner (yielding with no runnable peer is a no-op).
        Courteous { patience: 64 }
    }
}

impl ContentionManager for Courteous {
    fn name(&self) -> &'static str {
        "courteous"
    }

    fn resolve(&self, _me: &Descriptor, _other: &Descriptor, attempt: u32) -> Resolution {
        if attempt < self.patience {
            // The wait itself: one scheduler quantum donated to the owner.
            // The zero-length backoff returns control to the conflict loop
            // immediately once we are rescheduled.
            std::thread::yield_now();
            Resolution::Backoff(Duration::ZERO)
        } else {
            Resolution::AbortOther
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;
    use std::sync::Arc;

    #[test]
    fn yields_then_aborts_at_patience() {
        let cm = Courteous { patience: 3 };
        let me = Arc::new(Descriptor::new(TxId::new(1, 0), 10));
        let other = Arc::new(Descriptor::new(TxId::new(2, 0), 5));
        for attempt in 0..3 {
            assert_eq!(
                cm.resolve(&me, &other, attempt),
                Resolution::Backoff(Duration::ZERO)
            );
        }
        assert_eq!(cm.resolve(&me, &other, 3), Resolution::AbortOther);
    }
}
