//! The Karma contention manager: priority by accumulated work.
//!
//! Each transaction earns one unit of karma per t-variable it opens
//! (`on_open`). On conflict, a transaction with at least as much karma as
//! the owner — plus the number of times it has already retried — aborts the
//! owner; otherwise it backs off briefly and retries, effectively spending
//! retries to buy priority. Aborted transactions keep their karma across
//! restarts in the original proposal; here karma lives in the descriptor,
//! and the retry counter serves the same seniority purpose while keeping
//! the manager stateless. The attempt counter guarantees the
//! obstruction-freedom escape hatch.

use super::{expo_backoff, ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;
use std::time::Duration;

/// Work-based priority policy.
#[derive(Clone, Copy, Debug)]
pub struct Karma {
    pub base: Duration,
    pub cap: Duration,
    /// Hard bound on backoff rounds (obstruction-freedom).
    pub max_attempts: u32,
}

impl Default for Karma {
    fn default() -> Self {
        Karma {
            base: Duration::from_micros(1),
            cap: Duration::from_micros(256),
            max_attempts: 16,
        }
    }
}

impl ContentionManager for Karma {
    fn name(&self) -> &'static str {
        "karma"
    }

    fn resolve(&self, me: &Descriptor, other: &Descriptor, attempt: u32) -> Resolution {
        if attempt >= self.max_attempts {
            return Resolution::AbortOther;
        }
        let mine = me.karma().saturating_add(u64::from(attempt));
        if mine >= other.karma() {
            Resolution::AbortOther
        } else {
            Resolution::Backoff(expo_backoff(self.base, attempt, self.cap))
        }
    }

    fn on_open(&self, me: &Descriptor) {
        me.add_karma(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn richer_transaction_wins_immediately() {
        let cm = Karma::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        for _ in 0..5 {
            cm.on_open(&me);
        }
        cm.on_open(&other);
        assert_eq!(cm.resolve(&me, &other, 0), Resolution::AbortOther);
    }

    #[test]
    fn poorer_transaction_buys_priority_with_retries() {
        let cm = Karma::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        for _ in 0..3 {
            cm.on_open(&other);
        }
        // attempt 0..2: poorer, backs off; attempt 3: karma 0 + 3 ≥ 3.
        assert!(matches!(cm.resolve(&me, &other, 0), Resolution::Backoff(_)));
        assert_eq!(cm.resolve(&me, &other, 3), Resolution::AbortOther);
    }

    #[test]
    fn hard_cap_preserves_obstruction_freedom() {
        let cm = Karma::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        other.add_karma(1_000_000);
        assert_eq!(
            cm.resolve(&me, &other, cm.max_attempts),
            Resolution::AbortOther
        );
    }
}
