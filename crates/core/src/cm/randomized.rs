//! The Randomized contention manager: flip a coin between aborting the
//! owner and backing off a random duration.
//!
//! Randomization breaks the symmetric livelock two Aggressive transactions
//! can fall into, without any bookkeeping. A deterministic attempt cap
//! keeps the manager obstruction-free even with an adversarial RNG.

use super::{ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::time::Duration;

/// Coin-flip policy.
#[derive(Clone, Copy, Debug)]
pub struct Randomized {
    /// Probability (in percent) of aborting the owner at each attempt.
    pub abort_percent: u8,
    pub max_backoff: Duration,
    pub max_attempts: u32,
}

impl Default for Randomized {
    fn default() -> Self {
        Randomized {
            abort_percent: 50,
            max_backoff: Duration::from_micros(128),
            max_attempts: 12,
        }
    }
}

thread_local! {
    static RNG: RefCell<SmallRng> = RefCell::new(SmallRng::from_entropy());
}

impl ContentionManager for Randomized {
    fn name(&self) -> &'static str {
        "randomized"
    }

    fn resolve(&self, _me: &Descriptor, _other: &Descriptor, attempt: u32) -> Resolution {
        if attempt >= self.max_attempts {
            return Resolution::AbortOther;
        }
        RNG.with(|rng| {
            let mut rng = rng.borrow_mut();
            if rng.gen_range(0..100u8) < self.abort_percent {
                Resolution::AbortOther
            } else {
                let nanos = rng.gen_range(0..self.max_backoff.as_nanos() as u64);
                Resolution::Backoff(Duration::from_nanos(nanos))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn cap_enforced() {
        let cm = Randomized::default();
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        assert_eq!(
            cm.resolve(&me, &other, cm.max_attempts),
            Resolution::AbortOther
        );
    }

    #[test]
    fn always_abort_with_p100() {
        let cm = Randomized {
            abort_percent: 100,
            ..Default::default()
        };
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        for a in 0..8 {
            assert_eq!(cm.resolve(&me, &other, a), Resolution::AbortOther);
        }
    }

    #[test]
    fn backoff_bounded_with_p0() {
        let cm = Randomized {
            abort_percent: 0,
            ..Default::default()
        };
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        for a in 0..cm.max_attempts {
            match cm.resolve(&me, &other, a) {
                Resolution::Backoff(d) => assert!(d <= cm.max_backoff),
                Resolution::AbortOther => panic!("p=0 must not abort before the cap"),
            }
        }
    }
}
