//! Contention managers for the DSTM-style OFTM.
//!
//! Section 1 of the paper: *"A contention manager might tell `T_k` to back
//! off for some fixed time (maybe random) to give `T_i` a chance, but
//! eventually `T_k` must be able to abort `T_i` and acquire `x` without any
//! interaction with `T_i`."*
//!
//! That sentence is the obstruction-freedom contract every manager here
//! honours: [`ContentionManager::resolve`] may return
//! [`Resolution::Backoff`] only finitely many times for a given conflict —
//! after a bounded number of attempts every manager returns
//! [`Resolution::AbortOther`]. A manager violating this would make the STM
//! blocking, not obstruction-free (tested in `cm::tests::all_managers_eventually_abort`).
//!
//! The managers implemented are the classical ones studied with DSTM \[18\]:
//! Aggressive, Polite, Karma, Greedy (timestamp) and Randomized.

mod aggressive;
mod courteous;
mod greedy;
mod karma;
mod polite;
mod randomized;

pub use aggressive::Aggressive;
pub use courteous::Courteous;
pub use greedy::Greedy;
pub use karma::Karma;
pub use polite::Polite;
pub use randomized::Randomized;

use crate::dstm::descriptor::Descriptor;
use std::time::Duration;

/// Decision returned by a contention manager when transaction `me` finds a
/// t-variable owned by the live transaction `other`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Forcefully abort the owner and take the object.
    AbortOther,
    /// Give the owner a chance: wait for the given duration, then re-examine
    /// the conflict (the next call passes an incremented attempt counter).
    Backoff(Duration),
}

/// A pluggable conflict-resolution policy.
///
/// Managers observe descriptors only through their public atomic fields, so
/// `resolve` may be called concurrently from many threads.
pub trait ContentionManager: Send + Sync {
    fn name(&self) -> &'static str;

    /// Called when `me` (live) conflicts with `other` (live) for the
    /// `attempt`-th consecutive time on the same acquisition.
    ///
    /// Obstruction-freedom contract: for every fixed conflict there must be
    /// a finite `attempt` after which the result is
    /// [`Resolution::AbortOther`].
    fn resolve(&self, me: &Descriptor, other: &Descriptor, attempt: u32) -> Resolution;

    /// Hook: `me` opened (acquired or read) one more t-variable. Karma-like
    /// managers accumulate priority here.
    fn on_open(&self, _me: &Descriptor) {}

    /// Hook: `me` committed.
    fn on_commit(&self, _me: &Descriptor) {}

    /// Hook: `me` aborted (voluntarily or forcefully).
    fn on_abort(&self, _me: &Descriptor) {}
}

/// Shared helper: truncated exponential backoff, `base * 2^attempt` capped
/// at `cap`. All durations are tiny — backoff here is about letting a
/// *running* peer finish, not about fairness on oversubscribed systems.
pub(crate) fn expo_backoff(base: Duration, attempt: u32, cap: Duration) -> Duration {
    let factor = 1u32 << attempt.min(16);
    base.checked_mul(factor).map_or(cap, |d| d.min(cap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dstm::descriptor::Descriptor;
    use oftm_histories::TxId;
    use std::sync::Arc;

    fn desc(proc: u32, seq: u32, birth: u64) -> Arc<Descriptor> {
        Arc::new(Descriptor::new(TxId::new(proc, seq), birth))
    }

    /// The obstruction-freedom contract: every manager must emit AbortOther
    /// after finitely many attempts (we allow a generous bound of 128).
    #[test]
    fn all_managers_eventually_abort() {
        let managers: Vec<Box<dyn ContentionManager>> = vec![
            Box::new(Aggressive),
            Box::new(Polite::default()),
            Box::new(Karma::default()),
            Box::new(Greedy::default()),
            Box::new(Randomized::default()),
            Box::new(Courteous::default()),
        ];
        let me = desc(1, 0, 100);
        let other = desc(2, 0, 50); // older than me: worst case for Greedy
        for m in &managers {
            // Karma: make the other strictly richer so it is the worst case.
            for _ in 0..10 {
                m.on_open(&other);
            }
            let mut aborted = false;
            for attempt in 0..128 {
                if m.resolve(&me, &other, attempt) == Resolution::AbortOther {
                    aborted = true;
                    break;
                }
            }
            assert!(aborted, "{} never aborts the other", m.name());
        }
    }

    #[test]
    fn expo_backoff_caps() {
        let d = expo_backoff(Duration::from_micros(1), 40, Duration::from_millis(1));
        assert_eq!(d, Duration::from_millis(1));
        let d0 = expo_backoff(Duration::from_micros(1), 0, Duration::from_millis(1));
        assert_eq!(d0, Duration::from_micros(1));
    }
}
