//! The Aggressive contention manager: always abort the other transaction.
//!
//! This is the bare minimum that obstruction-freedom allows and the
//! baseline the DSTM paper \[18\] starts from. It guarantees immediate
//! progress for the caller at the cost of potential livelock between two
//! transactions repeatedly stealing an object from each other (the retry
//! loop in `run_transaction` combined with schedulers' natural jitter makes
//! this rare in practice; the Polite/Karma managers exist to make it rarer).

use super::{ContentionManager, Resolution};
use crate::dstm::descriptor::Descriptor;

/// Always-abort-the-victim policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct Aggressive;

impl ContentionManager for Aggressive {
    fn name(&self) -> &'static str {
        "aggressive"
    }

    fn resolve(&self, _me: &Descriptor, _other: &Descriptor, _attempt: u32) -> Resolution {
        Resolution::AbortOther
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_histories::TxId;

    #[test]
    fn always_aborts() {
        let me = Descriptor::new(TxId::new(1, 0), 0);
        let other = Descriptor::new(TxId::new(2, 0), 0);
        for attempt in 0..4 {
            assert_eq!(
                Aggressive.resolve(&me, &other, attempt),
                Resolution::AbortOther
            );
        }
    }
}
