//! Property tests for the paged-slab [`VarTable`]: seeded random tapes of
//! interleaved static inserts, block allocations, frees and lookups,
//! replayed against a model `HashMap` — the slab must agree op-for-op on
//! presence, values, the live count and the freed metric, and a freed id
//! must keep producing the uniform `get_or_panic` diagnostic.
//!
//! A failing case prints `PROPTEST_SEED=…` for exact replay (the shim has
//! no shrinking; seeds replay instead).

use oftm_core::table::{VarTable, DYNAMIC_TVAR_BASE};
use oftm_histories::TVarId;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slab ≡ model HashMap under any interleaving of static insert,
    /// block alloc, block free and point remove.
    #[test]
    fn slab_matches_model(ops in proptest::collection::vec((0u8..5, 0u64..24, 1u64..5), 0..64)) {
        let table: VarTable<u64> = VarTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        // Blocks allocated so far, as (base, len, freed_already).
        let mut blocks: Vec<(u64, usize, bool)> = Vec::new();
        let mut freed_expected = 0u64;

        for &(op, a, b) in &ops {
            match op {
                // Static insert (replace allowed).
                0 => {
                    table.insert(TVarId(a), a * 1000 + b);
                    model.insert(a, a * 1000 + b);
                }
                // Block allocation of len b.
                1 => {
                    let initials: Vec<u64> = (0..b).map(|k| a + k).collect();
                    let base = table.alloc_block(&initials, |_, v| v);
                    prop_assert!(base.0 >= DYNAMIC_TVAR_BASE);
                    for (k, &init) in initials.iter().enumerate() {
                        prop_assert!(
                            model.insert(base.0 + k as u64, init).is_none(),
                            "allocator reused an id"
                        );
                    }
                    blocks.push((base.0, initials.len(), false));
                }
                // Free a previously allocated block (idempotent on repeat).
                2 => {
                    if !blocks.is_empty() {
                        let i = (a as usize) % blocks.len();
                        let (base, len, already) = blocks[i];
                        table.remove_block(TVarId(base), len);
                        if !already {
                            for k in 0..len {
                                prop_assert!(model.remove(&(base + k as u64)).is_some());
                            }
                            freed_expected += len as u64;
                        }
                        blocks[i].2 = true;
                    }
                }
                // Point remove of a static id.
                3 => {
                    let was = table.remove(TVarId(a));
                    prop_assert_eq!(was, model.remove(&a).is_some(), "remove({}) presence", a);
                    if was {
                        freed_expected += 1;
                    }
                }
                // Lookup of a static id.
                _ => {
                    let got = table.get(TVarId(a)).map(|v| *v);
                    prop_assert_eq!(got, model.get(&a).copied(), "get({})", a);
                }
            }
            prop_assert_eq!(table.len(), model.len(), "live count diverged");
            prop_assert_eq!(table.freed(), freed_expected, "freed metric diverged");
        }

        // Every model entry resolves; every freed block misses — and via
        // the uniform diagnostic.
        for (&k, &v) in &model {
            prop_assert_eq!(*table.get_or_panic(TVarId(k)), v);
        }
        for &(base, len, freed) in &blocks {
            if freed {
                for k in 0..len {
                    let id = TVarId(base + k as u64);
                    prop_assert!(table.get(id).is_none(), "freed id {} still resolves", id.0);
                    let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        table.get_or_panic(id)
                    }))
                    .expect_err("freed id must panic");
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    prop_assert!(
                        msg.contains("not registered"),
                        "freed-id diagnostic wrong: {msg:?}"
                    );
                }
            }
        }
    }
}
