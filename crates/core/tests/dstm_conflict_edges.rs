//! Edge-attribution exactness for DSTM: a deterministically forced
//! conflict must produce exactly one who-aborted-whom edge naming the
//! aggressor **transaction** (not just its process) via the descriptor's
//! killer stamp — and a conflict whose aggressor is genuinely unknown
//! must produce a heatmap row and **no** edge (attribution is reported,
//! never invented). Sibling of the cause-exactness tests in
//! `cm_forced_conflict.rs`.

use oftm_core::cm::{Aggressive, Polite};
use oftm_core::dstm::Dstm;
use oftm_obs::{pack_tx, AbortCause};
use std::sync::Arc;

/// Forced CM kill under the Aggressive manager: the writer meeting a
/// live owner stamps the owner's descriptor and kills it. The victim's
/// discovery must yield exactly one edge carrying the killer's exact
/// packed transaction id, the victim's, the arbitration cause, and the
/// contested t-variable.
#[test]
fn forced_cm_kill_records_one_exact_edge() {
    let stm = Dstm::new(Arc::new(Aggressive));
    let x = stm.new_tvar(0u64);
    let forensics = stm.stats().forensics();
    forensics.set_sample_period(1);
    forensics.reset();

    let mut victim = stm.begin(0);
    let victim_id = victim.id();
    victim.write(&x, 1).expect("first ownership is uncontended");
    let mut killer = stm.begin(1);
    let killer_id = killer.id();
    killer.write(&x, 2).expect("aggressive kills the owner");
    killer.commit().expect("killer commits unopposed");
    assert!(victim.commit().is_err(), "killed transaction cannot commit");

    let edges = forensics.edges().top_k(8);
    assert_eq!(edges.len(), 1, "exactly one edge: {edges:?}");
    let e = &edges[0];
    assert_eq!(e.count, 1);
    assert_eq!(e.cause, AbortCause::CmArbitrated);
    assert_eq!(e.var, x.id().0, "edge names the contested t-variable");
    assert_eq!(e.aggressor_proc, killer_id.proc);
    assert_eq!(e.victim_proc, victim_id.proc);
    // The killer stamp carries the full packed id — transaction-exact
    // attribution, not merely the right process.
    assert_eq!(e.last_aggressor, pack_tx(killer_id.proc, killer_id.seq));
    assert_eq!(e.last_victim, pack_tx(victim_id.proc, victim_id.seq));

    let hot = forensics.heatmap().top_k(4);
    assert_eq!(hot.len(), 1, "one hot variable: {hot:?}");
    assert_eq!(hot[0].var, x.id().0);
    assert_eq!(hot[0].total, 1);
    assert_eq!(hot[0].dominant_cause(), AbortCause::CmArbitrated);
}

/// Forced stale read under Polite: commit-time validation catches the
/// invalidated read, but DSTM's locator does not record which peer
/// committed the newer version — the heatmap must still attribute the
/// variable, and the edge table must stay empty rather than fabricate
/// an aggressor.
#[test]
fn stale_read_attributes_variable_without_fabricating_an_edge() {
    let stm = Dstm::new(Arc::new(Polite::default()));
    let x = stm.new_tvar(0u64);
    let forensics = stm.stats().forensics();
    forensics.set_sample_period(1);
    forensics.reset();

    let mut reader = stm.begin(0);
    assert_eq!(reader.read(&x).expect("clean first read"), 0);
    let mut writer = stm.begin(1);
    writer.write(&x, 7).expect("writer is unopposed");
    writer.commit().expect("writer commits");
    assert!(
        reader.commit().is_err(),
        "validation catches the stale read"
    );

    let hot = forensics.heatmap().top_k(4);
    assert_eq!(hot.len(), 1, "the stale variable is attributed: {hot:?}");
    assert_eq!(hot[0].var, x.id().0);
    assert_eq!(hot[0].dominant_cause(), AbortCause::ReadValidation);
    assert!(
        forensics.edges().top_k(8).is_empty(),
        "no peer is identifiable here — an edge would be an invention"
    );
}
