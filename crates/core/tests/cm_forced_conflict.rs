//! Forced-conflict tests for the five contention managers.
//!
//! Two levels, per manager:
//! * a **policy-level** simulation of a symmetric two-transaction
//!   collision, asserting the manager hands at least one side
//!   `AbortOther` within a bounded number of rounds (no mutual-backoff
//!   livelock); and
//! * an **engine-level** run where two threads repeatedly collide on one
//!   t-variable through the real DSTM, asserting both threads finish
//!   their quota of committed transactions within a watchdog deadline.

use oftm_core::cm::{Aggressive, ContentionManager, Greedy, Karma, Polite, Randomized, Resolution};
use oftm_core::dstm::descriptor::Descriptor;
use oftm_core::dstm::Dstm;
use oftm_histories::TxId;
use oftm_obs::{AbortCause, Counter, StatsSnapshot};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn managers() -> Vec<(&'static str, Arc<dyn ContentionManager>)> {
    vec![
        ("polite", Arc::new(Polite::default())),
        ("karma", Arc::new(Karma::default())),
        ("greedy", Arc::new(Greedy::default())),
        ("aggressive", Arc::new(Aggressive)),
        ("randomized", Arc::new(Randomized::default())),
    ]
}

/// Policy level: in a symmetric collision (both sides live, both
/// repeatedly consulting the manager about the other), some side must be
/// told to abort the other within a bounded number of rounds. A manager
/// that lets both sides back off forever would livelock the engine.
#[test]
fn symmetric_collision_resolves_without_livelock() {
    for (name, cm) in managers() {
        // Distinct birth timestamps: Greedy breaks ties by age.
        let a = Arc::new(Descriptor::new(TxId::new(1, 0), 10));
        let b = Arc::new(Descriptor::new(TxId::new(2, 0), 20));
        let mut resolved_round = None;
        for round in 0..256u32 {
            let ra = cm.resolve(&a, &b, round);
            let rb = cm.resolve(&b, &a, round);
            if ra == Resolution::AbortOther || rb == Resolution::AbortOther {
                resolved_round = Some(round);
                break;
            }
        }
        let round = resolved_round
            .unwrap_or_else(|| panic!("{name}: 256 symmetric rounds, nobody may abort"));
        // The winner's victim really can be aborted (descriptor-level CAS).
        let winner_aborts_b = cm.resolve(&a, &b, round) == Resolution::AbortOther;
        let victim = if winner_aborts_b { &b } else { &a };
        assert!(
            victim.try_abort(),
            "{name}: resolved victim could not be aborted"
        );
    }
}

/// Backoff durations must be finite and small enough to retry promptly;
/// the obstruction-freedom contract is about *eventual* unilateral
/// progress, not long sleeps.
#[test]
fn backoff_durations_are_bounded() {
    for (name, cm) in managers() {
        let me = Descriptor::new(TxId::new(1, 0), 10);
        let other = Descriptor::new(TxId::new(2, 0), 20);
        for attempt in 0..64 {
            if let Resolution::Backoff(d) = cm.resolve(&me, &other, attempt) {
                assert!(
                    d <= Duration::from_millis(50),
                    "{name}: excessive backoff {d:?} at attempt {attempt}"
                );
            }
        }
    }
}

/// Asserts that exactly the expected cause moved (by exactly `n`) in the
/// delta between two snapshots — the abort-cause taxonomy is a
/// partition, so a forced conflict may not leak into other buckets.
fn assert_only_cause(delta: &StatsSnapshot, expected: AbortCause, n: u64) {
    for &cause in oftm_obs::ABORT_CAUSES {
        let want = if cause == expected { n } else { 0 };
        assert_eq!(
            delta.get(cause.counter()),
            want,
            "cause {} moved unexpectedly (wanted {expected:?} × {n})",
            cause.name()
        );
    }
    assert_eq!(delta.aborts(), n, "derived abort total");
}

/// Forced CM arbitration: under the Aggressive manager, a writer meeting
/// a live owner kills it on the spot. The victim's next step discovers
/// the kill, and the abort must land in `cm_arbitrated` — once, and in
/// no other bucket.
#[test]
fn forced_peer_kill_tags_cm_arbitrated_exactly_once() {
    let stm = Dstm::new(Arc::new(Aggressive));
    let x = stm.new_tvar(0u64);
    let before = stm.stats().snapshot();

    let mut victim = stm.begin(0);
    victim.write(&x, 1).expect("first ownership is uncontended");
    // The killer: Aggressive resolves the ownership conflict by aborting
    // the live owner immediately.
    let mut killer = stm.begin(1);
    killer.write(&x, 2).expect("aggressive kills the owner");
    killer.commit().expect("killer commits unopposed");
    // The victim discovers its death at its next operation; the engine
    // tags the abort at that first discovery site.
    assert!(victim.commit().is_err(), "killed transaction cannot commit");

    let delta = stm.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::CmArbitrated, 1);
    assert_eq!(delta.get(Counter::Begins), 2);
    assert_eq!(delta.get(Counter::Commits), 1, "only the killer committed");
}

/// Forced stale read: a reader snapshots a t-variable, a peer commits a
/// new version, and the reader's commit-time validation must fail — in
/// `read_validation`, once, and in no other bucket.
#[test]
fn forced_stale_read_tags_read_validation_exactly_once() {
    let stm = Dstm::new(Arc::new(Polite::default()));
    let x = stm.new_tvar(0u64);
    let before = stm.stats().snapshot();

    let mut reader = stm.begin(0);
    assert_eq!(reader.read(&x).expect("clean first read"), 0);
    let mut writer = stm.begin(1);
    writer.write(&x, 7).expect("writer is unopposed");
    writer.commit().expect("writer commits");
    assert!(
        reader.commit().is_err(),
        "validation must catch the stale read"
    );

    let delta = stm.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ReadValidation, 1);
    assert_eq!(delta.get(Counter::Commits), 1, "only the writer committed");
}

/// A voluntary rollback of a live transaction is an `explicit_retry` —
/// exactly one, with every conflict bucket untouched.
#[test]
fn voluntary_rollback_tags_explicit_retry_exactly_once() {
    let stm = Dstm::default();
    let x = stm.new_tvar(0u64);
    let before = stm.stats().snapshot();

    let mut tx = stm.begin(0);
    let _ = tx.read(&x).expect("clean read");
    tx.rollback();

    let delta = stm.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ExplicitRetry, 1);
    assert_eq!(delta.get(Counter::Begins), 1);
    assert_eq!(delta.all_commits(), 0);
}

/// Engine level: two threads hammer one shared counter through the real
/// DSTM under each manager. Both must complete all their committed
/// increments (watchdog: 30 s — livelock shows up as a timeout, and the
/// final counter value detects lost updates).
#[test]
fn two_thread_collision_completes_under_every_manager() {
    const OPS: u64 = 200;
    for (name, cm) in managers() {
        let stm = Arc::new(Dstm::new(cm));
        let x = stm.new_tvar(0u64);
        let (done_tx, done_rx) = mpsc::channel();
        for p in 0..2u32 {
            let stm = Arc::clone(&stm);
            let x = x.clone();
            let done = done_tx.clone();
            std::thread::spawn(move || {
                for _ in 0..OPS {
                    stm.atomically(p, |tx| {
                        let v = tx.read(&x)?;
                        tx.write(&x, v + 1)
                    });
                }
                let _ = done.send(p);
            });
        }
        drop(done_tx);
        for _ in 0..2 {
            done_rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|_| panic!("{name}: collision livelocked (watchdog expired)"));
        }
        assert_eq!(x.read_atomic(), 2 * OPS, "{name}: lost updates");
    }
}
