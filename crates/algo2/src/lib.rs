//! # oftm-algo2 — Algorithm 2: an OFTM from fo-consensus and registers
//!
//! This crate implements the construction of Lemma 8 of *On
//! Obstruction-Free Transactions*: a software transactional memory whose
//! only synchronization primitives are **fo-consensus objects and
//! registers** — no CAS. Combined with `oftm-foc`'s [`SplitterFoc`]
//! (fo-consensus from one-shot test-and-set + registers), this
//! constructively realizes the paper's claim that an OFTM can be built from
//! *one-shot objects of consensus number 2 and registers*, pinning the
//! OFTM's consensus number at exactly 2 (Corollary 11).
//!
//! As the paper notes (footnote 6), the construction uses unbounded arrays
//! and has high time complexity: "its sole purpose is to prove the
//! equivalence result". We keep it executable and *correct* — it passes
//! the same serializability/opacity/obstruction-freedom checkers as the
//! practical DSTM — but it is not the crate you want for throughput (see
//! the `exp_alg2_opacity` experiment for measured cell counts and the
//! bench suite for the gap).
//!
//! [`SplitterFoc`]: oftm_foc::SplitterFoc

pub mod registry;
pub mod stm;

pub use registry::Registry;
pub use stm::{Algo2Stm, Algo2Tx, Fate, FocKind};
