//! **Algorithm 2** of the paper: an OFTM from fo-consensus objects and
//! registers (Lemma 8), line-by-line.
//!
//! ```text
//! uses: Owner, State – arrays of fo-consensus; TVar, Aborted, V – registers
//! initially: Aborted[Tk] = false, V[x] = ⊥, wset = ∅
//!
//! upon read of x by Tk:      return acquire(Tk, x)
//! upon write of v to x by Tk: s ← acquire(Tk, x); if s = Ak return Ak;
//!                             TVar[x,Tk] ← v; return ok
//! procedure acquire(Tk, x):
//!   if x ∉ wset:
//!     version ← 1; state ← initial state of x; v ← V[x]
//!     repeat
//!       owner ← Owner[x,version].propose(Tk)
//!       if owner = ⊥ then return Ak
//!       if owner ≠ Tk then
//!         s ← State[owner].propose(aborted)
//!         if s = ⊥ then return Ak
//!         if s = committed then state ← TVar[x,owner]
//!         else Aborted[owner] ← true
//!       if V[x] ≠ v then return Ak
//!       version ← version + 1
//!     until owner = Tk
//!     wset ← wset ∪ {x}; TVar[x,Tk] ← state; V[x] ← Tk
//!   else state ← TVar[x,Tk]
//!   if Aborted[Tk] then return Ak
//!   return state
//! upon tryC: s ← State[Tk].propose(committed);
//!            return (s = committed) ? Ck : Ak
//! upon tryA: return Ak
//! ```
//!
//! Each version of a t-variable is mapped to one owning transaction via the
//! fo-consensus `Owner[x, version]`; committing/aborting `T_k` is proposing
//! `committed`/`aborted` to `State[T_k]` — the losing proposal learns the
//! winner, giving exactly DSTM's revocable-ownership semantics without CAS.
//! The two "important implementation details" the paper calls out — the
//! final `Aborted[T_k]` re-check and the `V[x]` change check inside the
//! scan loop (wait-freedom) — are both present and covered by tests.
//!
//! ## Read-only transactions
//!
//! In Algorithm 2 even a read *acquires* (ownership is how a read learns
//! the current state), so a read-only transaction on the plain path still
//! proposes to `Owner` cells, publishes `V[x]`, and gets revoked by the
//! next writer. [`WordStm::begin_ro`] instead returns an **invisible**
//! reader: each read walks the decided prefix of `Owner[x, ·]` with
//! non-proposing observers, adopts the value of the last decided-committed
//! owner, and records the version it stopped at; prior reads are
//! re-validated on every access (as in DSTM) and once more at commit — a
//! new decided-committed version past a recorded stop point aborts.
//! The reader proposes nothing, owns nothing, and aborts no peer, so no
//! `Owner` cell ever names it and its commit needs no `State` proposal at
//! all. Progress: a scan or validation step only repeats when some writer
//! decided another version in the interim, so read-only transactions are
//! lock-free (obstruction-free in particular, and abort-free while no
//! writer commits into their footprint) — but not wait-free: a
//! continuously growing owner chain can be chased unboundedly.
//! *Promotion* of plain transactions at commit is necessarily trivial —
//! only a transaction that performed no operations at all acquired
//! nothing — and that case skips the `State` proposal the same way.

use crate::registry::Registry;
use oftm_core::api::{TxError, TxResult, WordStm, WordTx};
use oftm_core::notify::CommitNotifier;
use oftm_core::reclaim::{GraceTracker, RetiredBlock, TxGrace};
use oftm_core::record::{fresh_base_id, Recorder};
use oftm_core::table::{VarTable, DYNAMIC_TVAR_BASE};
use oftm_foc::{CasFoc, FoConsensus, SplitterFoc};
use oftm_histories::{Access, BaseObjId, TVarId, TmOp, TmResp, TxId, Value};
use oftm_obs::{pack_tx, AbortCause, Counter, StmStats, VarAttr, TX_UNKNOWN};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Transaction fate values proposed to `State[T_k]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    Committed,
    Aborted,
}

/// Which fo-consensus implementation backs the `Owner` and `State` arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FocKind {
    /// CAS-backed (never aborts) — the practical configuration.
    Cas,
    /// Registers + one-shot test-and-set — the "consensus number 2
    /// objects only" configuration from the paper's introduction.
    SplitterTas,
}

/// A fo-consensus cell of either kind, with a base-object identity.
pub(crate) struct FocCell<T: Clone + Send + Sync + 'static> {
    foc: AnyFoc<T>,
    base: BaseObjId,
}

enum AnyFoc<T: Clone + Send + Sync + 'static> {
    Cas(CasFoc<T>),
    Splitter(SplitterFoc<T>),
}

impl<T: Clone + Send + Sync + 'static> FocCell<T> {
    fn new(kind: FocKind) -> Self {
        FocCell {
            foc: match kind {
                FocKind::Cas => AnyFoc::Cas(CasFoc::new()),
                FocKind::SplitterTas => AnyFoc::Splitter(SplitterFoc::new()),
            },
            base: fresh_base_id(),
        }
    }

    fn propose(&self, proc: u32, v: T) -> Option<T> {
        match &self.foc {
            AnyFoc::Cas(f) => f.propose(proc, v),
            AnyFoc::Splitter(f) => f.propose(proc, v),
        }
    }

    /// The decided value, if the cell has decided (non-proposing observer).
    fn decided(&self) -> Option<T>
    where
        T: Clone,
    {
        match &self.foc {
            AnyFoc::Cas(f) => f.decided().cloned(),
            AnyFoc::Splitter(f) => f.decided(),
        }
    }
}

/// A register cell with a base-object identity.
pub(crate) struct RegCell {
    val: AtomicU64,
    base: BaseObjId,
}

impl RegCell {
    fn new(v: u64) -> Self {
        RegCell {
            val: AtomicU64::new(v),
            base: fresh_base_id(),
        }
    }
}

/// A boolean register cell.
///
/// `by` is a **forensic stamp, not part of the algorithm**: the peer
/// that sets the flag records its own packed id first, so the victim's
/// `Aborted[Tk]` re-check can name who revoked it (the who-aborted-whom
/// edge). The model-checked protocol reads only `val`; racing setters
/// last-write-win on `by`, and any of them is a correct aggressor.
pub(crate) struct FlagCell {
    val: AtomicBool,
    by: AtomicU64,
    base: BaseObjId,
}

impl FlagCell {
    fn new() -> Self {
        FlagCell {
            val: AtomicBool::new(false),
            by: AtomicU64::new(TX_UNKNOWN),
            base: fresh_base_id(),
        }
    }
}

fn encode_tx(t: TxId) -> u64 {
    (u64::from(t.proc) << 32) | u64::from(t.seq)
}

fn decode_tx(v: u64) -> TxId {
    TxId::new((v >> 32) as u32, (v & 0xffff_ffff) as u32)
}

/// `V[x]` sentinel for ⊥ (no owner yet).
const V_BOTTOM: u64 = u64::MAX;

/// The Algorithm 2 STM instance.
pub struct Algo2Stm {
    kind: FocKind,
    /// `Owner[x, version]`.
    owner: Registry<(TVarId, u64), FocCell<u64>>,
    /// `State[T_k]`.
    state: Registry<TxId, FocCell<u8>>,
    /// `TVar[x, T_k]`.
    tvar: Registry<(TVarId, TxId), RegCell>,
    /// `Aborted[T_k]`.
    aborted: Registry<TxId, FlagCell>,
    /// `V[x]`.
    v: Registry<TVarId, RegCell>,
    /// Initial states of t-variables — also the allocation/liveness
    /// table. This is the one cell consulted on **every** acquire (the
    /// dynamic-id existence check), so it lives in the lock-free paged
    /// slab rather than a mutexed registry: the check is a wait-free
    /// array index, and allocation/free reuse the slab's exact
    /// live-count accounting.
    initial: VarTable<Value>,
    /// Scan memoization: per t-variable, `(version, state)` — every
    /// version `< version` is **decided** (fo-consensus decisions are
    /// immutable) and `state` is the value after the last committed owner
    /// among them, so an acquire may resume its version scan there
    /// instead of at 1. Pure optimization below the formal model (like
    /// [`Registry`]'s materialization lock): any fresh scan of the
    /// memoized prefix would compute exactly this pair. Without it, every
    /// (re)acquire rescans the whole chain, and under symmetric
    /// contention the combined rescan work — and the recorded steps —
    /// grow quadratically in the abort count, which is what used to wedge
    /// the 8-thread collection workloads.
    scan_hint: Registry<TVarId, parking_lot::Mutex<(u64, u64)>>,
    /// Grace-period tracker for [`WordTx::retire_tvar_block`]. Freeing a
    /// t-variable evicts its `initial`/`V` cells and every `Owner`/`TVar`
    /// cell keyed by it — the per-version residue footnote 6 of the paper
    /// otherwise accumulates forever.
    reclaim: GraceTracker,
    notify: CommitNotifier,
    tx_seq: AtomicU32,
    recorder: Option<Arc<Recorder>>,
    /// Always-on telemetry (begins/commits/aborts-by-cause, latency
    /// histograms). Algorithm 2 has no contention manager: peers race
    /// fo-consensus proposals instead, so its aborts land in the
    /// `cas_lost` (a propose lost to a peer) and `read_validation`
    /// (decided-chain/`V[x]`/`Aborted[Tk]` checks) buckets.
    stats: StmStats,
    /// Ablation switch: disables the paper's "essential implementation
    /// detail" #1 — the `Aborted[Tk]` re-check at the end of `acquire`.
    /// Exists only so tests can demonstrate *why* the paper calls it
    /// essential (a revoked transaction keeps observing state and can see
    /// inconsistent snapshots). Never enable outside tests.
    #[doc(hidden)]
    pub ablate_aborted_check: bool,
}

impl Algo2Stm {
    pub fn new(kind: FocKind) -> Self {
        Algo2Stm {
            kind,
            owner: Registry::new(),
            state: Registry::new(),
            tvar: Registry::new(),
            aborted: Registry::new(),
            v: Registry::new(),
            initial: VarTable::new(),
            scan_hint: Registry::new(),
            reclaim: GraceTracker::new(),
            notify: CommitNotifier::new(),
            tx_seq: AtomicU32::new(0),
            recorder: None,
            stats: StmStats::new(),
            ablate_aborted_check: false,
        }
    }

    /// The telemetry registry of this instance.
    pub fn stats(&self) -> &StmStats {
        &self.stats
    }

    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Space diagnostics: materialized (owner-cells, state-cells).
    pub fn cells(&self) -> (usize, usize) {
        (self.owner.len(), self.state.len())
    }

    fn state_cell(&self, t: TxId) -> Arc<FocCell<u8>> {
        self.state.get_or_create(&t, || FocCell::new(self.kind))
    }

    fn owner_cell(&self, x: TVarId, version: u64) -> Arc<FocCell<u64>> {
        self.owner
            .get_or_create(&(x, version), || FocCell::new(self.kind))
    }

    fn initial_of(&self, x: TVarId) -> u64 {
        self.initial
            .get(x)
            .map(|v| *v)
            .unwrap_or(oftm_histories::INITIAL_VALUE)
    }

    fn reclaim_after_commit(&self, grace: TxGrace, retired: Vec<RetiredBlock>) {
        let freeable = self.reclaim.retire_and_flush(grace, retired);
        if !freeable.is_empty() {
            // `free_tvar_block` below accounts the freed t-variables.
            self.stats.incr(Counter::GraceFlushes);
        }
        for blk in &freeable {
            self.free_tvar_block(blk.base, blk.len);
        }
    }
}

/// A live Algorithm 2 transaction `T_k`.
pub struct Algo2Tx<'s> {
    stm: &'s Algo2Stm,
    id: TxId,
    /// The write set `wset` (t-variables this transaction owns).
    wset: HashSet<TVarId>,
    /// Footprint log: every t-variable an access *attempted* to acquire,
    /// including the one a failing acquire gave up on (which `wset` never
    /// learns about) — what a parked re-run registers on.
    touched: Vec<TVarId>,
    /// Grace-period registration; dropped (slot released, retire-set
    /// discarded) on every path that does not commit.
    grace: Option<TxGrace>,
    retired: Vec<RetiredBlock>,
    completed: bool,
    /// Whether an abort cause has been recorded for this attempt (first
    /// tag wins; exactly one cause per aborted attempt).
    cause_tagged: bool,
}

impl<'s> Algo2Tx<'s> {
    /// Tags this attempt's abort cause (first tag wins) with its forensic
    /// attribution: the t-variable fought over (or [`VarAttr::NoVar`]) and
    /// the packed id of the aggressor, [`TX_UNKNOWN`] when no peer can be
    /// named.
    fn tag_abort(&mut self, cause: AbortCause, var: VarAttr, aggressor: u64) {
        if !self.cause_tagged {
            self.cause_tagged = true;
            self.stm
                .stats
                .abort_at(cause, var, pack_tx(self.id.proc, self.id.seq), aggressor);
        }
    }

    fn rstep(&self, obj: BaseObjId, access: Access) {
        if let Some(rec) = &self.stm.recorder {
            rec.step(self.id.process(), Some(self.id), obj, access);
        }
    }

    fn rinvoke(&self, op: TmOp) {
        if let Some(rec) = &self.stm.recorder {
            rec.invoke(self.id, op);
        }
    }

    fn rrespond(&self, resp: TmResp) {
        if let Some(rec) = &self.stm.recorder {
            rec.respond(self.id, resp);
        }
    }

    /// `procedure acquire(Tk, x)` — returns the current state of `x` or
    /// `A_k`.
    fn acquire(&mut self, x: TVarId) -> TxResult<Value> {
        // Dynamic ids must have been allocated and not yet freed; the lazy
        // registries would otherwise silently materialize fresh cells for
        // a reclaimed variable and hand back a default value. Static ids
        // keep the model's implicit-initial-value semantics.
        if x.0 >= DYNAMIC_TVAR_BASE && self.stm.initial.get(x).is_none() {
            panic!("t-variable {x} not registered");
        }
        let state = if !self.wset.contains(&x) {
            // version ← 1; state ← initial state of x; v ← V[x]
            // …resuming from the memoized decided prefix when one exists
            // (see `Algo2Stm::scan_hint`): a fresh scan of versions below
            // the hint would recompute exactly this `(version, state)`.
            let hint = self
                .stm
                .scan_hint
                .get_or_create(&x, || parking_lot::Mutex::new((1, self.stm.initial_of(x))));
            let (mut version, mut state) = *hint.lock();
            let v_cell = self.stm.v.get_or_create(&x, || RegCell::new(V_BOTTOM));
            // ord: Acquire pairs with owners' Release V[x] stores — the
            // wait-freedom guard re-reads this below.
            let v_snapshot = v_cell.val.load(Ordering::Acquire);
            self.rstep(v_cell.base, Access::Read);

            // repeat … until owner = Tk
            loop {
                let owner_cell = self.stm.owner_cell(x, version);
                let owner = owner_cell.propose(self.id.proc, encode_tx(self.id));
                self.rstep(owner_cell.base, Access::Modify);
                let owner = match owner {
                    None => {
                        // owner = ⊥: our Owner proposal lost outright. The
                        // consensus object names no winner, so no aggressor.
                        self.tag_abort(AbortCause::CasLost, VarAttr::Var(x.0), TX_UNKNOWN);
                        return Err(TxError::Aborted);
                    }
                    Some(o) => decode_tx(o),
                };
                if owner != self.id {
                    // s ← State[owner].propose(aborted)
                    let sc = self.stm.state_cell(owner);
                    let s = sc.propose(self.id.proc, Fate::Aborted as u8);
                    self.rstep(sc.base, Access::Modify);
                    match s {
                        None => {
                            // s = ⊥: the State proposal itself failed. The
                            // owner whose fate we tried to decide is the
                            // peer we lost to — `Owner[x, version]` names it.
                            self.tag_abort(
                                AbortCause::CasLost,
                                VarAttr::Var(x.0),
                                pack_tx(owner.proc, owner.seq),
                            );
                            return Err(TxError::Aborted);
                        }
                        Some(s) if s == Fate::Committed as u8 => {
                            // state ← TVar[x, owner]
                            let cell = self.stm.tvar.get_or_create(&(x, owner), || RegCell::new(0));
                            // ord: Acquire pairs with the owner's Release
                            // TVar store: Committed implies its tentative
                            // value is visible.
                            state = cell.val.load(Ordering::Acquire);
                            self.rstep(cell.base, Access::Read);
                        }
                        Some(_) => {
                            // Aborted[owner] ← true
                            let flag = self.stm.aborted.get_or_create(&owner, FlagCell::new);
                            // ord: Relaxed — forensic stamp, carries no
                            // payload; the Release `val` store below makes
                            // it visible to the victim's Acquire re-check.
                            flag.by.store(encode_tx(self.id), Ordering::Relaxed);
                            // ord: Release pairs with the owner's Acquire
                            // Aborted[Tk] re-check on its own paths.
                            flag.val.store(true, Ordering::Release);
                            self.rstep(flag.base, Access::Modify);
                        }
                    }
                    // `owner`'s fate and hence version `version` are now
                    // decided forever: advance the shared hint (monotonic;
                    // concurrent scanners agree on decided prefixes).
                    let mut h = hint.lock();
                    if version + 1 > h.0 {
                        *h = (version + 1, state);
                    }
                }
                // if V[x] ≠ v then return Ak  (wait-freedom guard)
                // ord: Acquire pairs with owners' Release V[x] stores.
                let now = v_cell.val.load(Ordering::Acquire);
                self.rstep(v_cell.base, Access::Read);
                if now != v_snapshot {
                    // The V[x] change check: our snapshot of the variable
                    // is stale (the paper's wait-freedom guard). The new
                    // V[x] value encodes the peer that acquired past us.
                    let aggressor = if now == V_BOTTOM { TX_UNKNOWN } else { now };
                    self.tag_abort(AbortCause::ReadValidation, VarAttr::Var(x.0), aggressor);
                    return Err(TxError::Aborted);
                }
                version += 1;
                if owner == self.id {
                    break;
                }
            }

            // wset ← wset ∪ {x}; TVar[x,Tk] ← state; V[x] ← Tk
            self.wset.insert(x);
            let own_cell = self
                .stm
                .tvar
                .get_or_create(&(x, self.id), || RegCell::new(0));
            // ord: Release TVar store before Release V[x] store — a peer
            // that Acquires V[x] = Tk sees our tentative state.
            own_cell.val.store(state, Ordering::Release);
            self.rstep(own_cell.base, Access::Modify);
            v_cell.val.store(encode_tx(self.id), Ordering::Release);
            self.rstep(v_cell.base, Access::Modify);
            state
        } else {
            // state ← TVar[x, Tk]
            let cell = self
                .stm
                .tvar
                .get_or_create(&(x, self.id), || RegCell::new(0));
            // ord: Acquire — own cell; Acquire keeps the read ordered
            // after the ownership steps that created it.
            let s = cell.val.load(Ordering::Acquire);
            self.rstep(cell.base, Access::Read);
            s
        };

        // if Aborted[Tk] then return Ak  ("essential detail" #1)
        if !self.stm.ablate_aborted_check {
            let flag = self.stm.aborted.get_or_create(&self.id, FlagCell::new);
            // ord: Acquire pairs with peers' Release Aborted[Tk] stores.
            let dead = flag.val.load(Ordering::Acquire);
            self.rstep(flag.base, Access::Read);
            if dead {
                // Aborted[Tk]: a peer revoked one of our ownerships and
                // the final re-check stops us — a stale-state abort. The
                // setter stamped its id on the flag before the Release
                // store, so the edge names who revoked us; the variable
                // is whichever acquire tripped the re-check.
                // ord: Relaxed — forensic stamp, carries no payload; the
                // Acquire `val` load above ordered it.
                let by = flag.by.load(Ordering::Relaxed);
                self.tag_abort(AbortCause::ReadValidation, VarAttr::Var(x.0), by);
                return Err(TxError::Aborted);
            }
        }
        // Re-check existence on the way out: a free racing this acquire
        // (possible only when the caller broke the retire contract — the
        // grace tracker never frees under a registered transaction) must
        // surface as the uniform panic, not as a default value from cells
        // the lazy registries re-materialized above.
        if x.0 >= DYNAMIC_TVAR_BASE && self.stm.initial.get(x).is_none() {
            panic!("t-variable {x} not registered");
        }
        Ok(state)
    }
}

impl WordTx for Algo2Tx<'_> {
    fn id(&self) -> TxId {
        self.id
    }

    /// `upon read of t-variable x by Tk do return acquire(Tk, x)`.
    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.touched.push(x);
        self.rinvoke(TmOp::Read(x));
        let r = self.acquire(x);
        match &r {
            Ok(v) => self.rrespond(TmResp::Value(*v)),
            Err(_) => {
                self.completed = true;
                self.rrespond(TmResp::Aborted);
            }
        }
        r
    }

    /// `upon write of value v to t-variable x by Tk`.
    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        self.touched.push(x);
        self.rinvoke(TmOp::Write(x, v));
        match self.acquire(x) {
            Err(e) => {
                self.completed = true;
                self.rrespond(TmResp::Aborted);
                Err(e)
            }
            Ok(_s) => {
                // TVar[x, Tk] ← v
                let cell = self
                    .stm
                    .tvar
                    .get_or_create(&(x, self.id), || RegCell::new(0));
                // ord: Release publishes the tentative value to peers'
                // Acquire TVar reads after our fate is decided.
                cell.val.store(v, Ordering::Release);
                self.rstep(cell.base, Access::Modify);
                self.rrespond(TmResp::Ok);
                Ok(())
            }
        }
    }

    /// `upon tryCk: s ← State[Tk].propose(committed)`.
    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        self.rinvoke(TmOp::TryCommit);
        self.completed = true;
        // Trivial promotion: a transaction that attempted no operation
        // acquired nothing, so no `Owner` cell names it and no peer can
        // ever propose to its `State` — deciding the cell is pure
        // overhead. (Anything that *read* acquired, and must still settle
        // its fate below for the scanners that will find it.)
        if self.wset.is_empty() && self.touched.is_empty() {
            self.stm.stats.incr(Counter::CommitsPromoted);
            self.rrespond(TmResp::Committed);
            self.stm.reclaim_after_commit(
                self.grace.take().expect("grace slot held until completion"),
                std::mem::take(&mut self.retired),
            );
            return Ok(());
        }
        // The commit critical section of Algorithm 2 is the single fate
        // proposal to our own State cell.
        let cs_started = Instant::now();
        let sc = self.stm.state_cell(self.id);
        let s = sc.propose(self.id.proc, Fate::Committed as u8);
        self.rstep(sc.base, Access::Modify);
        self.stm
            .stats
            .record_commit_cs_ns(cs_started.elapsed().as_nanos() as u64);
        match s {
            Some(v) if v == Fate::Committed as u8 => {
                self.stm.stats.incr(Counter::Commits);
                self.rrespond(TmResp::Committed);
                // Every acquired variable gained a decided version owned
                // by us (reads acquire too in Algorithm 2): publish the
                // whole wset — any parked peer conflicting on it can now
                // make progress.
                self.stm.notify.publish(self.wset.iter().copied());
                self.stm.reclaim_after_commit(
                    self.grace.take().expect("grace slot held until completion"),
                    std::mem::take(&mut self.retired),
                );
                Ok(())
            }
            _ => {
                // A peer decided our State `aborted` before our own
                // `committed` proposal: the fate race was lost. The State
                // cell records the verdict, not the proposer, and the
                // contested variable is unrecoverable — but the peer also
                // stamps `Aborted[Tk].by` right after deciding us, so a
                // best-effort aggressor is often readable (TX_UNKNOWN
                // when the stamp hasn't landed yet).
                // ord: Relaxed — forensic stamp, carries no payload.
                let by = self
                    .stm
                    .aborted
                    .get_or_create(&self.id, FlagCell::new)
                    .by
                    .load(Ordering::Relaxed);
                self.tag_abort(AbortCause::CasLost, VarAttr::NoVar, by);
                self.rrespond(TmResp::Aborted);
                Err(TxError::Aborted)
            }
        }
    }

    /// `upon tryAk: return Ak` — and make the abort durable so peers stop
    /// scanning our versions (propose `aborted` to our own State).
    fn try_abort(mut self: Box<Self>) {
        self.rinvoke(TmOp::TryAbort);
        self.completed = true;
        let sc = self.stm.state_cell(self.id);
        let _ = sc.propose(self.id.proc, Fate::Aborted as u8);
        self.rstep(sc.base, Access::Modify);
        // tryA on a still-viable attempt is an explicit retry; if a cause
        // was already tagged, the attempt was dead anyway.
        self.tag_abort(AbortCause::ExplicitRetry, VarAttr::NoVar, TX_UNKNOWN);
        self.rrespond(TmResp::Aborted);
        // Dropping `grace` releases the reclamation slot; the retire-set
        // is discarded with the transaction.
    }

    fn retire_tvar_block(&mut self, base: TVarId, len: usize) {
        self.retired.push(RetiredBlock { base, len });
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend_from_slice(&self.touched);
    }
}

impl Drop for Algo2Tx<'_> {
    fn drop(&mut self) {
        // A transaction abandoned without tryC/tryA must not stay live
        // forever (its ownerships would still be revocable, but settling
        // the State cell immediately is tidier).
        if !self.completed {
            let sc = self.stm.state_cell(self.id);
            let _ = sc.propose(self.id.proc, Fate::Aborted as u8);
            self.tag_abort(AbortCause::ExplicitRetry, VarAttr::NoVar, TX_UNKNOWN);
        }
    }
}

/// An invisible read-only transaction (see the module docs): walks decided
/// owner chains with non-proposing observers, never acquires, never aborts
/// a peer, and commits without touching any `State` cell.
pub struct Algo2RoTx<'s> {
    stm: &'s Algo2Stm,
    id: TxId,
    /// Invisible read-set: `(x, stop_version, value)` — versions below
    /// `stop_version` were decided when the read returned and `value` is
    /// the state after the last decided-committed owner among them.
    reads: Vec<(TVarId, u64, Value)>,
    /// Conflict hint for the async runtime's parking.
    touched: Vec<TVarId>,
    /// Grace-period registration: an invisible reader traverses values it
    /// adopted from committed owners, so retire-sets published while it
    /// runs must not be freed under it.
    grace: Option<TxGrace>,
    completed: bool,
    cause_tagged: bool,
}

impl<'s> Algo2RoTx<'s> {
    fn rstep(&self, obj: BaseObjId, access: Access) {
        if let Some(rec) = &self.stm.recorder {
            rec.step(self.id.process(), Some(self.id), obj, access);
        }
    }

    fn rinvoke(&self, op: TmOp) {
        if let Some(rec) = &self.stm.recorder {
            rec.invoke(self.id, op);
        }
    }

    fn rrespond(&self, resp: TmResp) {
        if let Some(rec) = &self.stm.recorder {
            rec.respond(self.id, resp);
        }
    }

    fn exists(&self, x: TVarId) {
        if x.0 >= DYNAMIC_TVAR_BASE && self.stm.initial.get(x).is_none() {
            panic!("t-variable {x} not registered");
        }
    }

    /// Walks the decided prefix of `Owner[x, ·]` without proposing and
    /// returns `(stop_version, state)`: the first version with no decided
    /// committed-or-aborted owner, and the value after the last
    /// decided-committed owner below it.
    fn scan_committed(&self, x: TVarId) -> (u64, Value) {
        let hint = self
            .stm
            .scan_hint
            .get_or_create(&x, || parking_lot::Mutex::new((1, self.stm.initial_of(x))));
        let (mut version, mut state) = *hint.lock();
        loop {
            let Some(cell) = self.stm.owner.get(&(x, version)) else {
                break;
            };
            self.rstep(cell.base, Access::Read);
            let Some(owner) = cell.decided() else {
                break;
            };
            let owner = decode_tx(owner);
            let sc = self.stm.state_cell(owner);
            self.rstep(sc.base, Access::Read);
            match sc.decided() {
                Some(s) if s == Fate::Committed as u8 => {
                    let tv = self.stm.tvar.get_or_create(&(x, owner), || RegCell::new(0));
                    // ord: Acquire pairs with the committed owner's Release
                    // TVar store.
                    state = tv.val.load(Ordering::Acquire);
                    self.rstep(tv.base, Access::Read);
                }
                // Aborted owner: this version changes nothing.
                Some(_) => {}
                // Live owner: its tentative value is not committed — the
                // decided prefix ends here.
                None => break,
            }
            // Version `version` is now decided forever: advance the shared
            // hint under the same monotonic rule `acquire` uses.
            let mut h = hint.lock();
            if version + 1 > h.0 {
                *h = (version + 1, state);
            }
            drop(h);
            version += 1;
        }
        (version, state)
    }

    /// A recorded read `(x, stop, _)` is still current iff no decided-
    /// committed version at or past `stop` has appeared since. Returns the
    /// first invalidated read as `(x, committed_owner)`: the owner is the
    /// peer whose commit broke the snapshot — exactly the aggressor of the
    /// who-aborted-whom edge this abort will record.
    fn first_invalid(&self) -> Option<(TVarId, TxId)> {
        for &(x, stop, _) in &self.reads {
            let mut version = stop;
            loop {
                let Some(cell) = self.stm.owner.get(&(x, version)) else {
                    break;
                };
                self.rstep(cell.base, Access::Read);
                let Some(owner) = cell.decided() else {
                    break;
                };
                let owner = decode_tx(owner);
                let sc = self.stm.state_cell(owner);
                self.rstep(sc.base, Access::Read);
                match sc.decided() {
                    Some(s) if s == Fate::Committed as u8 => return Some((x, owner)),
                    Some(_) => version += 1,
                    None => break,
                }
            }
        }
        None
    }
}

impl WordTx for Algo2RoTx<'_> {
    fn id(&self) -> TxId {
        self.id
    }

    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.touched.push(x);
        self.rinvoke(TmOp::Read(x));
        self.exists(x);
        // A re-read must return the snapshot value already recorded (the
        // entry is covered by validation), not rescan a possibly-advanced
        // chain.
        if let Some(&(_, _, v)) = self.reads.iter().find(|&&(rx, _, _)| rx == x) {
            self.rrespond(TmResp::Value(v));
            return Ok(v);
        }
        let (stop, state) = self.scan_committed(x);
        self.exists(x);
        self.reads.push((x, stop, state));
        // Incremental validation, as in DSTM: every access re-checks the
        // whole read-set so a live read-only transaction never observes a
        // torn snapshot (opacity, not just commit-time serializability).
        if let Some((vx, owner)) = self.first_invalid() {
            if !self.cause_tagged {
                self.cause_tagged = true;
                self.stm.stats.abort_at(
                    AbortCause::ReadValidation,
                    VarAttr::Var(vx.0),
                    pack_tx(self.id.proc, self.id.seq),
                    pack_tx(owner.proc, owner.seq),
                );
            }
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }
        self.rrespond(TmResp::Value(state));
        Ok(state)
    }

    fn write(&mut self, _x: TVarId, _v: Value) -> TxResult<()> {
        panic!("algo2: write on a declared read-only transaction");
    }

    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        self.rinvoke(TmOp::TryCommit);
        self.completed = true;
        // No peer ever learned of this transaction (it proposed nothing),
        // so there is no `State` cell to decide: the final validation is
        // the commit.
        if let Some((vx, owner)) = self.first_invalid() {
            if !self.cause_tagged {
                self.cause_tagged = true;
                self.stm.stats.abort_at(
                    AbortCause::ReadValidation,
                    VarAttr::Var(vx.0),
                    pack_tx(self.id.proc, self.id.seq),
                    pack_tx(owner.proc, owner.seq),
                );
            }
            self.rrespond(TmResp::Aborted);
            Err(TxError::Aborted)
        } else {
            self.stm.stats.incr(Counter::CommitsRo);
            self.rrespond(TmResp::Committed);
            self.stm.reclaim_after_commit(
                self.grace.take().expect("grace slot held until completion"),
                Vec::new(),
            );
            Ok(())
        }
    }

    fn try_abort(mut self: Box<Self>) {
        self.rinvoke(TmOp::TryAbort);
        self.completed = true;
        if !self.cause_tagged {
            self.cause_tagged = true;
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                pack_tx(self.id.proc, self.id.seq),
                TX_UNKNOWN,
            );
        }
        self.rrespond(TmResp::Aborted);
        self.grace.take();
    }

    fn retire_tvar_block(&mut self, _base: TVarId, _len: usize) {
        panic!("algo2: retire on a declared read-only transaction");
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend_from_slice(&self.touched);
    }
}

impl Drop for Algo2RoTx<'_> {
    fn drop(&mut self) {
        if !self.completed && !self.cause_tagged {
            self.cause_tagged = true;
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                pack_tx(self.id.proc, self.id.seq),
                TX_UNKNOWN,
            );
        }
    }
}

impl WordStm for Algo2Stm {
    fn name(&self) -> &'static str {
        match self.kind {
            FocKind::Cas => "algo2-cas",
            FocKind::SplitterTas => "algo2-splitter",
        }
    }

    fn register_tvar(&self, x: TVarId, initial: Value) {
        // Atomic keep-first semantics (re-registration must not reset
        // state the version scans already adopted), like the
        // `Registry::get_or_create` this replaced.
        self.stats.incr(Counter::TvarsAllocated);
        self.initial.insert_if_absent(x, initial);
    }

    fn alloc_tvar_block(&self, initials: &[Value]) -> TVarId {
        self.stats
            .add(Counter::TvarsAllocated, initials.len() as u64);
        self.initial.alloc_block(initials, |_, v| v)
    }

    fn free_tvar_block(&self, base: TVarId, len: usize) {
        self.stats.add(Counter::TvarsFreed, len as u64);
        self.initial.remove_block(base, len);
        for k in 0..len {
            let x = TVarId(base.0 + k as u64);
            self.v.remove(&x);
            self.scan_hint.remove(&x);
            // `Owner[x, ·]` cells are materialized by version scans, which
            // probe versions contiguously from 1 — so walk-and-remove
            // until the first miss covers them all, in O(chain) with
            // per-key removals instead of an O(registry) sweep. Each
            // decided owner names the one transaction that may have a
            // `TVar[x, T]` cell (only winners write it); evict that too.
            let mut version = 1u64;
            while let Some(cell) = self.owner.get(&(x, version)) {
                if let Some(winner) = cell.decided() {
                    self.tvar.remove(&(x, decode_tx(winner)));
                }
                self.owner.remove(&(x, version));
                version += 1;
            }
        }
    }

    fn live_tvars(&self) -> usize {
        self.initial.len()
    }

    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        // ord: Relaxed — atomicity alone keeps transaction ids unique.
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        Box::new(Algo2Tx {
            stm: self,
            id: TxId::new(proc, seq),
            wset: HashSet::new(),
            touched: Vec::new(),
            grace: Some(self.reclaim.begin()),
            retired: Vec::new(),
            completed: false,
            cause_tagged: false,
        })
    }

    fn begin_ro(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        self.stats.incr(Counter::BeginsRo);
        // ord: Relaxed — atomicity alone keeps transaction ids unique.
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        Box::new(Algo2RoTx {
            stm: self,
            id: TxId::new(proc, seq),
            reads: Vec::new(),
            touched: Vec::new(),
            grace: Some(self.reclaim.begin()),
            completed: false,
            cause_tagged: false,
        })
    }

    fn notifier(&self) -> &CommitNotifier {
        &self.notify
    }

    fn stats(&self) -> &StmStats {
        &self.stats
    }

    fn is_obstruction_free(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::api::run_transaction;

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn stm(kind: FocKind) -> Algo2Stm {
        let s = Algo2Stm::new(kind);
        s.register_tvar(X, 10);
        s.register_tvar(Y, 20);
        s
    }

    #[test]
    fn tx_encoding_roundtrip() {
        let t = TxId::new(7, 99);
        assert_eq!(decode_tx(encode_tx(t)), t);
    }

    #[test]
    fn read_initial_values() {
        for kind in [FocKind::Cas, FocKind::SplitterTas] {
            let s = stm(kind);
            let mut tx = s.begin(0);
            assert_eq!(tx.read(X).unwrap(), 10);
            assert_eq!(tx.read(Y).unwrap(), 20);
            tx.try_commit().unwrap();
        }
    }

    #[test]
    fn write_visible_after_commit_only() {
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        t1.write(X, 99).unwrap();
        // Concurrent T2 must abort T1 (revocable ownership) and read the
        // old value.
        let mut t2 = s.begin(1);
        assert_eq!(t2.read(X).unwrap(), 10);
        t2.try_commit().unwrap();
        // T1 is now doomed.
        assert!(t1.try_commit().is_err());
        // A fresh reader still sees 10.
        let mut t3 = s.begin(2);
        assert_eq!(t3.read(X).unwrap(), 10);
        t3.try_commit().unwrap();
    }

    #[test]
    fn committed_write_becomes_current_state() {
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        t1.write(X, 42).unwrap();
        t1.try_commit().unwrap();
        let mut t2 = s.begin(1);
        assert_eq!(t2.read(X).unwrap(), 42);
        t2.try_commit().unwrap();
    }

    #[test]
    fn read_own_write() {
        let s = stm(FocKind::Cas);
        let mut tx = s.begin(0);
        tx.write(X, 5).unwrap();
        assert_eq!(tx.read(X).unwrap(), 5);
        tx.try_commit().unwrap();
    }

    #[test]
    fn reads_acquire_ownership_too() {
        // In Algorithm 2 a read acquires the variable (acquire is used for
        // both): a later writer aborts the reader.
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        assert_eq!(t1.read(X).unwrap(), 10);
        let mut t2 = s.begin(1);
        t2.write(X, 7).unwrap();
        t2.try_commit().unwrap();
        assert!(t1.try_commit().is_err());
    }

    #[test]
    fn try_abort_discards() {
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        t1.write(X, 77).unwrap();
        t1.try_abort();
        let mut t2 = s.begin(1);
        assert_eq!(t2.read(X).unwrap(), 10);
        t2.try_commit().unwrap();
    }

    #[test]
    fn forcefully_aborted_tx_sees_abort_on_next_access() {
        // "Essential detail" #1: the Aborted[Tk] re-check.
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        t1.write(X, 1).unwrap();
        let mut t2 = s.begin(1);
        t2.write(X, 2).unwrap(); // aborts T1, sets Aborted[T1]? (T1 learns on next access)
                                 // T1 touches a *different* variable — must still observe its abort
                                 // no later than the commit attempt.
        let r = t1.write(Y, 3);
        let doomed = r.is_err() || t1.try_commit().is_err();
        assert!(doomed, "forcefully aborted T1 must not commit");
        t2.try_commit().unwrap();
    }

    #[test]
    fn version_scan_adopts_committed_values() {
        // Multiple committed owners in sequence: a late reader scans
        // versions 1..n and must end with the last committed value.
        let s = stm(FocKind::Cas);
        for (p, v) in [(0u32, 100u64), (1, 200), (2, 300)] {
            let (_, attempts) = run_transaction(&s, p, |tx| tx.write(X, v));
            assert_eq!(attempts, 1);
        }
        let mut t = s.begin(3);
        assert_eq!(t.read(X).unwrap(), 300);
        t.try_commit().unwrap();
        let (owners, _) = s.cells();
        assert!(owners >= 3, "one Owner cell per version, got {owners}");
    }

    #[test]
    fn concurrent_counter_linearizes() {
        for kind in [FocKind::Cas, FocKind::SplitterTas] {
            let s = Arc::new(stm(kind));
            std::thread::scope(|sc| {
                for p in 0..4u32 {
                    let s = Arc::clone(&s);
                    sc.spawn(move || {
                        for _ in 0..50 {
                            run_transaction(&*s, p, |tx| {
                                let v = tx.read(X)?;
                                tx.write(X, v + 1)
                            });
                        }
                    });
                }
            });
            let mut t = s.begin(9);
            assert_eq!(t.read(X).unwrap(), 10 + 4 * 50, "kind {kind:?}");
            t.try_commit().unwrap();
        }
    }

    #[test]
    fn recorded_history_is_serializable_and_of() {
        let rec = Arc::new(Recorder::new());
        let s = Algo2Stm::new(FocKind::Cas).with_recorder(Arc::clone(&rec));
        s.register_tvar(X, 0);
        s.register_tvar(Y, 0);
        std::thread::scope(|sc| {
            for p in 0..3u32 {
                let s = &s;
                sc.spawn(move || {
                    for _ in 0..5 {
                        run_transaction(s, p, |tx| {
                            let v = tx.read(X)?;
                            tx.write(Y, v + 1)?;
                            tx.write(X, v + 1)
                        });
                    }
                });
            }
        });
        let h = rec.snapshot();
        assert!(
            oftm_histories::conflict_serializable(&h),
            "Algorithm 2 run must be (conflict-)serializable"
        );
        // Obstruction-freedom (Definition 2): every forcefully aborted
        // transaction encountered step contention.
        let violations = oftm_histories::check_of(&h);
        assert!(violations.is_empty(), "OF violations: {violations:?}");
    }

    #[test]
    fn ablation_aborted_check_is_essential() {
        // The paper: "this is to ensure that Tk completes as soon as
        // possible after Tk loses an ownership". Without the check, a
        // revoked transaction keeps reading and can observe a snapshot
        // inconsistent with its earlier reads (an opacity violation for
        // the live transaction); with the check it aborts instead.

        // With the check (faithful algorithm): T1's next access aborts.
        let s = stm(FocKind::Cas);
        let mut t1 = s.begin(0);
        assert_eq!(t1.read(X).unwrap(), 10);
        let mut t2 = s.begin(1);
        t2.write(X, 111).unwrap();
        t2.write(Y, 222).unwrap();
        t2.try_commit().unwrap();
        assert!(
            t1.read(Y).is_err(),
            "faithful Algorithm 2 must stop T1 at its next access"
        );

        // Ablated: T1 reads on and sees the torn snapshot {x=10, y=222}.
        let mut s = stm(FocKind::Cas);
        s.ablate_aborted_check = true;
        let mut t1 = s.begin(0);
        assert_eq!(t1.read(X).unwrap(), 10);
        let mut t2 = s.begin(1);
        t2.write(X, 111).unwrap();
        t2.write(Y, 222).unwrap();
        t2.try_commit().unwrap();
        let y = t1.read(Y).expect("ablated T1 keeps going");
        assert_eq!(
            y, 222,
            "ablated T1 observes y after T2 while having read x before T2 — \
             exactly the inconsistency the Aborted[Tk] check prevents"
        );
        // Safety net: T1 still cannot commit (State[T1] is decided).
        assert!(t1.try_commit().is_err());
    }

    #[test]
    fn ro_adopts_committed_chain() {
        let s = stm(FocKind::Cas);
        for (p, v) in [(0u32, 100u64), (1, 200), (2, 300)] {
            let (_, attempts) = run_transaction(&s, p, |tx| tx.write(X, v));
            assert_eq!(attempts, 1);
        }
        let mut t = s.begin_ro(3);
        assert_eq!(t.read(X).unwrap(), 300);
        assert_eq!(t.read(Y).unwrap(), 20);
        t.try_commit().unwrap();
    }

    #[test]
    fn ro_reader_is_invisible_to_writers() {
        // A plain reader acquires and would be revoked by the next writer;
        // the invisible reader must neither abort a live writer nor be
        // aborted by committing around it — it sees the committed prefix.
        let s = stm(FocKind::Cas);
        let mut w = s.begin(0);
        w.write(X, 99).unwrap(); // live owner of X's next version
        let mut r = s.begin_ro(1);
        assert_eq!(r.read(X).unwrap(), 10, "tentative value must be invisible");
        r.try_commit().unwrap();
        // The writer was not aborted by the read-only scan.
        w.try_commit().unwrap();
        let mut t = s.begin_ro(2);
        assert_eq!(t.read(X).unwrap(), 99);
        t.try_commit().unwrap();
    }

    #[test]
    fn ro_torn_snapshot_aborts_on_next_access() {
        // Incremental validation: a commit landing between two reads of a
        // multi-variable snapshot aborts the reader at its next access.
        let s = stm(FocKind::Cas);
        let mut r = s.begin_ro(0);
        assert_eq!(r.read(X).unwrap(), 10);
        let mut w = s.begin(1);
        w.write(X, 111).unwrap();
        w.write(Y, 222).unwrap();
        w.try_commit().unwrap();
        assert_eq!(r.read(Y), Err(TxError::Aborted));
    }

    #[test]
    fn ro_stale_read_aborts_at_commit() {
        let s = stm(FocKind::Cas);
        let mut r = s.begin_ro(0);
        assert_eq!(r.read(X).unwrap(), 10);
        let (_, _) = run_transaction(&s, 1, |tx| tx.write(X, 11));
        assert_eq!(r.try_commit(), Err(TxError::Aborted));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn ro_write_panics() {
        let s = stm(FocKind::Cas);
        let mut tx = s.begin_ro(0);
        let _ = tx.write(X, 1);
    }

    #[test]
    fn two_var_invariant() {
        let s = Arc::new(stm(FocKind::Cas));
        // X starts 10, Y starts 20; preserve X+Y = 30.
        std::thread::scope(|sc| {
            for p in 0..3u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..30u64 {
                        let d = i % 5;
                        run_transaction(&*s, p, |tx| {
                            let x = tx.read(X)?;
                            let y = tx.read(Y)?;
                            if x >= d {
                                tx.write(X, x - d)?;
                                tx.write(Y, y + d)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let (total, _) = run_transaction(&*s, 7, |tx| Ok(tx.read(X)? + tx.read(Y)?));
        assert_eq!(total, 30);
    }
}
