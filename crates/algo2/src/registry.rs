//! Lazily materialized unbounded arrays.
//!
//! Algorithm 2 uses unbounded arrays of fo-consensus objects and registers
//! (`Owner[x, version]`, `State[T_k]`, `TVar[x, T_k]`, `Aborted[T_k]`,
//! `V[x]`) — footnote 6 of the paper acknowledges the unbounded memory. We
//! materialize cells on first touch from a mutex-protected map. The mutex
//! is *allocation-level* machinery below the formal model: the base
//! objects the algorithm's steps act on are the returned cells themselves
//! (each gets a fresh `BaseObjId`); creating a cell is not a step of the
//! algorithm. OS threads do not crash while holding the (tiny) critical
//! section, so the implementation-level lock does not affect the progress
//! properties under study; the step-accurate, lock-free rendition of
//! Algorithm 2 lives in `oftm-sim`.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// A concurrent, append-only `K → Arc<V>` table with create-on-first-use.
pub struct Registry<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
}

impl<K: Eq + Hash + Clone, V> Registry<K, V> {
    pub fn new() -> Self {
        Registry {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the cell for `k`, creating it with `init` if absent.
    pub fn get_or_create(&self, k: &K, init: impl FnOnce() -> V) -> Arc<V> {
        let mut m = self.map.lock();
        if let Some(v) = m.get(k) {
            return Arc::clone(v);
        }
        let v = Arc::new(init());
        m.insert(k.clone(), Arc::clone(&v));
        v
    }

    /// Returns the cell for `k` if it was ever created.
    pub fn get(&self, k: &K) -> Option<Arc<V>> {
        self.map.lock().get(k).map(Arc::clone)
    }

    /// Removes the cell for `k`; `true` if it was present. Outstanding
    /// `Arc` handles keep the cell alive; only the registry's reference is
    /// dropped. T-variable reclamation uses this per key (the freed
    /// variable's contiguous `Owner` versions and its winners' `TVar`
    /// cells), keeping eviction O(chain) rather than O(registry).
    pub fn remove(&self, k: &K) -> bool {
        self.map.lock().remove(k).is_some()
    }

    /// Number of materialized cells (diagnostics: the paper's unbounded
    /// space, measured).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + Clone, V> Default for Registry<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn create_once_then_share() {
        let r: Registry<u32, AtomicU64> = Registry::new();
        let a = r.get_or_create(&1, || AtomicU64::new(7));
        let b = r.get_or_create(&1, || AtomicU64::new(999));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.load(Ordering::Relaxed), 7);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn get_absent_is_none() {
        let r: Registry<u32, u64> = Registry::new();
        assert!(r.get(&5).is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn remove_evicts() {
        let r: Registry<(u32, u32), u64> = Registry::new();
        for k in 0..4 {
            r.get_or_create(&(k, 0), || u64::from(k));
        }
        assert!(r.remove(&(0, 0)));
        assert!(!r.remove(&(0, 0)), "removal is idempotent");
        assert_eq!(r.len(), 3);
        assert!(r.get(&(0, 0)).is_none());
        assert!(r.get(&(1, 0)).is_some());
    }

    #[test]
    fn concurrent_creation_is_consistent() {
        let r: Registry<u32, AtomicU64> = Registry::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let r = &r;
                s.spawn(move || {
                    for k in 0..100u32 {
                        let cell = r.get_or_create(&k, || AtomicU64::new(0));
                        cell.fetch_add(t, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(r.len(), 100);
        let expect: u64 = (0..8).sum();
        for k in 0..100u32 {
            assert_eq!(r.get(&k).unwrap().load(Ordering::Relaxed), expect);
        }
    }
}
