//! Abort-cause exactness for TL2: each deterministically forced conflict
//! must increment its one documented cause counter exactly once, with
//! every other cause bucket untouched (the taxonomy is a partition —
//! sibling of the DSTM tests in `oftm-core/tests/cm_forced_conflict.rs`).

use oftm_baselines::tl2::Tl2Stm;
use oftm_core::api::WordStm;
use oftm_histories::TVarId;
use oftm_obs::{AbortCause, Counter, StatsSnapshot};

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn stm() -> Tl2Stm {
    let s = Tl2Stm::new();
    s.register_tvar(X, 0);
    s.register_tvar(Y, 0);
    s
}

fn assert_only_cause(delta: &StatsSnapshot, expected: AbortCause, n: u64) {
    for &cause in oftm_obs::ABORT_CAUSES {
        let want = if cause == expected { n } else { 0 };
        assert_eq!(
            delta.get(cause.counter()),
            want,
            "cause {} moved unexpectedly (wanted {expected:?} × {n})",
            cause.name()
        );
    }
    assert_eq!(delta.aborts(), n, "derived abort total");
}

/// Forced too-new read: a transaction begun before a peer's commit must
/// reject the newer stamp at read time — TL2's snapshot check proper,
/// tagged `read_validation` once (the doomed commit afterwards may not
/// re-tag).
#[test]
fn too_new_read_tags_read_validation_exactly_once() {
    let s = stm();
    let before = s.stats().snapshot();

    let mut stale = s.begin(0); // read snapshot taken here, all shards at 0
    let mut writer = s.begin(1);
    writer.write(X, 9).expect("buffered write cannot fail");
    writer.try_commit().expect("unopposed writer commits");
    assert!(stale.read(X).is_err(), "TL2 must reject the too-new stamp");
    // The transaction is dead; its commit fails without a second tag.
    assert!(stale.try_commit().is_err());

    let delta = s.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ReadValidation, 1);
    assert_eq!(delta.get(Counter::Begins), 2);
    assert_eq!(delta.get(Counter::Commits), 1, "only the writer committed");
}

/// Forced commit-time validation failure: the read was clean when taken,
/// but a peer commits a newer version before our own commit — the
/// write-back validation pass must abort us, tagged `read_validation`
/// exactly once.
#[test]
fn stale_read_set_at_commit_tags_read_validation_exactly_once() {
    let s = stm();
    let before = s.stats().snapshot();

    let mut t1 = s.begin(0);
    assert_eq!(t1.read(X).expect("clean first read"), 0);
    t1.write(Y, 1).expect("buffered write cannot fail");
    let mut t2 = s.begin(1);
    t2.write(X, 7).expect("buffered write cannot fail");
    t2.try_commit().expect("unopposed writer commits");
    assert!(
        t1.try_commit().is_err(),
        "commit validation must catch the invalidated read set"
    );

    let delta = s.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ReadValidation, 1);
    assert_eq!(delta.get(Counter::Commits), 1, "only t2 committed");
}

/// A voluntary `tryA` on a live transaction is an `explicit_retry` —
/// exactly one, with every conflict bucket untouched.
#[test]
fn voluntary_abort_tags_explicit_retry_exactly_once() {
    let s = stm();
    let before = s.stats().snapshot();

    let mut tx = s.begin(0);
    assert_eq!(tx.read(X).expect("clean read"), 0);
    tx.try_abort();

    let delta = s.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ExplicitRetry, 1);
    assert_eq!(delta.get(Counter::Begins), 1);
    assert_eq!(delta.all_commits(), 0);
}

/// Dropping a live transaction without finishing it counts as an
/// abandonment, not a conflict: `explicit_retry`, once.
#[test]
fn dropped_live_transaction_tags_explicit_retry_exactly_once() {
    let s = stm();
    let before = s.stats().snapshot();

    let mut tx = s.begin(0);
    tx.write(X, 1).expect("buffered write cannot fail");
    drop(tx);

    let delta = s.stats().snapshot().since(&before);
    assert_only_cause(&delta, AbortCause::ExplicitRetry, 1);
    assert_eq!(delta.all_commits(), 0);
}
