//! Edge-attribution exactness for TL2: deterministically forced
//! conflicts must land in the forensics tables with the right cause,
//! the right t-variable, and the committing peer's process named via
//! the per-variable writer stamp — sibling of `tl2_abort_causes.rs`
//! (cause exactness) and `oftm-core/tests/dstm_conflict_edges.rs`
//! (transaction-exact DSTM edges).

use oftm_baselines::tl2::Tl2Stm;
use oftm_core::api::WordStm;
use oftm_histories::TVarId;
use oftm_obs::{tx_proc, AbortCause};

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn stm() -> Tl2Stm {
    let s = Tl2Stm::new();
    s.register_tvar(X, 0);
    s.register_tvar(Y, 0);
    s.stats().forensics().set_sample_period(1);
    s.stats().forensics().reset();
    s
}

/// Forced too-new read: the reader's snapshot predates the writer's
/// commit, so the read itself rejects the newer stamp. The edge must
/// carry `read_validation`, the contested variable, and the writer's
/// process (the last committer's stamp on the variable's lock word).
#[test]
fn too_new_read_yields_edge_with_right_cause_var_and_aggressor() {
    let s = stm();

    let mut stale = s.begin(0); // snapshot taken here, all shards at 0
    let mut writer = s.begin(1);
    writer.write(X, 9).expect("buffered write cannot fail");
    writer.try_commit().expect("unopposed writer commits");
    assert!(stale.read(X).is_err(), "TL2 must reject the too-new stamp");
    assert!(stale.try_commit().is_err());

    let edges = s.stats().forensics().edges().top_k(8);
    assert_eq!(edges.len(), 1, "exactly one edge: {edges:?}");
    let e = &edges[0];
    assert_eq!(e.cause, AbortCause::ReadValidation);
    assert_eq!(e.var, X.0, "edge names the contested t-variable");
    assert_eq!(e.count, 1);
    assert_eq!(
        e.aggressor_proc, 1,
        "the committing writer is the aggressor"
    );
    assert_eq!(e.victim_proc, 0);
    assert_eq!(tx_proc(e.last_aggressor), 1);

    let hot = s.stats().forensics().heatmap().top_k(4);
    assert_eq!(hot.len(), 1);
    assert_eq!(hot[0].var, X.0);
    assert_eq!(hot[0].dominant_cause(), AbortCause::ReadValidation);
}

/// Forced commit-time validation failure: the read was clean when taken
/// and invalidated by a peer's commit before our own. The write-back
/// validation pass must attribute the invalidated variable and the
/// stamped committer — not the variable we were writing.
#[test]
fn stale_read_set_at_commit_yields_edge_on_the_read_variable() {
    let s = stm();

    let mut t1 = s.begin(0);
    assert_eq!(t1.read(X).expect("clean first read"), 0);
    t1.write(Y, 1).expect("buffered write cannot fail");
    let mut t2 = s.begin(1);
    t2.write(X, 7).expect("buffered write cannot fail");
    t2.try_commit().expect("unopposed writer commits");
    assert!(
        t1.try_commit().is_err(),
        "commit validation must catch the invalidated read set"
    );

    let edges = s.stats().forensics().edges().top_k(8);
    assert_eq!(edges.len(), 1, "exactly one edge: {edges:?}");
    let e = &edges[0];
    assert_eq!(e.cause, AbortCause::ReadValidation);
    assert_eq!(e.var, X.0, "the READ variable, not the written one");
    assert_eq!(e.aggressor_proc, 1);
    assert_eq!(e.victim_proc, 0);
}
