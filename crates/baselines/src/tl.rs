//! TL-style lock-based STM: commit-time per-object locking with per-object
//! version validation (after Dice & Shavit's "Transactional Locking" \[11\]).
//!
//! The paper (Section 1) singles this design out as *strictly
//! disjoint-access-parallel*: the only base objects a transaction touches
//! are the lock/version/value words of the t-variables it accesses — no
//! shared descriptor, no global clock. One measured deviation since the
//! read-only fast path landed: a **writing commit** stamps its versions
//! from the sharded commit clock ([`crate::clock`]), bumping only its own
//! process's shard — so writers whose process ids collide modulo
//! [`CLOCK_SHARDS`] share one clock cell, while writers on distinct
//! shards, and all plain transactional reads, remain strictly disjoint
//! (`exp_conflict_density` sees the difference). This is the deliberate
//! price of giving read-only transactions a begin-time snapshot.
//!
//! It is, of course, *blocking*: a preempted transaction that holds commit
//! locks stalls every writer of those variables (E9 measures the stall).
//!
//! **Read-only transactions.** Same two tiers as TL2: detect-on-commit
//! promotion (an empty write-set skips locking and the clock bump; the
//! read-set is still validated — plain TL reads are not snapshot-anchored)
//! and the *declared* path ([`oftm_core::api::WordStm::begin_ro`],
//! [`TlRoTx`]) with no read-set, per-read snapshot validation, and a
//! commit that validates nothing. Declared-RO reads are bounded —
//! wait-free per operation — and a single-read transaction never retries.
//!
//! Transactions reuse pooled scratch buffers (read-set, write-set, lock
//! log) across their lifetimes, the write-set carries the variable
//! handles it resolved (commit takes zero table probes), and a
//! transaction-lifetime epoch pin makes the paged-slab table's per-read
//! pins nest for free — steady-state transactions allocate nothing.

use crate::clock::{readable, ShardedClock, CLOCK_SHARDS, LOCK_BIT};
use crossbeam_epoch::{self as epoch, Guard};
use oftm_core::api::{TxError, TxResult, WordStm, WordTx};
use oftm_core::notify::CommitNotifier;
use oftm_core::pool::SlotPool;
use oftm_core::reclaim::{GraceTracker, RetiredBlock, TxGrace};
use oftm_core::record::{fresh_base_id, Recorder};
use oftm_core::table::VarTable;
use oftm_histories::{Access, BaseObjId, TVarId, TmOp, TmResp, TxId, Value};
use oftm_obs::{pack_tx, AbortCause, Counter, StmStats, VarAttr, TX_UNKNOWN};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One t-variable: a versioned lock word and the value cell.
pub(crate) struct VLockVar {
    /// High bit: locked; rest: a packed `(shard, count)` clock stamp (see
    /// [`crate::clock`]). Commit validation is still pure *equality* on
    /// this word — each stamp is issued once, so equality means unchanged
    /// — but packing clock stamps instead of a per-variable counter is
    /// what gives the read-only path a begin-time snapshot to validate
    /// against.
    lock: AtomicU64,
    value: AtomicU64,
    /// Forensic writer stamp: packed id ([`pack_tx`]) of the last
    /// transaction to take this variable's commit lock — while the lock is
    /// held, the current holder; after a successful commit, the last
    /// committer. A victim aborting on this word reads the stamp to name
    /// its aggressor (who-aborted-whom edges). An aborted commit attempt
    /// leaves its id behind until the next holder, so a racing attribution
    /// can name a contender that never committed — a true contender on the
    /// variable, just not the committed invalidator.
    writer: AtomicU64,
    lock_base: BaseObjId,
    value_base: BaseObjId,
}

impl VLockVar {
    fn new(initial: Value) -> Self {
        VLockVar {
            lock: AtomicU64::new(0),
            value: AtomicU64::new(initial),
            writer: AtomicU64::new(TX_UNKNOWN),
            lock_base: fresh_base_id(),
            value_base: fresh_base_id(),
        }
    }

    /// A consistent (version, value) snapshot, or `None` if locked/racing.
    fn read_consistent(&self) -> Option<(u64, Value)> {
        // ord: Acquire pairs with `unlock`'s Release so a clean version
        // word implies the committed value store is visible.
        let v1 = self.lock.load(Ordering::Acquire);
        if v1 & LOCK_BIT != 0 {
            return None;
        }
        // ord: Acquire pairs with the committer's Release value store.
        let val = self.value.load(Ordering::Acquire);
        // ord: Acquire re-read — an unchanged version word proves no
        // commit overlapped the value load (seqlock validation).
        let v2 = self.lock.load(Ordering::Acquire);
        (v1 == v2).then_some((v1, val))
    }

    /// Tries to take the commit lock, preserving the version bits.
    fn try_lock(&self) -> Option<u64> {
        // ord: Acquire pairs with the previous holder's Release unlock.
        let cur = self.lock.load(Ordering::Acquire);
        if cur & LOCK_BIT != 0 {
            return None;
        }
        self.lock
            // ord: AcqRel — Acquire makes the previous commit's writes
            // visible to the new lock holder; Release orders the lock
            // acquisition for validators. Failure Acquire pairs with the
            // racing locker.
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| cur)
    }

    /// Releases the lock, restoring (abort) or installing (commit) the
    /// given unlocked version word.
    fn unlock(&self, word: u64) {
        debug_assert_eq!(word & LOCK_BIT, 0);
        // ord: Release publishes the value stores made under the lock to
        // readers' Acquire version loads (seqlock release half).
        self.lock.store(word, Ordering::Release);
    }
}

/// Pooled per-transaction buffers (see module docs).
#[derive(Default)]
struct Scratch {
    reads: Vec<(Arc<VLockVar>, TVarId, u64)>,
    writes: Vec<(TVarId, Value, Arc<VLockVar>)>,
    locked: Vec<u64>,
    retired: Vec<RetiredBlock>,
}

/// TL-style STM.
pub struct TlStm {
    vars: VarTable<VLockVar>,
    reclaim: GraceTracker,
    notify: CommitNotifier,
    /// Commit-stamp source for the read-only snapshot path. Ordinary
    /// transactions never *read* it (reads stay strictly DAP); a writing
    /// commit bumps only its own shard, and only declared-RO transactions
    /// sample the whole vector.
    clocks: ShardedClock,
    tx_seq: AtomicU32,
    recorder: Option<Arc<Recorder>>,
    scratch: SlotPool<Scratch>,
    /// Always-on telemetry (begins/commits/aborts-by-cause, latency
    /// histograms).
    stats: StmStats,
    /// Bounded spin on a locked variable before giving up and aborting
    /// (keeps writers from deadlocking; readers never block).
    pub lock_patience: u32,
}

impl Default for TlStm {
    fn default() -> Self {
        Self::new()
    }
}

impl TlStm {
    pub fn new() -> Self {
        TlStm {
            vars: VarTable::new(),
            reclaim: GraceTracker::new(),
            notify: CommitNotifier::new(),
            clocks: ShardedClock::new(),
            tx_seq: AtomicU32::new(0),
            recorder: None,
            scratch: SlotPool::new(),
            stats: StmStats::new(),
            lock_patience: 4096,
        }
    }

    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    pub fn peek(&self, x: TVarId) -> Option<Value> {
        // ord: Acquire pairs with the committer's Release value store
        // (oracle/inspection read; not validated against the lock word).
        self.vars.get(x).map(|v| v.value.load(Ordering::Acquire))
    }

    fn reclaim_after_commit(&self, grace: TxGrace, retired: &mut Vec<RetiredBlock>) {
        let freed = self
            .reclaim
            .retire_and_flush(grace, std::mem::take(retired));
        if !freed.is_empty() {
            self.stats.incr(Counter::GraceFlushes);
            self.stats.add(
                Counter::TvarsFreed,
                freed.iter().map(|b| b.len as u64).sum(),
            );
        }
        for blk in freed {
            self.vars.remove_block(blk.base, blk.len);
        }
    }

    /// Samples the begin-time read-version vector for a declared
    /// read-only transaction, recording one Read step per shard cell.
    /// Only the RO path pays this; plain transactions never touch the
    /// clock outside their own commit shard.
    fn sample_rv(&self, id: TxId) -> [u64; CLOCK_SHARDS] {
        let mut rv = [0u64; CLOCK_SHARDS];
        for (s, shard) in self.clocks.shards().iter().enumerate() {
            // ord: Acquire pairs with the shard tick's Release so commits
            // stamped below the sampled vector are fully visible.
            rv[s] = shard.count.load(Ordering::Acquire);
            if let Some(r) = self.recorder.as_deref() {
                r.step(id.process(), Some(id), shard.base, Access::Read);
            }
        }
        rv
    }
}

struct TlTx<'s> {
    stm: &'s TlStm,
    id: TxId,
    /// Read-set: (var, id, observed version).
    reads: Vec<(Arc<VLockVar>, TVarId, u64)>,
    /// Redo log, ordered by first write, carrying resolved handles;
    /// committed under locks.
    writes: Vec<(TVarId, Value, Arc<VLockVar>)>,
    /// Lock log of the commit attempt: previous lock words, parallel to
    /// the (deduplicated, sorted) prefix of `writes`.
    locked: Vec<u64>,
    /// Grace-period registration; dropping it (any abort path) releases
    /// the slot and discards `retired` with the transaction.
    grace: Option<TxGrace>,
    retired: Vec<RetiredBlock>,
    dead: bool,
    /// Completed through `try_commit`/`try_abort`: every abort cause is
    /// already tagged. A live transaction dropped without either settles
    /// as an explicit retry in the abort taxonomy.
    finished: bool,
    /// The variable an abort gave up on (lock-patience exhausted at
    /// read): it is in neither log yet, but it *is* part of the conflict
    /// footprint a parked re-run must wake on.
    conflict_hint: Option<TVarId>,
    /// Epoch pin held for the transaction's lifetime (nested table pins
    /// become a counter bump).
    pin: Guard,
}

impl TlTx<'_> {
    fn rstep(&self, obj: BaseObjId, access: Access) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.step(self.id.process(), Some(self.id), obj, access);
        }
    }

    fn rinvoke(&self, op: TmOp) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.invoke(self.id, op);
        }
    }

    fn rrespond(&self, resp: TmResp) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.respond(self.id, resp);
        }
    }

    /// Resolves `x`, preferring handles this transaction already holds
    /// (write-set entries, then the most recent read — the read-then-
    /// write upgrade pattern) over a table probe.
    fn var(&self, x: TVarId) -> Arc<VLockVar> {
        if let Some((_, _, var)) = self.writes.iter().rev().find(|(w, _, _)| *w == x) {
            return Arc::clone(var);
        }
        if let Some((var, rx, _)) = self.reads.last() {
            if *rx == x {
                return Arc::clone(var);
            }
        }
        self.stm.vars.get_or_panic_in(x, &self.pin)
    }

    fn buffered(&self, x: TVarId) -> Option<Value> {
        self.writes
            .iter()
            .rev()
            .find(|(w, _, _)| *w == x)
            .map(|(_, v, _)| *v)
    }

    /// This transaction's packed forensic identity ([`pack_tx`]).
    fn packed_id(&self) -> u64 {
        pack_tx(self.id.proc, self.id.seq)
    }
}

impl WordTx for TlTx<'_> {
    fn id(&self) -> TxId {
        self.id
    }

    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.rinvoke(TmOp::Read(x));
        if self.dead {
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }
        if let Some(v) = self.buffered(x) {
            self.rrespond(TmResp::Value(v));
            return Ok(v);
        }
        let var = self.stm.vars.get_or_panic_in(x, &self.pin);
        let mut patience = self.stm.lock_patience;
        loop {
            self.rstep(var.lock_base, Access::Read);
            if let Some((ver, val)) = var.read_consistent() {
                self.rstep(var.value_base, Access::Read);
                self.reads.push((var, x, ver));
                self.rrespond(TmResp::Value(val));
                return Ok(val);
            }
            // Locked by a committing writer: spin briefly (blocking TM!).
            patience = patience.saturating_sub(1);
            if patience == 0 {
                self.dead = true;
                self.conflict_hint = Some(x);
                // ord: Relaxed — forensic stamp, carries no payload.
                let holder = var.writer.load(Ordering::Relaxed);
                self.stm.stats.abort_at(
                    AbortCause::LockBusy,
                    VarAttr::Var(x.0),
                    self.packed_id(),
                    holder,
                );
                self.rrespond(TmResp::Aborted);
                return Err(TxError::Aborted);
            }
            std::hint::spin_loop();
        }
    }

    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        self.rinvoke(TmOp::Write(x, v));
        if self.dead {
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }
        let var = self.var(x); // existence check + handle capture
        self.writes.push((x, v, var));
        self.rrespond(TmResp::Ok);
        Ok(())
    }

    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        self.rinvoke(TmOp::TryCommit);
        self.finished = true;
        if self.dead {
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }

        let me = self.packed_id();
        if self.writes.is_empty() {
            // Detect-on-commit promotion: no locks to take and no clock
            // bump. Unlike TL2, the read-set must still be validated —
            // plain TL reads are not anchored to a begin-time snapshot,
            // so this is what makes two reads at different times mutually
            // consistent.
            for (var, x, ver) in &self.reads {
                self.rstep(var.lock_base, Access::Read);
                // ord: Acquire pairs with `unlock`'s Release — an unchanged
                // version word proves the read still holds.
                let cur = var.lock.load(Ordering::Acquire);
                if cur != *ver {
                    // ord: Relaxed — forensic stamp, carries no payload.
                    let writer = var.writer.load(Ordering::Relaxed);
                    self.stm.stats.abort_at(
                        AbortCause::ReadValidation,
                        VarAttr::Var(x.0),
                        me,
                        writer,
                    );
                    self.rrespond(TmResp::Aborted);
                    return Err(TxError::Aborted);
                }
            }
            self.stm.stats.incr(Counter::CommitsPromoted);
            self.rrespond(TmResp::Committed);
            let grace = self.grace.take().expect("grace slot held until completion");
            let mut retired = std::mem::take(&mut self.retired);
            self.stm.reclaim_after_commit(grace, &mut retired);
            self.retired = retired;
            return Ok(());
        }

        // Deduplicate the write-set in place (stable sort; last value
        // wins) and lock in global t-variable order to avoid deadlock
        // among committers. No table probe, no allocation.
        self.writes.sort_by_key(|(x, _, _)| *x);
        self.writes.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });

        let unlock_all = |writes: &[(TVarId, Value, Arc<VLockVar>)], locked: &[u64]| {
            for ((_, _, var), prev) in writes.iter().zip(locked).rev() {
                var.unlock(*prev);
            }
        };

        // Commit critical section: from the first lock acquisition to the
        // final unlock, every concurrent writer of these variables stalls.
        let cs_started = Instant::now();
        self.locked.clear();
        for i in 0..self.writes.len() {
            let var = &self.writes[i].2;
            let mut patience = self.stm.lock_patience;
            loop {
                self.rstep(var.lock_base, Access::Modify);
                if let Some(prev) = var.try_lock() {
                    self.locked.push(prev);
                    // Forensic holder stamp: any peer that aborts on this
                    // word while we hold it names us as the aggressor.
                    // ord: Relaxed — forensic stamp, carries no payload.
                    var.writer.store(me, Ordering::Relaxed);
                    break;
                }
                patience = patience.saturating_sub(1);
                if patience == 0 {
                    let x = self.writes[i].0;
                    // ord: Relaxed — forensic stamp, carries no payload.
                    let holder = var.writer.load(Ordering::Relaxed);
                    unlock_all(&self.writes[..self.locked.len()], &self.locked);
                    self.stm
                        .stats
                        .abort_at(AbortCause::LockBusy, VarAttr::Var(x.0), me, holder);
                    self.rrespond(TmResp::Aborted);
                    return Err(TxError::Aborted);
                }
                std::hint::spin_loop();
            }
        }

        // Obtain the commit stamp: a bump of OUR clock shard only. This
        // is the one non-strictly-DAP access of a TL writing commit —
        // writers of processes that map to the same shard meet here (the
        // price of giving read-only transactions a begin-time snapshot);
        // writers on distinct shards, and all plain reads, stay disjoint.
        let wv = self.stm.clocks.tick(self.id.proc);
        self.stm.stats.incr(Counter::ClockShardTicks);
        let shard = self.id.proc as usize & (CLOCK_SHARDS - 1);
        self.rstep(self.stm.clocks.shards()[shard].base, Access::Modify);

        // Validate the read-set: versions unchanged and not locked by
        // someone else (our own locks are fine).
        for (var, x, ver) in &self.reads {
            self.rstep(var.lock_base, Access::Read);
            // ord: Acquire pairs with `unlock`'s Release (validation read).
            let cur = var.lock.load(Ordering::Acquire);
            let ours = self.writes.binary_search_by_key(x, |(w, _, _)| *w).is_ok();
            let effective = if ours { cur & !LOCK_BIT } else { cur };
            if effective != *ver || (!ours && cur & LOCK_BIT != 0) {
                // ord: Relaxed — forensic stamp, carries no payload.
                let writer = var.writer.load(Ordering::Relaxed);
                unlock_all(&self.writes, &self.locked);
                self.stm
                    .stats
                    .abort_at(AbortCause::ReadValidation, VarAttr::Var(x.0), me, writer);
                self.rrespond(TmResp::Aborted);
                return Err(TxError::Aborted);
            }
        }

        // Apply and release with the new commit stamp.
        for (_x, v, var) in self.writes.iter() {
            // ord: Release — together with `unlock`'s Release version store,
            // pairs with readers' Acquire value/version loads.
            var.value.store(*v, Ordering::Release);
            self.rstep(var.value_base, Access::Modify);
            var.unlock(wv);
            self.rstep(var.lock_base, Access::Modify);
        }
        self.stm
            .stats
            .record_commit_cs_ns(cs_started.elapsed().as_nanos() as u64);
        self.stm.stats.incr(Counter::Commits);
        // Writes are visible and unlocked: wake parked conflicters.
        self.stm
            .notify
            .publish(self.writes.iter().map(|(x, _, _)| *x));
        self.rrespond(TmResp::Committed);
        let grace = self.grace.take().expect("grace slot held until completion");
        let mut retired = std::mem::take(&mut self.retired);
        self.stm.reclaim_after_commit(grace, &mut retired);
        self.retired = retired;
        Ok(())
    }

    fn try_abort(mut self: Box<Self>) {
        self.rinvoke(TmOp::TryAbort);
        self.finished = true;
        if !self.dead {
            // Abandoning a still-viable attempt: an explicit retry.
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                self.packed_id(),
                TX_UNKNOWN,
            );
        }
        self.rrespond(TmResp::Aborted);
        // Nothing to undo: writes were buffered; dropping `grace` releases
        // the reclamation slot and discards the retire-set.
    }

    fn retire_tvar_block(&mut self, base: TVarId, len: usize) {
        self.retired.push(RetiredBlock { base, len });
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend(self.reads.iter().map(|(_, x, _)| *x));
        out.extend(self.writes.iter().map(|(x, _, _)| *x));
        out.extend(self.conflict_hint);
    }
}

impl Drop for TlTx<'_> {
    fn drop(&mut self) {
        if !self.finished && !self.dead {
            // Dropped live without tryC/tryA: counted as an explicit retry
            // (the only way an attempt can end with no cause tagged).
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                self.packed_id(),
                TX_UNKNOWN,
            );
        }
        // Return the (cleared) buffers to the pool: the next transaction
        // begins with warm capacity instead of fresh allocations.
        let mut s = Scratch {
            reads: std::mem::take(&mut self.reads),
            writes: std::mem::take(&mut self.writes),
            locked: std::mem::take(&mut self.locked),
            retired: std::mem::take(&mut self.retired),
        };
        s.reads.clear();
        s.writes.clear();
        s.locked.clear();
        s.retired.clear();
        self.stm.scratch.put(self.id.proc as usize, Box::new(s));
    }
}

/// A **declared read-only** TL transaction — the exact counterpart of
/// [`crate::tl2::Tl2Stm`]'s `Tl2RoTx` (see its docs for the snapshot
/// refresh and freeze rules): no read-set, per-read validation against
/// the begin-time version vector, commit without revalidation. Bounded
/// loads per read (wait-free reads); a single-read transaction never
/// retries.
struct TlRoTx<'s> {
    stm: &'s TlStm,
    id: TxId,
    rv: [u64; CLOCK_SHARDS],
    /// A read has succeeded: the snapshot is frozen from here on.
    read_any: bool,
    grace: Option<TxGrace>,
    dead: bool,
    finished: bool,
    conflict_hint: Option<TVarId>,
    pin: Guard,
}

impl TlRoTx<'_> {
    fn rinvoke(&self, op: TmOp) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.invoke(self.id, op);
        }
    }

    fn rrespond(&self, resp: TmResp) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.respond(self.id, resp);
        }
    }

    fn rstep(&self, obj: BaseObjId, access: Access) {
        if let Some(r) = self.stm.recorder.as_deref() {
            r.step(self.id.process(), Some(self.id), obj, access);
        }
    }
}

impl WordTx for TlRoTx<'_> {
    fn id(&self) -> TxId {
        self.id
    }

    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        self.rinvoke(TmOp::Read(x));
        if self.dead {
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }
        // No read-set to retain the handle in: borrow under the pin and
        // skip the per-read `Arc` refcount round-trip.
        let var = self.stm.vars.get_ref_or_panic_in(x, &self.pin);
        self.rstep(var.lock_base, Access::Read);
        let (ver, val) = match var.read_consistent() {
            Some(pair) => pair,
            None => {
                // Locked by a committing writer: bounded spin, kept out
                // of line so the unlocked fast path stays straight.
                let mut patience = self.stm.lock_patience;
                loop {
                    patience = patience.saturating_sub(1);
                    if patience == 0 {
                        self.dead = true;
                        self.conflict_hint = Some(x);
                        // ord: Relaxed — forensic stamp, carries no payload.
                        let holder = var.writer.load(Ordering::Relaxed);
                        self.stm.stats.abort_at(
                            AbortCause::LockBusy,
                            VarAttr::Var(x.0),
                            pack_tx(self.id.proc, self.id.seq),
                            holder,
                        );
                        self.rrespond(TmResp::Aborted);
                        return Err(TxError::Aborted);
                    }
                    std::hint::spin_loop();
                    self.rstep(var.lock_base, Access::Read);
                    if let Some(pair) = var.read_consistent() {
                        break pair;
                    }
                }
            }
        };
        self.rstep(var.value_base, Access::Read);
        if !readable(ver, &self.rv) {
            if self.read_any {
                // Snapshot frozen; this value postdates it. The writer
                // stamp names the committer whose stamp we tripped on.
                self.dead = true;
                self.conflict_hint = Some(x);
                // ord: Relaxed — forensic stamp, carries no payload.
                let writer = var.writer.load(Ordering::Relaxed);
                self.stm.stats.abort_at(
                    AbortCause::ReadValidation,
                    VarAttr::Var(x.0),
                    pack_tx(self.id.proc, self.id.seq),
                    writer,
                );
                self.rrespond(TmResp::Aborted);
                return Err(TxError::Aborted);
            }
            // First read: refresh the snapshot instead of aborting (the
            // stamp we saw was published before the resample, so it is
            // readable afterwards).
            self.rv = self.stm.sample_rv(self.id);
            debug_assert!(readable(ver, &self.rv));
        }
        self.read_any = true;
        self.rrespond(TmResp::Value(val));
        Ok(val)
    }

    fn write(&mut self, _x: TVarId, _v: Value) -> TxResult<()> {
        panic!("tl: write on a declared read-only transaction");
    }

    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        self.rinvoke(TmOp::TryCommit);
        self.finished = true;
        if self.dead {
            self.rrespond(TmResp::Aborted);
            return Err(TxError::Aborted);
        }
        // Every read was within the begin-time snapshot: nothing to
        // validate or lock. Commit is just the grace release.
        self.stm.stats.incr(Counter::CommitsRo);
        self.rrespond(TmResp::Committed);
        let grace = self.grace.take().expect("grace slot held until completion");
        let mut retired = Vec::new();
        self.stm.reclaim_after_commit(grace, &mut retired);
        Ok(())
    }

    fn try_abort(mut self: Box<Self>) {
        self.rinvoke(TmOp::TryAbort);
        self.finished = true;
        if !self.dead {
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                pack_tx(self.id.proc, self.id.seq),
                TX_UNKNOWN,
            );
        }
        self.rrespond(TmResp::Aborted);
    }

    fn retire_tvar_block(&mut self, _base: TVarId, _len: usize) {
        panic!("tl: retire on a declared read-only transaction");
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend(self.conflict_hint);
    }
}

impl Drop for TlRoTx<'_> {
    fn drop(&mut self) {
        if !self.finished && !self.dead {
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                pack_tx(self.id.proc, self.id.seq),
                TX_UNKNOWN,
            );
        }
    }
}

impl WordStm for TlStm {
    fn name(&self) -> &'static str {
        "tl"
    }

    fn register_tvar(&self, x: TVarId, initial: Value) {
        self.stats.incr(Counter::TvarsAllocated);
        self.vars.insert(x, VLockVar::new(initial));
    }

    fn alloc_tvar_block(&self, initials: &[Value]) -> TVarId {
        self.stats
            .add(Counter::TvarsAllocated, initials.len() as u64);
        self.vars.alloc_block(initials, |_, v| VLockVar::new(v))
    }

    fn free_tvar_block(&self, base: TVarId, len: usize) {
        self.stats.add(Counter::TvarsFreed, len as u64);
        self.vars.remove_block(base, len);
    }

    fn live_tvars(&self) -> usize {
        self.vars.len()
    }

    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        // ord: Relaxed — atomicity alone keeps transaction ids unique.
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        let scratch = self
            .scratch
            .take(proc as usize)
            .map(|b| *b)
            .unwrap_or_default();
        Box::new(TlTx {
            stm: self,
            id: TxId::new(proc, seq),
            reads: scratch.reads,
            writes: scratch.writes,
            locked: scratch.locked,
            grace: Some(self.reclaim.begin()),
            retired: scratch.retired,
            dead: false,
            finished: false,
            conflict_hint: None,
            pin: epoch::pin(),
        })
    }

    fn begin_ro(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        self.stats.incr(Counter::BeginsRo);
        // ord: Relaxed — atomicity alone keeps transaction ids unique.
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        let id = TxId::new(proc, seq);
        let rv = self.sample_rv(id);
        Box::new(TlRoTx {
            stm: self,
            id,
            rv,
            read_any: false,
            grace: Some(self.reclaim.begin()),
            dead: false,
            finished: false,
            conflict_hint: None,
            pin: epoch::pin(),
        })
    }

    fn notifier(&self) -> &CommitNotifier {
        &self.notify
    }

    fn stats(&self) -> &StmStats {
        &self.stats
    }

    fn is_obstruction_free(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::api::run_transaction;

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn stm() -> TlStm {
        let s = TlStm::new();
        s.register_tvar(X, 0);
        s.register_tvar(Y, 0);
        s
    }

    #[test]
    fn read_write_roundtrip() {
        let s = stm();
        run_transaction(&s, 0, |tx| tx.write(X, 5));
        let (v, _) = run_transaction(&s, 0, |tx| tx.read(X));
        assert_eq!(v, 5);
    }

    #[test]
    fn buffered_writes_read_back() {
        let s = stm();
        run_transaction(&s, 0, |tx| {
            tx.write(X, 1)?;
            assert_eq!(tx.read(X)?, 1);
            tx.write(X, 2)?;
            assert_eq!(tx.read(X)?, 2);
            Ok(())
        });
        assert_eq!(s.peek(X), Some(2));
    }

    #[test]
    fn duplicate_writes_last_value_wins() {
        let s = stm();
        run_transaction(&s, 0, |tx| {
            tx.write(X, 1)?;
            tx.write(Y, 7)?;
            tx.write(X, 2)?;
            tx.write(X, 3)
        });
        assert_eq!(s.peek(X), Some(3));
        assert_eq!(s.peek(Y), Some(7));
    }

    #[test]
    fn stale_read_aborts_at_commit() {
        let s = stm();
        let mut t1 = s.begin(0);
        assert_eq!(t1.read(X).unwrap(), 0);
        run_transaction(&s, 1, |tx| tx.write(X, 9));
        // t1 read version changed: commit must fail even for read-only…
        // actually read-only txs with stale reads may serialize earlier;
        // TL validates and aborts conservatively, and a write makes it
        // mandatory:
        t1.write(Y, 1).unwrap();
        assert!(t1.try_commit().is_err());
    }

    #[test]
    fn ro_first_read_refreshes_snapshot() {
        let s = stm();
        let mut ro = s.begin_ro(0); // rv = all-zero vector
        run_transaction(&s, 1, |tx| tx.write(X, 9)); // stamped after begin
        assert_eq!(ro.read(X).unwrap(), 9, "first read slides the snapshot");
        assert!(ro.try_commit().is_ok());
    }

    #[test]
    fn ro_snapshot_frozen_after_first_read() {
        let s = stm();
        run_transaction(&s, 0, |tx| tx.write(Y, 1));
        let mut ro = s.begin_ro(0);
        assert_eq!(ro.read(Y).unwrap(), 1); // snapshot now frozen
        run_transaction(&s, 1, |tx| tx.write(X, 7));
        assert!(
            ro.read(X).is_err(),
            "a post-freeze commit must not leak into the snapshot"
        );
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn ro_write_panics() {
        let s = stm();
        let mut ro = s.begin_ro(0);
        let _ = ro.write(X, 1);
    }

    #[test]
    fn promoted_read_only_commit_still_validates() {
        // Detect-on-commit promotion must not skip read validation: TL
        // reads are not snapshot-anchored, so an empty-write-set commit
        // whose reads went stale has to abort.
        let s = stm();
        let mut t1 = s.begin(0);
        assert_eq!(t1.read(X).unwrap(), 0);
        run_transaction(&s, 1, |tx| tx.write(X, 9));
        assert!(t1.try_commit().is_err());
    }

    #[test]
    fn concurrent_counter() {
        let s = Arc::new(stm());
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..200 {
                        run_transaction(&*s, p, |tx| {
                            let v = tx.read(X)?;
                            tx.write(X, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(s.peek(X), Some(800));
    }

    #[test]
    fn invariant_across_two_vars() {
        let s = Arc::new(stm());
        run_transaction(&*s, 0, |tx| {
            tx.write(X, 500)?;
            tx.write(Y, 500)
        });
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for i in 0..100u64 {
                        let d = i % 9;
                        run_transaction(&*s, p, |tx| {
                            let x = tx.read(X)?;
                            let y = tx.read(Y)?;
                            if x >= d {
                                tx.write(X, x - d)?;
                                tx.write(Y, y + d)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let (sum, _) = run_transaction(&*s, 9, |tx| Ok(tx.read(X)? + tx.read(Y)?));
        assert_eq!(sum, 1000);
    }

    #[test]
    fn disjoint_transactions_touch_disjoint_base_objects() {
        // The strict-DAP property (the paper's Section 1 claim about TL).
        let rec = Arc::new(Recorder::new());
        let s = TlStm::new().with_recorder(Arc::clone(&rec));
        s.register_tvar(X, 0);
        s.register_tvar(Y, 0);
        run_transaction(&s, 0, |tx| {
            let v = tx.read(X)?;
            tx.write(X, v + 1)
        });
        run_transaction(&s, 1, |tx| {
            let v = tx.read(Y)?;
            tx.write(Y, v + 1)
        });
        let h = rec.snapshot();
        let violations = oftm_histories::check_strict_dap(&h);
        assert!(
            violations.is_empty(),
            "TL must be strictly DAP, found {violations:?}"
        );
    }

    #[test]
    fn recorded_histories_serializable() {
        let rec = Arc::new(Recorder::new());
        let s = Arc::new(TlStm::new().with_recorder(Arc::clone(&rec)));
        s.register_tvar(X, 0);
        s.register_tvar(Y, 0);
        std::thread::scope(|sc| {
            for p in 0..3u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..10 {
                        run_transaction(&*s, p, |tx| {
                            let x = tx.read(X)?;
                            tx.write(Y, x + 1)?;
                            tx.write(X, x + 1)
                        });
                    }
                });
            }
        });
        assert!(oftm_histories::conflict_serializable(&rec.snapshot()));
    }
}
