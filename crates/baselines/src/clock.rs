//! The sharded commit clock shared by the TL and TL2 backends, together
//! with the packed version-word layout both stamp into per-variable lock
//! words.
//!
//! PR 4 sharded TL2's global version clock into [`CLOCK_SHARDS`]
//! cache-line-isolated counters; this module extracts that machinery so TL
//! can reuse it: the read-only fast path of both backends validates each
//! read against a begin-time **version vector** (one sampled count per
//! shard), which only works if writing commits stamp `(shard, count)`
//! pairs instead of raw per-variable counters.
//!
//! Soundness of the lazy per-shard merge: each shard counter is monotonic,
//! so for a reader holding sample vector `rv`, a packed version `(s, c)`
//! with `c ≤ rv[s]` was stamped by a writer whose clock bump preceded the
//! reader's sample of shard `s` — the stamped value existed at (or before)
//! the sample and belongs to the reader's snapshot.

use oftm_core::record::fresh_base_id;
use oftm_histories::BaseObjId;
use std::sync::atomic::{AtomicU64, Ordering};

/// High bit of a lock word: held by a committing writer.
pub(crate) const LOCK_BIT: u64 = 1 << 63;

/// Number of clock shards; a power of two so the shard of a process is a
/// mask away.
pub const CLOCK_SHARDS: usize = 8;

/// Version-word layout: bit 63 lock, bits 56..63 shard, bits 0..56 count.
pub(crate) const SHARD_SHIFT: u32 = 56;
pub(crate) const COUNT_MASK: u64 = (1 << SHARD_SHIFT) - 1;

pub(crate) fn ver_shard(v: u64) -> usize {
    (((v & !LOCK_BIT) >> SHARD_SHIFT) as usize) & (CLOCK_SHARDS - 1)
}

pub(crate) fn ver_count(v: u64) -> u64 {
    v & COUNT_MASK
}

pub(crate) fn pack_version(shard: usize, count: u64) -> u64 {
    debug_assert!(count <= COUNT_MASK);
    ((shard as u64) << SHARD_SHIFT) | count
}

/// A packed version `v` is within the snapshot described by the sample
/// vector `rv`.
pub(crate) fn readable(v: u64, rv: &[u64; CLOCK_SHARDS]) -> bool {
    ver_count(v) <= rv[ver_shard(v)]
}

/// A clock shard on its own cache line (the whole point of sharding is
/// that disjoint committers do not bounce one line).
#[repr(align(64))]
pub(crate) struct ClockShard {
    pub(crate) count: AtomicU64,
    /// Base object identity of this shard cell in recorded histories.
    pub(crate) base: BaseObjId,
}

/// The sharded commit clock: [`CLOCK_SHARDS`] independent counters.
pub(crate) struct ShardedClock {
    shards: Box<[ClockShard]>,
}

impl ShardedClock {
    pub(crate) fn new() -> Self {
        ShardedClock {
            shards: (0..CLOCK_SHARDS)
                .map(|_| ClockShard {
                    count: AtomicU64::new(0),
                    base: fresh_base_id(),
                })
                .collect(),
        }
    }

    pub(crate) fn shards(&self) -> &[ClockShard] {
        &self.shards
    }

    /// Bumps the committing process's own shard and returns the packed
    /// `(shard, count)` write version to stamp — the sharded replacement
    /// for the global `fetch_add` hot spot.
    pub(crate) fn tick(&self, proc: u32) -> u64 {
        let shard = proc as usize & (CLOCK_SHARDS - 1);
        let count = self.shards[shard].count.fetch_add(1, Ordering::AcqRel) + 1;
        pack_version(shard, count)
    }

    /// Sum of all shard counts: total writing commits stamped so far (the
    /// lazy-merged "current time"; diagnostics only).
    pub(crate) fn now(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Acquire))
            .sum()
    }
}
