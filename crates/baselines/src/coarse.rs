//! Coarse-grained global-lock TM: the simplest correct baseline.
//!
//! One mutex serializes every transaction. Trivially serializable and
//! opaque, maximally *not* disjoint-access-parallel (every pair of
//! transactions conflicts on the lock word), and blocking: a preempted
//! lock holder stalls the whole system — the exact failure mode the
//! paper's introduction motivates obstruction-freedom with (E9 measures
//! it).
//!
//! Values live in a shared [`VarTable`] of atomic cells while the mutex is
//! a pure serialization gate. Keeping the two separate lets
//! [`WordStm::alloc_tvar`] insert fresh t-variables without touching the
//! gate — so a *running* transaction (which holds the gate) can allocate
//! list nodes without self-deadlocking.
//!
//! **Read-only transactions.** The strongest cheap path a global lock
//! admits: a declared-RO transaction ([`oftm_core::api::WordStm::begin_ro`])
//! keeps no undo log and no footprint log, its reads are raw cell loads
//! under the gate, and its commit publishes nothing. Progress guarantee:
//! **abort-free but blocking** — a coarse RO transaction can never abort
//! (nothing to validate; the gate serializes it totally), but it waits for
//! the gate like everyone else, so it is not wait-free. Detect-on-commit
//! promotion is implicit: an empty undo log already skips rollback and
//! publish work.

use crossbeam_epoch::{self as epoch, Guard};
use oftm_core::api::{TxResult, WordStm, WordTx};
use oftm_core::notify::CommitNotifier;
use oftm_core::reclaim::{GraceTracker, RetiredBlock, TxGrace};
use oftm_core::record::{fresh_base_id, Recorder};
use oftm_core::table::VarTable;
use oftm_histories::{Access, TVarId, TmOp, TmResp, TxId, Value};
use oftm_obs::{pack_tx, AbortCause, Counter, StmStats, VarAttr, TX_UNKNOWN};
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Global-mutex TM.
pub struct CoarseStm {
    store: VarTable<AtomicU64>,
    /// Grace-period tracker. The gate serializes transactions, so at most
    /// one is ever active and retired blocks free at the very next commit;
    /// routing them through the shared tracker anyway keeps the
    /// reclamation semantics identical across backends.
    reclaim: GraceTracker,
    /// The serialization gate; holding it *is* the transaction.
    gate: Mutex<()>,
    notify: CommitNotifier,
    /// Base-object identity of the lock word.
    lock_base: oftm_histories::BaseObjId,
    tx_seq: AtomicU32,
    recorder: Option<Arc<Recorder>>,
    /// Always-on telemetry. Coarse is abort-free (the gate serializes
    /// everything), so the only cause it can ever tag is an explicit
    /// retry; the commit-critical-section histogram records how long each
    /// transaction held the gate — the time everyone else was stalled.
    stats: StmStats,
}

impl Default for CoarseStm {
    fn default() -> Self {
        Self::new()
    }
}

impl CoarseStm {
    pub fn new() -> Self {
        CoarseStm {
            store: VarTable::new(),
            reclaim: GraceTracker::new(),
            gate: Mutex::new(()),
            notify: CommitNotifier::new(),
            lock_base: fresh_base_id(),
            tx_seq: AtomicU32::new(0),
            recorder: None,
            stats: StmStats::new(),
        }
    }

    pub fn with_recorder(mut self, rec: Arc<Recorder>) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Non-transactional oracle read. Takes the gate: transactional writes
    /// land in the cells *before* commit (undo-log based), so an ungated
    /// read could observe dirty, later-rolled-back state.
    pub fn peek(&self, x: TVarId) -> Option<Value> {
        let _serialized = self.gate.lock();
        self.store.get(x).map(|c| c.load(Ordering::Acquire))
    }

    fn reclaim_after_commit(&self, grace: TxGrace, retired: Vec<RetiredBlock>) {
        let freed = self.reclaim.retire_and_flush(grace, retired);
        if !freed.is_empty() {
            self.stats.incr(Counter::GraceFlushes);
            self.stats.add(
                Counter::TvarsFreed,
                freed.iter().map(|b| b.len as u64).sum(),
            );
        }
        for blk in freed {
            self.store.remove_block(blk.base, blk.len);
        }
    }
}

struct CoarseTx<'s> {
    stm: &'s CoarseStm,
    id: TxId,
    /// The guard is held for the whole transaction: coarse two-phase
    /// locking degenerated to a single lock.
    guard: Option<MutexGuard<'s, ()>>,
    /// Undo log for tryA: `(id, cell, previous value)`. The ids double as
    /// the commit-notification publish set.
    undo: Vec<(TVarId, Arc<AtomicU64>, Value)>,
    /// Footprint log (reads and writes) for the async runtime's parking.
    touched: Vec<TVarId>,
    /// Grace-period registration; dropped (slot released, retire-set
    /// discarded) on abort.
    grace: Option<TxGrace>,
    retired: Vec<RetiredBlock>,
    /// Declared read-only: reads skip the footprint log, writes panic.
    ro: bool,
    /// When the gate was acquired; its hold length is this backend's
    /// commit critical section.
    gate_held_at: Instant,
    /// Transaction-lifetime epoch pin: the paged-slab table's per-access
    /// pins nest under it (a counter bump instead of an epoch
    /// publication per read/write).
    pin: Guard,
}

impl CoarseTx<'_> {
    fn rec(&self) -> Option<&Recorder> {
        self.stm.recorder.as_deref()
    }

    fn rstep(&self, access: Access) {
        if let Some(r) = self.rec() {
            r.step(self.id.process(), Some(self.id), self.stm.lock_base, access);
        }
    }
}

impl WordTx for CoarseTx<'_> {
    fn id(&self) -> TxId {
        self.id
    }

    fn read(&mut self, x: TVarId) -> TxResult<Value> {
        if let Some(r) = self.rec() {
            r.invoke(self.id, TmOp::Read(x));
        }
        debug_assert!(self.guard.is_some(), "transaction completed");
        if !self.ro {
            self.touched.push(x);
        }
        // The handle is not retained (undo logging happens on writes
        // only): borrow under the pin, skip the `Arc` refcount RMWs.
        let v = self
            .stm
            .store
            .get_ref_or_panic_in(x, &self.pin)
            .load(Ordering::Acquire);
        if let Some(r) = self.rec() {
            r.respond(self.id, TmResp::Value(v));
        }
        Ok(v)
    }

    fn write(&mut self, x: TVarId, v: Value) -> TxResult<()> {
        assert!(
            !self.ro,
            "coarse: write on a declared read-only transaction"
        );
        if let Some(r) = self.rec() {
            r.invoke(self.id, TmOp::Write(x, v));
        }
        debug_assert!(self.guard.is_some(), "transaction completed");
        self.touched.push(x);
        let cell = self.stm.store.get_or_panic_in(x, &self.pin);
        self.undo
            .push((x, Arc::clone(&cell), cell.load(Ordering::Acquire)));
        cell.store(v, Ordering::Release);
        if let Some(r) = self.rec() {
            r.respond(self.id, TmResp::Ok);
        }
        Ok(())
    }

    fn try_commit(mut self: Box<Self>) -> TxResult<()> {
        if let Some(r) = self.rec() {
            r.invoke(self.id, TmOp::TryCommit);
        }
        self.rstep(Access::Modify); // lock release is a modifying step
        self.guard = None; // release
        self.stm
            .stats
            .record_commit_cs_ns(self.gate_held_at.elapsed().as_nanos() as u64);
        self.stm.stats.incr(if self.ro {
            Counter::CommitsRo
        } else if self.undo.is_empty() {
            Counter::CommitsPromoted
        } else {
            Counter::Commits
        });
        // The gate is released and the in-place writes stand: wake parked
        // conflicters.
        self.stm
            .notify
            .publish(self.undo.iter().map(|(x, _, _)| *x));
        if let Some(r) = self.rec() {
            r.respond(self.id, TmResp::Committed);
        }
        self.stm.reclaim_after_commit(
            self.grace.take().expect("grace slot held until completion"),
            std::mem::take(&mut self.retired),
        );
        Ok(())
    }

    fn try_abort(mut self: Box<Self>) {
        if let Some(r) = self.rec() {
            r.invoke(self.id, TmOp::TryAbort);
        }
        if self.guard.is_some() {
            for (_, cell, v) in self.undo.drain(..).rev() {
                cell.store(v, Ordering::Release);
            }
        }
        self.rstep(Access::Modify);
        self.guard = None;
        self.stm
            .stats
            .record_commit_cs_ns(self.gate_held_at.elapsed().as_nanos() as u64);
        // Coarse transactions never fail: aborting one is always a
        // voluntary abandonment — no conflicting variable, no aggressor.
        self.stm.stats.abort_at(
            AbortCause::ExplicitRetry,
            VarAttr::NoVar,
            pack_tx(self.id.proc, self.id.seq),
            TX_UNKNOWN,
        );
        if let Some(r) = self.rec() {
            r.respond(self.id, TmResp::Aborted);
        }
        // Dropping `grace` releases the reclamation slot; the retire-set
        // is discarded with the transaction.
    }

    fn retire_tvar_block(&mut self, base: TVarId, len: usize) {
        assert!(
            !self.ro,
            "coarse: retire on a declared read-only transaction"
        );
        self.retired.push(RetiredBlock { base, len });
    }

    fn footprint(&self, out: &mut Vec<TVarId>) {
        out.extend_from_slice(&self.touched);
    }
}

impl Drop for CoarseTx<'_> {
    fn drop(&mut self) {
        // A transaction dropped without tryC/tryA — the retry loops do
        // this when the body observes an application-level abort — must
        // not leave its in-place writes behind: restore the undo log
        // while the gate is still held. (tryC/tryA both clear the guard
        // first, so this only fires on the abandoned path.)
        if self.guard.is_some() {
            for (_, cell, v) in self.undo.drain(..).rev() {
                cell.store(v, Ordering::Release);
            }
            self.stm
                .stats
                .record_commit_cs_ns(self.gate_held_at.elapsed().as_nanos() as u64);
            self.stm.stats.abort_at(
                AbortCause::ExplicitRetry,
                VarAttr::NoVar,
                pack_tx(self.id.proc, self.id.seq),
                TX_UNKNOWN,
            );
        }
    }
}

impl WordStm for CoarseStm {
    fn name(&self) -> &'static str {
        "coarse"
    }

    fn register_tvar(&self, x: TVarId, initial: Value) {
        self.stats.incr(Counter::TvarsAllocated);
        self.store.insert(x, AtomicU64::new(initial));
    }

    fn alloc_tvar_block(&self, initials: &[Value]) -> TVarId {
        // Deliberately does not take the gate: a running transaction holds
        // it, and allocation is not a transactional effect.
        self.stats
            .add(Counter::TvarsAllocated, initials.len() as u64);
        self.store.alloc_block(initials, |_, v| AtomicU64::new(v))
    }

    fn free_tvar_block(&self, base: TVarId, len: usize) {
        // Like allocation, eviction does not take the gate: the committing
        // transaction may still notionally hold it, and the cells are Arc-
        // shared, so an undo log referencing them stays valid.
        self.stats.add(Counter::TvarsFreed, len as u64);
        self.store.remove_block(base, len);
    }

    fn live_tvars(&self) -> usize {
        self.store.len()
    }

    fn begin(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        let id = TxId::new(proc, seq);
        // Acquiring the global lock is a modifying step on the lock word.
        let guard = self.gate.lock();
        if let Some(r) = self.recorder.as_deref() {
            r.step(id.process(), Some(id), self.lock_base, Access::Modify);
        }
        Box::new(CoarseTx {
            stm: self,
            id,
            guard: Some(guard),
            undo: Vec::new(),
            touched: Vec::new(),
            grace: Some(self.reclaim.begin()),
            retired: Vec::new(),
            ro: false,
            gate_held_at: Instant::now(),
            pin: epoch::pin(),
        })
    }

    fn begin_ro(&self, proc: u32) -> Box<dyn WordTx + '_> {
        self.stats.incr(Counter::Begins);
        self.stats.incr(Counter::BeginsRo);
        let seq = self.tx_seq.fetch_add(1, Ordering::Relaxed);
        let id = TxId::new(proc, seq);
        let guard = self.gate.lock();
        if let Some(r) = self.recorder.as_deref() {
            r.step(id.process(), Some(id), self.lock_base, Access::Modify);
        }
        Box::new(CoarseTx {
            stm: self,
            id,
            guard: Some(guard),
            undo: Vec::new(),
            touched: Vec::new(),
            grace: Some(self.reclaim.begin()),
            retired: Vec::new(),
            ro: true,
            gate_held_at: Instant::now(),
            pin: epoch::pin(),
        })
    }

    fn notifier(&self) -> &CommitNotifier {
        &self.notify
    }

    fn stats(&self) -> &StmStats {
        &self.stats
    }

    fn is_obstruction_free(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftm_core::api::run_transaction;

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn stm() -> CoarseStm {
        let s = CoarseStm::new();
        s.register_tvar(X, 1);
        s.register_tvar(Y, 2);
        s
    }

    #[test]
    fn read_write_commit() {
        let s = stm();
        let (v, _) = run_transaction(&s, 0, |tx| {
            let v = tx.read(X)?;
            tx.write(Y, v + 10)?;
            Ok(v)
        });
        assert_eq!(v, 1);
        assert_eq!(s.peek(Y), Some(11));
    }

    #[test]
    fn abort_rolls_back() {
        let s = stm();
        let mut tx = s.begin(0);
        tx.write(X, 100).unwrap();
        tx.write(X, 200).unwrap();
        tx.try_abort();
        assert_eq!(s.peek(X), Some(1));
    }

    #[test]
    fn alloc_inside_running_transaction_does_not_deadlock() {
        // The regression the gate/store split exists for: the transaction
        // holds the global lock while allocating.
        let s = stm();
        let (node, _) = run_transaction(&s, 0, |tx| {
            let node = s.alloc_tvar_block(&[5, 0]);
            tx.write(X, node.0)?;
            Ok(node)
        });
        assert_eq!(s.peek(node), Some(5));
        assert_eq!(s.peek(X), Some(node.0));
    }

    #[test]
    fn serial_under_threads() {
        let s = Arc::new(stm());
        std::thread::scope(|sc| {
            for p in 0..4u32 {
                let s = Arc::clone(&s);
                sc.spawn(move || {
                    for _ in 0..100 {
                        run_transaction(&*s, p, |tx| {
                            let v = tx.read(X)?;
                            tx.write(X, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(s.peek(X), Some(401));
    }

    #[test]
    fn ro_reads_commit_and_skip_bookkeeping() {
        let s = stm();
        let mut ro = s.begin_ro(0);
        assert_eq!(ro.read(X).unwrap(), 1);
        assert_eq!(ro.read(Y).unwrap(), 2);
        let mut fp = Vec::new();
        ro.footprint(&mut fp);
        assert!(fp.is_empty(), "RO keeps no footprint log");
        assert!(ro.try_commit().is_ok());
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn ro_write_panics() {
        let s = stm();
        let mut ro = s.begin_ro(0);
        let _ = ro.write(X, 1);
    }

    #[test]
    fn every_pair_conflicts_on_lock_word() {
        let rec = Arc::new(Recorder::new());
        let s = CoarseStm::new().with_recorder(Arc::clone(&rec));
        s.register_tvar(X, 0);
        s.register_tvar(Y, 0);
        // Two transactions on disjoint t-variables.
        run_transaction(&s, 0, |tx| tx.write(X, 1));
        run_transaction(&s, 1, |tx| tx.write(Y, 1));
        let h = rec.snapshot();
        let violations = oftm_histories::check_strict_dap(&h);
        assert!(
            !violations.is_empty(),
            "coarse lock must violate strict DAP on disjoint transactions"
        );
    }
}
