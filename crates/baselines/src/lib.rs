//! # oftm-baselines — the lock-based TMs the paper contrasts OFTMs against
//!
//! Section 1 of *On Obstruction-Free Transactions* positions OFTMs against
//! lock-based STMs on two axes:
//!
//! * **Progress** — lock-based TMs block: a preempted lock holder stalls
//!   peers (the real-time/kernel motivation for obstruction-freedom).
//! * **Disjoint-access-parallelism** — most lock-based TMs (two-phase
//!   locking à la TL \[11\]) are *strictly* disjoint-access-parallel, which
//!   Theorem 13 proves impossible for any OFTM; the global-clock designs
//!   (TL2 \[10\], TinySTM \[13\]) are the lock-based exception.
//!
//! Three baselines, all implementing the shared
//! [`WordStm`](oftm_core::api::WordStm) interface and the low-level
//! recorder, so the checkers and benchmarks treat them uniformly:
//!
//! | impl | progress | strictly DAP? |
//! |------|----------|----------------|
//! | [`CoarseStm`] | blocking (one global lock) | no (the lock) |
//! | [`TlStm`]     | blocking (commit-time per-object locks) | **yes** |
//! | [`Tl2Stm`]    | blocking + global version clock | no (the clock) |

mod clock;
pub mod coarse;
pub mod tl;
pub mod tl2;

pub use coarse::CoarseStm;
pub use tl::TlStm;
pub use tl2::Tl2Stm;
